"""repro — a Python reproduction of *MBPlib: Modular Branch Prediction
Library* (Domínguez-Sánchez & Ros, ISPASS 2023).

Like MBPlib, this package is a software suite of three libraries that can
be used independently (paper Section III):

* :mod:`repro.core` + :mod:`repro.sbbt` — the **simulation library**:
  trace reader/writer for the SBBT binary format and the standard,
  comparison and batch simulators.
* :mod:`repro.utils` — the **utilities library**: saturating counters,
  history registers, folded histories, hashing and table structures.
* :mod:`repro.predictors` — the **examples library**: the paper's
  Table II collection, from bimodal to TAGE and BATAGE.

On top of those, this reproduction also ships the two comparator systems
the paper evaluates against (:mod:`repro.baselines` — a CBP5-framework
style simulator and a ChampSim-style cycle-level simulator), a synthetic
trace generator (:mod:`repro.traces`, standing in for the unavailable
CBP5/DPC3 trace sets), and analysis helpers (:mod:`repro.analysis`).

Quickstart::

    from repro import GShare, simulate
    from repro.traces import generate_workload

    trace = generate_workload("short_server", seed=1)
    result = simulate(GShare(history_length=15, log_table_size=17), trace)
    print(result.to_json_string())
"""

from .core import (
    Branch,
    BranchType,
    ComparisonResult,
    ExecutionEngine,
    Opcode,
    Predictor,
    SimulationConfig,
    SimulationResult,
    WorkPlan,
    WorkUnit,
    compare,
    execute_plan,
    run_suite,
    simulate,
    simulate_file,
)
from .sbbt import (
    SbbtReader,
    SbbtWriter,
    TraceData,
    read_trace,
    trace_digest,
    write_trace,
)
from .cache import SimulationCache
from .telemetry import (
    IntervalRecorder,
    IntervalSeries,
    PhaseTimers,
    RunManifest,
    build_manifest,
    suite_manifest,
)

__version__ = "1.0.0"

__all__ = [
    "Branch", "BranchType", "ComparisonResult", "Opcode", "Predictor",
    "SimulationConfig", "SimulationResult", "compare", "run_suite",
    "ExecutionEngine", "WorkPlan", "WorkUnit", "execute_plan",
    "simulate", "simulate_file",
    "SbbtReader", "SbbtWriter", "TraceData", "read_trace", "write_trace",
    "SimulationCache", "trace_digest",
    "IntervalRecorder", "IntervalSeries", "PhaseTimers",
    "RunManifest", "build_manifest", "suite_manifest",
    "__version__",
]


def __getattr__(name: str):
    """Lazily re-export the examples library at the package root.

    ``from repro import GShare`` works without importing every predictor
    module at package-import time.
    """
    # import_module, not ``from . import predictors``: the from-import
    # probes this module with hasattr, which re-enters this __getattr__
    # and recurses forever.
    from importlib import import_module

    predictors = import_module(".predictors", __name__)
    if name == "predictors":
        return predictors
    if name in predictors.__all__:
        return getattr(predictors, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
