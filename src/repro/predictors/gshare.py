"""The GShare predictor (McFarling, 1993).

One counter table indexed by the xor of the instruction address and the
global branch history — Listing 2 of the paper, which fits in ~20 lines
thanks to the utilities library.  This implementation is the same glue:
a global history register, ``xor_fold`` hashing and one counter table.
"""

from __future__ import annotations

from typing import Any

from ..core.branch import Branch
from ..core.predictor import Predictor
from ..utils.bits import mask
from ..utils.hashing import xor_fold

__all__ = ["GShare"]


class GShare(Predictor):
    """GShare with ``2**log_table_size`` counters and ``history_length``
    bits of global outcome history.

    The index function matches the paper's listing:
    ``xor_fold(ip ^ ghist, log_table_size)``.

    Parameters
    ----------
    history_length:
        Bits of global history xored into the index (the ``H`` template
        parameter of Listing 2).
    log_table_size:
        log2 of the counter count (the ``T`` parameter).
    counter_width:
        Bits per signed saturating counter.
    """

    def __init__(self, history_length: int = 15, log_table_size: int = 17,
                 counter_width: int = 2):
        if history_length < 1:
            raise ValueError("history_length must be >= 1")
        if log_table_size < 1:
            raise ValueError("log_table_size must be >= 1")
        if counter_width < 1:
            raise ValueError("counter_width must be >= 1")
        self.history_length = history_length
        self.log_table_size = log_table_size
        self.counter_width = counter_width
        self._history_mask = mask(history_length)
        self._max = (1 << (counter_width - 1)) - 1
        self._min = -(1 << (counter_width - 1))
        self._table = [0] * (1 << log_table_size)
        self._ghist = 0

    @property
    def history(self) -> int:
        """The current global history register value."""
        return self._ghist

    def _hash(self, ip: int) -> int:
        return xor_fold(ip ^ self._ghist, self.log_table_size)

    def predict(self, ip: int) -> bool:
        """Non-negative hashed counter means taken."""
        return self._table[self._hash(ip)] >= 0

    def train(self, branch: Branch) -> None:
        """Saturating ±1 update of the hashed counter.

        Called before ``track`` by the simulator, so the hash uses the
        same history the prediction used.
        """
        i = self._hash(branch.ip)
        v = self._table[i]
        probe = self._probe
        if probe is not None:
            # Single-component: the table provides every prediction
            # (same attribution the vectorized engine reports).
            probe.record(branch.ip, "table", (v >= 0) == branch.taken)
        if branch.taken:
            if v < self._max:
                self._table[i] = v + 1
        elif v > self._min:
            self._table[i] = v - 1

    def track(self, branch: Branch) -> None:
        """Shift the outcome into the global history register."""
        self._ghist = ((self._ghist << 1) | branch.taken) & self._history_mask

    def metadata_stats(self) -> dict[str, Any]:
        """Self-description, shaped like the paper's Listing 1 metadata."""
        return {
            "name": "repro GShare",
            "history_length": self.history_length,
            "log_table_size": self.log_table_size,
            "counter_width": self.counter_width,
        }

    def storage_bits(self) -> int:
        """Hardware budget of the configuration, in bits."""
        return (1 << self.log_table_size) * self.counter_width + self.history_length

    def probe_stats(self) -> dict[str, Any]:
        """Structural snapshot of the counter table."""
        from ..utils.tables import distribution_stats

        return {"table": distribution_stats(self._table, self._min,
                                            self._max)}

    def vector_kernel(self) -> Any:
        """Single table indexed by ``xor_fold(ip ^ ghist)``.

        Histories longer than 63 bits do not fit the packed uint64
        windows, so such configurations stay on the scalar engine.
        """
        if self.history_length > 63:
            return None
        from ..core.vectorized import SaturatingTableKernel, xor_fold_array

        history_length = self.history_length
        log_table_size = self.log_table_size
        # xor_fold is linear over XOR, so the (config-independent) fold
        # of the address stream comes from the context's memo and only
        # the history fold is paid per configuration — in a batched
        # history sweep the address fold happens once for the group.
        return SaturatingTableKernel(
            lambda ctx: ctx.folded_ips(log_table_size)
            ^ xor_fold_array(ctx.global_history(history_length),
                             log_table_size),
            self.counter_width, component="table",
            table_size=1 << log_table_size)
