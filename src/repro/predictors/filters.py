"""Branch filters — composable wrappers in front of a predictor.

Section IV-B of the paper: "a filter may decide that it is not necessary
to track some branches".  A filter owns an inner predictor and decides
which ``predict``/``train``/``track`` calls reach it — the third kind of
composition (after meta-predictors and side predictors) that the
``train``/``track`` split enables.
"""

from __future__ import annotations

from typing import Any

from ..core.branch import Branch
from ..core.predictor import Predictor

__all__ = ["ConditionalOnlyFilter", "NeverTakenFilter"]


class ConditionalOnlyFilter(Predictor):
    """Forward ``track`` only for conditional branches.

    Equivalent to running the inner predictor with the simulator's
    ``track_only_conditional`` option, but as a component — so it also
    works when the inner predictor is buried inside a meta-predictor.
    """

    def __init__(self, inner: Predictor):
        self.inner = inner

    def predict(self, ip: int) -> bool:  # noqa: D102 - delegation
        return self.inner.predict(ip)

    def train(self, branch: Branch) -> None:  # noqa: D102 - delegation
        self.inner.train(branch)

    def track(self, branch: Branch) -> None:
        """Drop unconditional branches before they reach the inner state."""
        if branch.is_conditional:
            self.inner.track(branch)

    def metadata_stats(self) -> dict[str, Any]:  # noqa: D102 - delegation
        return {
            "name": "repro ConditionalOnlyFilter",
            "inner": self.inner.metadata_stats(),
        }

    def spec(self) -> dict[str, Any]:
        """Cache-key identity, recursing into the inner spec."""
        return {
            "name": "repro ConditionalOnlyFilter",
            "inner": self.inner.spec(),
        }

    def execution_stats(self) -> dict[str, Any]:  # noqa: D102 - delegation
        return self.inner.execution_stats()

    def on_warmup_end(self) -> None:  # noqa: D102 - delegation
        self.inner.on_warmup_end()

    def attach_probe(self, probe: Any) -> None:
        """Transparent: the inner predictor records in the same scope."""
        self._probe = probe
        self.inner.attach_probe(probe)

    def probe_stats(self) -> dict[str, Any]:  # noqa: D102 - delegation
        return self.inner.probe_stats()


class NeverTakenFilter(Predictor):
    """Handle never-taken branches without consuming inner capacity.

    A large fraction of static branches are never taken (error paths,
    defensive checks).  The filter predicts those not-taken itself and
    neither trains nor tracks the inner predictor with them, freeing
    table capacity — a classic championship trick.  A branch graduates to
    the inner predictor the first time it is taken, permanently.
    """

    def __init__(self, inner: Predictor, *, track_filtered: bool = False):
        self.inner = inner
        self.track_filtered = track_filtered
        self._seen_taken: set[int] = set()
        self._stat_filtered = 0

    def _is_filtered(self, ip: int) -> bool:
        return ip not in self._seen_taken

    def predict(self, ip: int) -> bool:
        """Not-taken for branches that never were; inner otherwise."""
        if self._is_filtered(ip):
            return False
        return self.inner.predict(ip)

    def train(self, branch: Branch) -> None:
        """Graduate a branch on its first taken outcome."""
        probe = self._probe
        if self._is_filtered(branch.ip):
            if probe is not None:
                # The filter answered not-taken itself.
                probe.record(branch.ip, "filter", not branch.taken)
            self._stat_filtered += 1
            if branch.taken:
                self._seen_taken.add(branch.ip)
                # Seed the inner predictor with the surprising outcome.
                self.inner.predict(branch.ip)
                self.inner.train(branch)
            return
        if probe is not None:
            # predict is observably pure (and cached by the inner
            # component), so re-asking recovers the final answer.
            probe.record(branch.ip, "inner",
                         self.inner.predict(branch.ip) == branch.taken)
        self.inner.train(branch)

    def track(self, branch: Branch) -> None:
        """Filtered branches optionally bypass scenario tracking too."""
        if self._is_filtered(branch.ip) and not self.track_filtered:
            return
        self.inner.track(branch)

    def metadata_stats(self) -> dict[str, Any]:
        """Nested self-description."""
        return {
            "name": "repro NeverTakenFilter",
            "track_filtered": self.track_filtered,
            "inner": self.inner.metadata_stats(),
        }

    def spec(self) -> dict[str, Any]:
        """Cache-key identity, recursing into the inner spec."""
        return {
            "name": "repro NeverTakenFilter",
            "track_filtered": self.track_filtered,
            "inner": self.inner.spec(),
        }

    def execution_stats(self) -> dict[str, Any]:
        """Filter hit counts plus inner statistics."""
        stats: dict[str, Any] = {
            "filtered_trainings": self._stat_filtered,
            "graduated_branches": len(self._seen_taken),
        }
        inner_stats = self.inner.execution_stats()
        if inner_stats:
            stats["inner"] = inner_stats
        return stats

    def on_warmup_end(self) -> None:
        """Propagate and reset the filter counter."""
        self._stat_filtered = 0
        self.inner.on_warmup_end()

    def attach_probe(self, probe: Any) -> None:
        """Attach the probe here and a scoped view to the inner predictor."""
        self._probe = probe
        self.inner.attach_probe(None if probe is None
                                else probe.scoped("inner"))

    def probe_stats(self) -> dict[str, Any]:
        """Inner structural statistics under the ``inner`` key."""
        inner_stats = self.inner.probe_stats()
        return {"inner": inner_stats} if inner_stats else {}
