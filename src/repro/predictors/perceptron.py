"""The hashed perceptron predictor (Tarjan & Skadron, 2005).

Instead of assigning one weight per history bit like the original
perceptron, the hashed perceptron keeps a handful of weight tables, each
indexed by a *hash* of the branch address with a different slice of the
global (and path) history.  The prediction is the sign of the sum of the
selected weights; training only happens on a misprediction or when the
sum's magnitude is below a threshold.

The paper uses the hashed perceptron as one of the "state of the art"
examples and, in the evaluation, as the predictor whose compute cost sits
between the simple table predictors and TAGE (Table III: 6.2× average
speedup vs CBP5 — lower than GShare's 17.9× because more time is spent in
predictor code).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.branch import Branch
from ..core.predictor import Predictor
from ..utils.bits import mask
from ..utils.hashing import xor_fold
from ..utils.history import PathHistory

__all__ = ["HashedPerceptron"]

_DEFAULT_HISTORY_LENGTHS = (0, 2, 4, 7, 11, 16, 22, 30)


class HashedPerceptron(Predictor):
    """A multi-table hashed perceptron with adaptive threshold.

    Parameters
    ----------
    log_table_size:
        log2 of each weight table's entry count.
    weight_width:
        Bits per signed weight.
    history_lengths:
        One entry per table: how many global-history bits that table's
        hash consumes.  Length 0 gives a pure bias (per-address) table.
    theta:
        Initial training threshold; ``adaptive_theta`` lets the
        Seznec-style threshold controller move it.
    use_path_history:
        Mix the rolling path hash into every non-bias table index.
        Off by default: the rolling hash always covers the last 16
        branch addresses, which aliases visits that share outcome
        history but differ in control path — on loopy workloads that
        costs far more accuracy than the path information buys.
    """

    def __init__(self, log_table_size: int = 14, weight_width: int = 8,
                 history_lengths: Sequence[int] = _DEFAULT_HISTORY_LENGTHS,
                 theta: int | None = None, adaptive_theta: bool = True,
                 use_path_history: bool = False):
        if log_table_size < 1:
            raise ValueError("log_table_size must be >= 1")
        if weight_width < 2:
            raise ValueError("weight_width must be >= 2")
        if not history_lengths:
            raise ValueError("need at least one weight table")
        if any(h < 0 for h in history_lengths):
            raise ValueError("history lengths must be non-negative")
        self.log_table_size = log_table_size
        self.weight_width = weight_width
        self.history_lengths = tuple(history_lengths)
        self.num_tables = len(self.history_lengths)
        self.adaptive_theta = adaptive_theta
        self.use_path_history = use_path_history
        # The classic theta heuristic scales with the history seen.
        self.theta = theta if theta is not None else int(
            1.93 * max(self.history_lengths) / max(1, self.num_tables)
            * 2 + 14
        )
        self._initial_theta = self.theta
        self._w_max = (1 << (weight_width - 1)) - 1
        self._w_min = -(1 << (weight_width - 1))
        self._tables = [
            [0] * (1 << log_table_size) for _ in range(self.num_tables)
        ]
        self._max_history = max(self.history_lengths)
        self._ghist = 0
        self._path = PathHistory(width=min(16, log_table_size))
        # Adaptive-threshold controller (Seznec, O-GEHL): counts
        # threshold-training events vs mispredicts to steer theta.
        self._tc = 0
        self._tc_bound = 64
        # Per-prediction cache consumed by train.
        self._cached_ip: int | None = None
        self._cached_indices: list[int] = []
        self._cached_sum = 0
        # Execution statistics (Listing 1's predictor_statistics section).
        self._stat_threshold_trainings = 0
        self._stat_mispredict_trainings = 0

    # ------------------------------------------------------------------
    # Indexing and summation.
    # ------------------------------------------------------------------

    def _index(self, table: int, ip: int) -> int:
        length = self.history_lengths[table]
        if length == 0:
            return xor_fold(ip, self.log_table_size)
        segment = self._ghist & mask(length)
        value = ip ^ (segment << 2) ^ (table << 1)
        if self.use_path_history:
            value ^= self._path.value << 3
        return xor_fold(value, self.log_table_size)

    def _compute(self, ip: int) -> tuple[list[int], int]:
        indices = [self._index(t, ip) for t in range(self.num_tables)]
        total = 0
        for table, index in zip(self._tables, indices):
            total += table[index]
        return indices, total

    # ------------------------------------------------------------------
    # Predictor interface.
    # ------------------------------------------------------------------

    def predict(self, ip: int) -> bool:
        """Sign of the weight sum: non-negative means taken."""
        indices, total = self._compute(ip)
        self._cached_ip = ip
        self._cached_indices = indices
        self._cached_sum = total
        return total >= 0

    def train(self, branch: Branch) -> None:
        """Perceptron rule: update on mispredict or low-confidence sum."""
        if self._cached_ip != branch.ip:
            self.predict(branch.ip)
        total = self._cached_sum
        taken = branch.taken
        mispredicted = (total >= 0) != taken
        probe = self._probe
        if probe is not None:
            # Attribute the vote to the largest-magnitude weight (the
            # first such table on ties) — adder trees have no provider.
            weights = [self._tables[t][self._cached_indices[t]]
                       for t in range(self.num_tables)]
            dominant = max(range(self.num_tables),
                           key=lambda t: abs(weights[t]))
            probe.record(branch.ip, f"T{dominant}", not mispredicted)
        if mispredicted or abs(total) <= self.theta:
            if mispredicted:
                self._stat_mispredict_trainings += 1
            else:
                self._stat_threshold_trainings += 1
            delta = 1 if taken else -1
            for table, index in zip(self._tables, self._cached_indices):
                w = table[index] + delta
                table[index] = min(self._w_max, max(self._w_min, w))
            if self.adaptive_theta:
                self._adapt_theta(mispredicted)
        self._cached_ip = None

    def _adapt_theta(self, mispredicted: bool) -> None:
        """Seznec's threshold controller: balance the two training causes."""
        self._tc += 1 if mispredicted else -1
        if self._tc >= self._tc_bound:
            self.theta += 1
            self._tc = 0
        elif self._tc <= -self._tc_bound:
            if self.theta > 1:
                self.theta -= 1
            self._tc = 0

    def track(self, branch: Branch) -> None:
        """Update outcome and path histories with every branch."""
        self._ghist = ((self._ghist << 1) | branch.taken) & mask(self._max_history)
        self._path.push(branch.ip)
        self._cached_ip = None

    # ------------------------------------------------------------------
    # Output hooks.
    # ------------------------------------------------------------------

    def metadata_stats(self) -> dict[str, Any]:
        """Self-description for the simulator output."""
        return {
            "name": "repro HashedPerceptron",
            "log_table_size": self.log_table_size,
            "weight_width": self.weight_width,
            "history_lengths": list(self.history_lengths),
            "theta": self.theta,
            "adaptive_theta": self.adaptive_theta,
            "use_path_history": self.use_path_history,
        }

    def spec(self) -> dict[str, Any]:
        """Cache-key identity with a *stable* theta.

        With ``adaptive_theta`` the live ``theta`` drifts during
        simulation, so the spec is pinned to the constructor-time value
        the instance started from.
        """
        return {
            "name": "repro HashedPerceptron",
            "log_table_size": self.log_table_size,
            "weight_width": self.weight_width,
            "history_lengths": list(self.history_lengths),
            "theta": self._initial_theta,
            "adaptive_theta": self.adaptive_theta,
            "use_path_history": self.use_path_history,
        }

    def execution_stats(self) -> dict[str, Any]:
        """Training-cause counters, a classic perceptron health metric."""
        return {
            "threshold_trainings": self._stat_threshold_trainings,
            "mispredict_trainings": self._stat_mispredict_trainings,
            "final_theta": self.theta,
        }

    def on_warmup_end(self) -> None:
        """Reset statistics so they cover the measured region only."""
        self._stat_threshold_trainings = 0
        self._stat_mispredict_trainings = 0

    def probe_stats(self) -> dict[str, Any]:
        """Structural snapshot of every weight table."""
        from ..utils.tables import distribution_stats

        return {f"T{t}": distribution_stats(table, self._w_min, self._w_max)
                for t, table in enumerate(self._tables)}

    def storage_bits(self) -> int:
        """Hardware budget of the configuration, in bits."""
        return (self.num_tables * (1 << self.log_table_size)
                * self.weight_width + self._max_history)
