"""A loop predictor and the side-predictor wrapper that attaches it.

Loop predictors capture the one pattern counter tables are structurally
bad at: a loop back-edge taken exactly ``N`` times and then not taken.
An entry learns the trip count; once it has seen the same count twice
(confidence), it predicts the exit with certainty.

The paper's Section VI-C motivates the comparison simulator with exactly
this scenario ("compare the effectiveness of adding a new component, like
a loop predictor, to our design"); :class:`WithLoopPredictor` is that new
component as a composable wrapper, and
``examples/predictor_comparison.py`` is the experiment.
"""

from __future__ import annotations

from typing import Any

from ..core.branch import Branch
from ..core.predictor import Predictor
from ..utils.bits import mask
from ..utils.hashing import xor_fold

__all__ = ["LoopPredictor", "WithLoopPredictor"]


class _LoopEntry:
    """One monitored branch: learned trip count and live iteration."""

    __slots__ = ("tag", "past_count", "current_count", "confidence", "age")

    def __init__(self, tag: int):
        self.tag = tag
        self.past_count = 0
        self.current_count = 0
        self.confidence = 0
        self.age = 0


class LoopPredictor(Predictor):
    """A standalone loop predictor.

    Useful mostly as a side predictor: :meth:`is_valid` tells the owner
    whether the current prediction is backed by a confident loop entry.

    Parameters
    ----------
    log_table_size:
        log2 of the number of loop entries.
    tag_width:
        Partial tag bits per entry.
    max_count:
        Largest learnable trip count.
    confidence_threshold:
        Times the same trip count must repeat before predictions are
        marked valid.
    """

    def __init__(self, log_table_size: int = 6, tag_width: int = 14,
                 max_count: int = 1 << 14, confidence_threshold: int = 2):
        if log_table_size < 0:
            raise ValueError("log_table_size must be >= 0")
        if confidence_threshold < 1:
            raise ValueError("confidence_threshold must be >= 1")
        self.log_table_size = log_table_size
        self.tag_width = tag_width
        self.max_count = max_count
        self.confidence_threshold = confidence_threshold
        self._entries: list[_LoopEntry | None] = [None] * (1 << log_table_size)
        self._last_valid = False

    def _index_tag(self, ip: int) -> tuple[int, int]:
        return (xor_fold(ip, self.log_table_size),
                xor_fold(ip, self.tag_width) & mask(self.tag_width))

    def _entry_for(self, ip: int) -> _LoopEntry | None:
        index, tag = self._index_tag(ip)
        entry = self._entries[index]
        if entry is not None and entry.tag == tag:
            return entry
        return None

    def predict(self, ip: int) -> bool:
        """Taken until the learned trip count is reached, then not-taken."""
        entry = self._entry_for(ip)
        if entry is None or entry.confidence < self.confidence_threshold:
            self._last_valid = False
            return True  # back-edges are overwhelmingly taken
        self._last_valid = True
        # past_count taken iterations precede each exit; the branch at
        # position current_count is taken exactly while below that.
        return entry.current_count < entry.past_count

    def is_valid(self) -> bool:
        """Whether the *latest* ``predict`` was backed by a confident entry."""
        return self._last_valid

    def train(self, branch: Branch) -> None:
        """Learn trip counts from completed loop executions."""
        index, tag = self._index_tag(branch.ip)
        entry = self._entries[index]
        if entry is None or entry.tag != tag:
            # Adopt the slot for this branch if it is free or stale.
            if entry is None or entry.age == 0:
                if branch.taken:  # only bother with branches that loop
                    fresh = _LoopEntry(tag)
                    fresh.current_count = 1
                    fresh.age = 31
                    self._entries[index] = fresh
            else:
                entry.age -= 1
            return
        entry.age = min(31, entry.age + 1)
        if branch.taken:
            entry.current_count += 1
            if entry.current_count > self.max_count:
                # Not a bounded loop; stop trusting it.
                entry.confidence = 0
                entry.current_count = 0
        else:
            # Loop exit: compare this execution's trip count to the past.
            if entry.current_count == entry.past_count:
                entry.confidence = min(self.confidence_threshold + 1,
                                       entry.confidence + 1)
            else:
                entry.past_count = entry.current_count
                entry.confidence = 0
            entry.current_count = 0

    def track(self, branch: Branch) -> None:
        """The loop predictor keeps no global scenario state."""

    def metadata_stats(self) -> dict[str, Any]:
        """Self-description for the simulator output."""
        return {
            "name": "repro LoopPredictor",
            "log_table_size": self.log_table_size,
            "tag_width": self.tag_width,
            "max_count": self.max_count,
            "confidence_threshold": self.confidence_threshold,
        }

    def probe_stats(self) -> dict[str, Any]:
        """Structural snapshot: how many entries are live and confident."""
        entries = len(self._entries)
        live = sum(1 for e in self._entries if e is not None)
        confident = sum(
            1 for e in self._entries
            if e is not None and e.confidence >= self.confidence_threshold)
        return {"entries": {
            "entries": entries,
            "live_fraction": live / entries if entries else 0.0,
            "confident_fraction": confident / entries if entries else 0.0,
        }}


class WithLoopPredictor(Predictor):
    """Attach a loop predictor to any main predictor.

    When the loop predictor has a confident entry for the branch, its
    prediction overrides the main predictor's.  Both components train on
    every conditional branch; both track every branch — a textbook use of
    the composability that the ``train``/``track`` split provides.
    """

    def __init__(self, main: Predictor,
                 loop: LoopPredictor | None = None):
        self.main = main
        self.loop = loop if loop is not None else LoopPredictor()
        self._stat_overrides = 0
        # (ip, valid, loop_prediction, main_prediction) of the latest
        # predict; invalidated by track (predict-then-train protocol).
        self._cached: tuple[int, bool, bool, bool] | None = None

    def predict(self, ip: int) -> bool:
        """Loop prediction wins when valid; otherwise defer to main."""
        loop_prediction = self.loop.predict(ip)
        main_prediction = self.main.predict(ip)
        valid = self.loop.is_valid()
        self._cached = (ip, valid, loop_prediction, main_prediction)
        if valid:
            if loop_prediction != main_prediction:
                self._stat_overrides += 1
            return loop_prediction
        return main_prediction

    def train(self, branch: Branch) -> None:
        """Train both components with the program branch."""
        probe = self._probe
        if probe is not None:
            cached = self._cached
            if cached is None or cached[0] != branch.ip:
                self.predict(branch.ip)
                cached = self._cached
            _, valid, loop_prediction, main_prediction = cached
            final = loop_prediction if valid else main_prediction
            overrode = ("main" if valid and loop_prediction != main_prediction
                        else None)
            probe.record(branch.ip, "loop" if valid else "main",
                         final == branch.taken, overrode=overrode)
        self.main.train(branch)
        self.loop.train(branch)

    def track(self, branch: Branch) -> None:
        """Track both components with the program branch."""
        self.main.track(branch)
        self.loop.track(branch)
        self._cached = None

    def metadata_stats(self) -> dict[str, Any]:
        """Nested self-description of both components."""
        return {
            "name": "repro WithLoopPredictor",
            "main": self.main.metadata_stats(),
            "loop": self.loop.metadata_stats(),
        }

    def spec(self) -> dict[str, Any]:
        """Cache-key identity, built from both components' specs."""
        return {
            "name": "repro WithLoopPredictor",
            "main": self.main.spec(),
            "loop": self.loop.spec(),
        }

    def execution_stats(self) -> dict[str, Any]:
        """How often the loop predictor overrode the main prediction."""
        stats = {"loop_overrides": self._stat_overrides}
        main_stats = self.main.execution_stats()
        if main_stats:
            stats["main"] = main_stats
        return stats

    def on_warmup_end(self) -> None:
        """Propagate the warm-up boundary; reset the override counter."""
        self._stat_overrides = 0
        self.main.on_warmup_end()
        self.loop.on_warmup_end()

    def attach_probe(self, probe: Any) -> None:
        """Attach the probe here and scoped views to both components."""
        self._probe = probe
        self.main.attach_probe(None if probe is None
                               else probe.scoped("main"))
        self.loop.attach_probe(None if probe is None
                               else probe.scoped("loop"))

    def probe_stats(self) -> dict[str, Any]:
        """Merge both components' structural statistics."""
        stats: dict[str, Any] = {}
        main_stats = self.main.probe_stats()
        if main_stats:
            stats["main"] = main_stats
        loop_stats = self.loop.probe_stats()
        if loop_stats:
            stats["loop"] = loop_stats
        return stats
