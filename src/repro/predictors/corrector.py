"""A statistical corrector, and TAGE-SC(-L) assembled from parts.

Championship TAGE derivatives (TAGE-SC-L, the CBP4/CBP5 winners) wrap
TAGE with two side components: a **loop predictor** for counted loops
and a **statistical corrector** (SC) that catches the branches where
TAGE's tagged entries are systematically wrong — typically weakly-biased
branches whose outcome correlates with the bias itself more than with
history.

The SC here follows the classic recipe: a small adder tree of counter
tables indexed by (address, TAGE's prediction, a little history) votes
on whether to *invert* the primary prediction; it only overrides when
its confidence exceeds a threshold.  Together with
:class:`repro.predictors.loop.WithLoopPredictor` this gives the
``tage_sc_l`` factory — the paper's "state of the art" end of the
spectrum, built purely by composition (Section VI-D's whole point).
"""

from __future__ import annotations

from typing import Any

from ..core.branch import Branch
from ..core.predictor import Predictor
from ..utils.bits import mask
from ..utils.hashing import xor_fold
from .loop import WithLoopPredictor
from .tage import Tage

__all__ = ["StatisticalCorrector", "tage_sc", "tage_sc_l"]


class StatisticalCorrector(Predictor):
    """Wrap any predictor with a statistical correction stage.

    Parameters
    ----------
    main:
        The primary predictor (typically a :class:`Tage`).
    num_tables:
        Counter tables in the corrector's adder tree.
    log_table_size:
        log2 of each corrector table.
    counter_width:
        Bits per corrector counter.
    threshold:
        Confidence the corrector sum must exceed to override the main
        prediction.
    """

    def __init__(self, main: Predictor, num_tables: int = 4,
                 log_table_size: int = 10, counter_width: int = 6,
                 threshold: int = 6):
        if num_tables < 1:
            raise ValueError("num_tables must be >= 1")
        if counter_width < 2:
            raise ValueError("counter_width must be >= 2")
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.main = main
        self.num_tables = num_tables
        self.log_table_size = log_table_size
        self.counter_width = counter_width
        self.threshold = threshold
        self._c_max = (1 << (counter_width - 1)) - 1
        self._c_min = -(1 << (counter_width - 1))
        self._tables = [[0] * (1 << log_table_size)
                        for _ in range(num_tables)]
        self._history_lengths = tuple(2 * i for i in range(num_tables))
        self._ghist = 0
        self._cached_ip: int | None = None
        self._cache: tuple | None = None
        self._stat_overrides = 0
        self._stat_good_overrides = 0

    def _indices(self, ip: int, main_prediction: bool) -> list[int]:
        # The main prediction is part of the index: the corrector learns
        # "when TAGE says X here, X is statistically wrong".
        seed = (ip << 1) | main_prediction
        return [
            xor_fold(seed ^ ((self._ghist & mask(length)) << 2)
                     ^ (table << 1), self.log_table_size)
            for table, length in enumerate(self._history_lengths)
        ]

    def _compute(self, ip: int) -> tuple:
        main_prediction = self.main.predict(ip)
        indices = self._indices(ip, main_prediction)
        total = 0
        for table, index in zip(self._tables, indices):
            total += table[index]
        # The corrector votes on agreement: positive supports the main
        # prediction, strongly negative inverts it.
        if total <= -self.threshold:
            final = not main_prediction
        else:
            final = main_prediction
        return main_prediction, indices, total, final

    def predict(self, ip: int) -> bool:
        """Main prediction, possibly inverted by a confident corrector."""
        state = self._compute(ip)
        self._cached_ip = ip
        self._cache = state
        if state[3] != state[0]:
            self._stat_overrides += 1
        return state[3]

    def train(self, branch: Branch) -> None:
        """Train the corrector on agreement; the main trains as usual."""
        if self._cached_ip != branch.ip or self._cache is None:
            self.predict(branch.ip)
        assert self._cache is not None
        main_prediction, indices, total, final = self._cache
        taken = branch.taken
        if final != main_prediction and final == taken:
            self._stat_good_overrides += 1
        probe = self._probe
        if probe is not None:
            inverted = final != main_prediction
            probe.record(branch.ip, "corrector" if inverted else "main",
                         final == taken,
                         overrode="main" if inverted else None)
        # Perceptron-style: update on low confidence or wrong final.
        agree = main_prediction == taken
        if final != taken or abs(total) <= self.threshold * 2:
            delta = 1 if agree else -1
            for table, index in zip(self._tables, indices):
                value = table[index] + delta
                table[index] = min(self._c_max, max(self._c_min, value))
        self.main.train(branch)
        self._cached_ip = None

    def track(self, branch: Branch) -> None:
        """Track the main predictor and the corrector's own history."""
        self.main.track(branch)
        self._ghist = ((self._ghist << 1) | branch.taken) & mask(
            max(self._history_lengths) or 1)
        self._cached_ip = None

    def metadata_stats(self) -> dict[str, Any]:
        """Nested self-description."""
        return {
            "name": "repro StatisticalCorrector",
            "num_tables": self.num_tables,
            "log_table_size": self.log_table_size,
            "counter_width": self.counter_width,
            "threshold": self.threshold,
            "main": self.main.metadata_stats(),
        }

    def spec(self) -> dict[str, Any]:
        """Cache-key identity, recursing into the main predictor's spec."""
        return {
            "name": "repro StatisticalCorrector",
            "num_tables": self.num_tables,
            "log_table_size": self.log_table_size,
            "counter_width": self.counter_width,
            "threshold": self.threshold,
            "main": self.main.spec(),
        }

    def execution_stats(self) -> dict[str, Any]:
        """Override behaviour plus the main predictor's statistics."""
        stats: dict[str, Any] = {
            "sc_overrides": self._stat_overrides,
            "sc_good_overrides": self._stat_good_overrides,
        }
        main_stats = self.main.execution_stats()
        if main_stats:
            stats["main"] = main_stats
        return stats

    def on_warmup_end(self) -> None:
        """Propagate and reset the override counters."""
        self._stat_overrides = 0
        self._stat_good_overrides = 0
        self.main.on_warmup_end()

    def attach_probe(self, probe: Any) -> None:
        """Attach the probe here and a scoped view to the main predictor."""
        self._probe = probe
        self.main.attach_probe(None if probe is None
                               else probe.scoped("main"))

    def probe_stats(self) -> dict[str, Any]:
        """Corrector vote-table snapshots plus the main's statistics."""
        from ..utils.tables import distribution_stats

        stats: dict[str, Any] = {}
        for t, table in enumerate(self._tables):
            stats[f"SC{t}"] = distribution_stats(table, self._c_min,
                                                 self._c_max)
        main_stats = self.main.probe_stats()
        if main_stats:
            stats["main"] = main_stats
        return stats


def tage_sc(**tage_kwargs: Any) -> StatisticalCorrector:
    """TAGE with a statistical corrector."""
    return StatisticalCorrector(Tage(**tage_kwargs))


def tage_sc_l(**tage_kwargs: Any) -> StatisticalCorrector:
    """TAGE-SC-L: TAGE + statistical corrector + loop predictor.

    Built entirely by composition: the loop predictor wraps TAGE, the
    corrector wraps the pair.  Every component keeps its own statistics,
    which all surface in the simulator output.
    """
    return StatisticalCorrector(WithLoopPredictor(Tage(**tage_kwargs)))
