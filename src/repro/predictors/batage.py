"""The BATAGE predictor (Michaud, 2018).

BATAGE — BAyesian TAGE — replaces TAGE's signed counters and
meta-predictors with *dual counters*: each tagged entry keeps how many
times its branch went taken (``n1``) and not-taken (``n0``), and the
estimated misprediction probability ``(1 + min) / (2 + n0 + n1)`` ranks
entries by confidence.  The prediction comes from the most confident
hitting entry (ties favour the longest history), which removes TAGE's
``use_alt_on_na`` machinery, and allocation pressure is governed by
**CAT** (Controlled Allocation Throttling).

The paper uses BATAGE as its heavyweight evaluation predictor: multiple
tables, prediction overriding by confidence priority, a non-trivial
update policy and a random number generator — the slowest predictor in
Table III, giving the worst-case speedup (3.25× over the CBP5 framework).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.branch import Branch
from ..core.predictor import Predictor
from ..utils.bits import mask
from ..utils.folded import FoldedHistory, HistoryWindow
from ..utils.hashing import xor_fold
from ..utils.lfsr import Lfsr
from .tage import geometric_history_lengths

__all__ = ["Batage", "dual_counter_confidence"]

#: Confidence levels, ordered best to worst.
HIGH, MEDIUM, LOW = 0, 1, 2


def dual_counter_confidence(n_taken: int, n_not_taken: int) -> int:
    """Confidence class of a dual counter (Michaud's derivation).

    The estimated misprediction probability is
    ``(1 + min) / (2 + n0 + n1)``; the classes are

    * ``HIGH``   — probability < 1/3  (``2*min + 1 < max``)
    * ``MEDIUM`` — 1/3 <= probability < 1/2
    * ``LOW``    — probability >= 1/2 (``min == max``, a coin toss)
    """
    low, high = ((n_taken, n_not_taken) if n_taken <= n_not_taken
                 else (n_not_taken, n_taken))
    if 2 * low + 1 < high:
        return HIGH
    if low < high:
        return MEDIUM
    return LOW


class _DualCounterTable:
    """Tagged table whose entries hold (tag, n_taken, n_not_taken)."""

    __slots__ = ("log_size", "tag_width", "counter_max",
                 "tags", "n_taken", "n_not_taken")

    def __init__(self, log_size: int, tag_width: int, counter_max: int):
        size = 1 << log_size
        self.log_size = log_size
        self.tag_width = tag_width
        self.counter_max = counter_max
        self.tags = [0] * size
        self.n_taken = [0] * size
        self.n_not_taken = [0] * size

    def update(self, index: int, taken: bool) -> None:
        """Michaud's dual-counter update: grow the witnessed side, or
        decay the opposite side when the witnessed one is saturated."""
        if taken:
            if self.n_taken[index] < self.counter_max:
                self.n_taken[index] += 1
            elif self.n_not_taken[index] > 0:
                self.n_not_taken[index] -= 1
        else:
            if self.n_not_taken[index] < self.counter_max:
                self.n_not_taken[index] += 1
            elif self.n_taken[index] > 0:
                self.n_taken[index] -= 1

    def decay(self, index: int) -> None:
        """Weaken the entry: decrement its larger side."""
        if self.n_taken[index] > self.n_not_taken[index]:
            self.n_taken[index] -= 1
        elif self.n_not_taken[index] > 0:
            self.n_not_taken[index] -= 1

    def allocate(self, index: int, tag: int, taken: bool) -> None:
        """Claim the entry with a weak counter seeded by the outcome."""
        self.tags[index] = tag
        self.n_taken[index] = 1 if taken else 0
        self.n_not_taken[index] = 0 if taken else 1


def _dual_table_stats(table: _DualCounterTable) -> dict[str, Any]:
    """Structural snapshot of a dual-counter table (:mod:`repro.probe`).

    Instead of counter-value entropy (dual counters are 2-D), reports
    the confidence-class mix derived from :func:`dual_counter_confidence`
    plus occupancy and saturation fractions.
    """
    import numpy as np

    n_taken = np.asarray(table.n_taken, dtype=np.int64)
    n_not_taken = np.asarray(table.n_not_taken, dtype=np.int64)
    entries = int(n_taken.size)
    low = np.minimum(n_taken, n_not_taken)
    high = np.maximum(n_taken, n_not_taken)
    high_conf = 2 * low + 1 < high
    return {
        "entries": entries,
        "live_fraction": float(((n_taken + n_not_taken) > 0).mean()),
        "saturated_fraction": float(
            ((n_taken == table.counter_max)
             | (n_not_taken == table.counter_max)).mean()),
        "high_confidence_fraction": float(high_conf.mean()),
        "medium_confidence_fraction": float((~high_conf & (low < high))
                                            .mean()),
        "low_confidence_fraction": float((low == high).mean()),
    }


class Batage(Predictor):
    """A parameterizable BATAGE.

    Parameters
    ----------
    num_tables:
        Number of tagged tables backing the base bimodal.
    log_base_size, log_tagged_size:
        log2 of the base and tagged table sizes.
    tag_widths:
        Per-table partial tag widths.
    min_history, max_history:
        Ends of the geometric history series.
    counter_max:
        Saturation value of each dual-counter half (3 bits → 7).
    cat_max:
        Range of the Controlled Allocation Throttling counter.
    skip_max:
        Largest number of tables an allocation may skip when CAT is
        fully throttled.
    """

    def __init__(self, num_tables: int = 7, log_base_size: int = 13,
                 log_tagged_size: int = 10,
                 tag_widths: Sequence[int] | None = None,
                 min_history: int = 5, max_history: int = 150,
                 counter_max: int = 7, cat_max: int = 1 << 14,
                 skip_max: int = 4, lfsr_seed: int = 0xBA7A6E):
        if num_tables < 1:
            raise ValueError("num_tables must be >= 1")
        if counter_max < 1:
            raise ValueError("counter_max must be >= 1")
        if cat_max < 1:
            raise ValueError("cat_max must be >= 1")
        self.num_tables = num_tables
        self.log_base_size = log_base_size
        self.log_tagged_size = log_tagged_size
        self.min_history = min_history
        self.max_history = max_history
        self.counter_max = counter_max
        self.cat_max = cat_max
        self.skip_max = skip_max
        self.history_lengths = geometric_history_lengths(
            num_tables, min_history, max_history)
        if tag_widths is None:
            tag_widths = tuple(min(14, 8 + i) for i in range(num_tables))
        if len(tag_widths) != num_tables:
            raise ValueError("need one tag width per tagged table")
        self.tag_widths = tuple(tag_widths)

        # The base predictor is itself a dual-counter table (untagged).
        self._base = _DualCounterTable(log_base_size, 0, counter_max)
        self._base_mask = mask(log_base_size)
        self._tables = [
            _DualCounterTable(log_tagged_size, self.tag_widths[i], counter_max)
            for i in range(num_tables)
        ]
        self._window = HistoryWindow(max(self.history_lengths))
        self._folded_index = [
            FoldedHistory(length, log_tagged_size)
            for length in self.history_lengths
        ]
        self._folded_tag0 = [
            FoldedHistory(length, self.tag_widths[i])
            for i, length in enumerate(self.history_lengths)
        ]
        self._folded_tag1 = [
            FoldedHistory(length, max(1, self.tag_widths[i] - 1))
            for i, length in enumerate(self.history_lengths)
        ]
        self._path = 0
        self._rng = Lfsr(width=32, seed=lfsr_seed)
        self._cat = 0  # Controlled Allocation Throttling state
        self._cached_ip: int | None = None
        self._cache: dict[str, Any] = {}
        self._stat_provider_hits = [0] * (num_tables + 1)
        self._stat_allocations = 0
        self._stat_decays = 0

    # ------------------------------------------------------------------
    # Index and tag computation (shared shape with TAGE).
    # ------------------------------------------------------------------

    def _base_index(self, ip: int) -> int:
        return ip & self._base_mask

    def _tagged_index(self, table: int, ip: int) -> int:
        w = self.log_tagged_size
        value = (xor_fold(ip, w) ^ xor_fold(ip >> w, w)
                 ^ self._folded_index[table].value
                 ^ xor_fold(self._path, w) ^ (table * 3))
        return value & mask(w)

    def _tag(self, table: int, ip: int) -> int:
        w = self.tag_widths[table]
        value = (xor_fold(ip, w) ^ self._folded_tag0[table].value
                 ^ (self._folded_tag1[table].value << 1))
        return value & mask(w)

    # ------------------------------------------------------------------
    # Prediction.
    # ------------------------------------------------------------------

    def _lookup(self, ip: int) -> dict[str, Any]:
        indices = [self._tagged_index(t, ip) for t in range(self.num_tables)]
        tags = [self._tag(t, ip) for t in range(self.num_tables)]
        hits = [
            t for t in range(self.num_tables)
            if self._tables[t].tags[indices[t]] == tags[t]
        ]
        base_index = self._base_index(ip)
        base_n1 = self._base.n_taken[base_index]
        base_n0 = self._base.n_not_taken[base_index]

        # Scan candidates from the longest history down to the base and
        # keep the most confident; the scan order makes ties favour the
        # longer history (strict improvement is required to switch).
        best_table: int | None = None  # None = the base provides
        best_conf = dual_counter_confidence(base_n1, base_n0)
        best_pred = base_n1 >= base_n0
        first = True
        for t in reversed(hits):
            n1 = self._tables[t].n_taken[indices[t]]
            n0 = self._tables[t].n_not_taken[indices[t]]
            conf = dual_counter_confidence(n1, n0)
            if first or conf < best_conf:
                best_table, best_conf, best_pred = t, conf, n1 >= n0
            first = False
        if not first:
            # Base entry competes last: it wins only on strictly better
            # confidence than every hitting entry.
            base_conf = dual_counter_confidence(base_n1, base_n0)
            if base_conf < best_conf:
                best_table, best_conf = None, base_conf
                best_pred = base_n1 >= base_n0
        return {
            "indices": indices,
            "tags": tags,
            "hits": hits,
            "provider": best_table,
            "confidence": best_conf,
            "final": best_pred,
        }

    def predict(self, ip: int) -> bool:
        """Most confident hitting entry wins; longest history breaks ties."""
        state = self._lookup(ip)
        self._cached_ip = ip
        self._cache = state
        return state["final"]

    # ------------------------------------------------------------------
    # Training.
    # ------------------------------------------------------------------

    def train(self, branch: Branch) -> None:
        """Dual-counter updates, confidence-based decay and CAT allocation."""
        if self._cached_ip != branch.ip or not self._cache:
            self.predict(branch.ip)
        state = self._cache
        taken = branch.taken
        indices = state["indices"]
        hits: list[int] = state["hits"]
        provider = state["provider"]
        mispredicted = state["final"] != taken

        self._stat_provider_hits[0 if provider is None else provider + 1] += 1

        probe = self._probe
        if probe is not None:
            # The most confident entry provided; when that was not the
            # longest-history hit, confidence ranking overrode it.
            source = "base" if provider is None else f"T{provider + 1}"
            longest = hits[-1] if hits else None
            overrode = (f"T{longest + 1}"
                        if longest is not None and provider != longest
                        else None)
            probe.record(branch.ip, source, not mispredicted,
                         overrode=overrode)

        # Update the provider; also update the next candidate when the
        # provider is not yet highly confident (keeps the fallback warm).
        if provider is None:
            self._base.update(self._base_index(branch.ip), taken)
        else:
            self._tables[provider].update(indices[provider], taken)
            if state["confidence"] != HIGH:
                shorter = [t for t in hits if t < provider]
                if shorter:
                    t = shorter[-1]
                    self._tables[t].update(indices[t], taken)
                else:
                    self._base.update(self._base_index(branch.ip), taken)

        if mispredicted:
            self._allocate(branch.ip, taken, provider, indices)
        self._cached_ip = None

    def _allocate(self, ip: int, taken: bool, provider: int | None,
                  indices: list[int]) -> None:
        """CAT-throttled allocation in a longer-history table.

        The CAT counter tracks how often allocations clobber useful
        (high-confidence) entries; as it grows, allocations randomly skip
        tables, lowering the allocation rate.  Victims that are highly
        confident are decayed instead of stolen — controlled decay.
        """
        start = 0 if provider is None else provider + 1
        if start >= self.num_tables:
            return
        # Throttle: skip up to skip_max tables with probability cat/cat_max.
        skip = 0
        while (skip < self.skip_max
               and self._rng.below(self.cat_max, bits=14) < self._cat):
            skip += 1
        table = start + skip
        if table >= self.num_tables:
            return
        index = indices[table]
        entry = self._tables[table]
        n1, n0 = entry.n_taken[index], entry.n_not_taken[index]
        if dual_counter_confidence(n1, n0) == HIGH:
            # Useful victim: decay it, raise the throttle.
            entry.decay(index)
            self._stat_decays += 1
            self._cat = min(self.cat_max - 1, self._cat + 3)
        else:
            entry.allocate(index, self._tag(table, ip), taken)
            self._stat_allocations += 1
            self._cat = max(0, self._cat - 1)

    # ------------------------------------------------------------------
    # Scenario tracking.
    # ------------------------------------------------------------------

    def track(self, branch: Branch) -> None:
        """Push the outcome through the window and folded registers."""
        new_bit = branch.taken
        for t in range(self.num_tables):
            evicted = self._window[self.history_lengths[t] - 1]
            self._folded_index[t].update(new_bit, evicted)
            self._folded_tag0[t].update(new_bit, evicted)
            self._folded_tag1[t].update(new_bit, evicted)
        self._window.push(new_bit)
        self._path = ((self._path << 1) ^ (branch.ip & 0xFFFF)) & 0xFFFF
        self._cached_ip = None

    # ------------------------------------------------------------------
    # Output hooks.
    # ------------------------------------------------------------------

    def metadata_stats(self) -> dict[str, Any]:
        """Self-description for the simulator output."""
        return {
            "name": "repro BATAGE",
            "num_tables": self.num_tables,
            "log_base_size": self.log_base_size,
            "log_tagged_size": self.log_tagged_size,
            "tag_widths": list(self.tag_widths),
            "history_lengths": list(self.history_lengths),
            "counter_max": self.counter_max,
            "cat_max": self.cat_max,
            "skip_max": self.skip_max,
        }

    def execution_stats(self) -> dict[str, Any]:
        """Provider distribution, allocation and decay behaviour."""
        return {
            "provider_hits": {
                "base" if t == 0 else f"T{t}": count
                for t, count in enumerate(self._stat_provider_hits)
            },
            "allocations": self._stat_allocations,
            "controlled_decays": self._stat_decays,
            "cat": self._cat,
        }

    def on_warmup_end(self) -> None:
        """Reset statistics so they cover the measured region only."""
        self._stat_provider_hits = [0] * (self.num_tables + 1)
        self._stat_allocations = 0
        self._stat_decays = 0

    def probe_stats(self) -> dict[str, Any]:
        """Structural snapshot: confidence mix of every dual-counter table."""
        stats: dict[str, Any] = {"base": _dual_table_stats(self._base)}
        for t, table in enumerate(self._tables):
            stats[f"T{t + 1}"] = _dual_table_stats(table)
        return stats

    def storage_bits(self) -> int:
        """Hardware budget of the configuration, in bits."""
        counter_bits = 2 * (self.counter_max.bit_length())
        base = (1 << self.log_base_size) * counter_bits
        tagged = sum(
            (1 << self.log_tagged_size) * (self.tag_widths[t] + counter_bits)
            for t in range(self.num_tables)
        )
        return base + tagged + max(self.history_lengths)
