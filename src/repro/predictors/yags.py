"""The YAGS predictor (Eden & Mudge, 1998).

YAGS — Yet Another Global Scheme — refines the agree/filter idea: a
bimodal *choice* table captures each branch's bias, and two small tagged
direction caches store only the **exceptions** (taken-cache: branches
that went taken although their bias says not-taken; not-taken-cache: the
converse).  Because only exceptions consume history-indexed storage,
YAGS gets gshare-class accuracy from much smaller tables.

Included as an extension beyond the paper's Table II list — the examples
library is explicitly pitched as a growing collection.
"""

from __future__ import annotations

from typing import Any

from ..core.branch import Branch
from ..core.predictor import Predictor
from ..utils.bits import mask
from ..utils.hashing import xor_fold

__all__ = ["Yags"]


class _ExceptionCache:
    """A tagged table of 2-bit counters (one YAGS direction cache)."""

    __slots__ = ("log_size", "tag_width", "tags", "counters")

    def __init__(self, log_size: int, tag_width: int):
        size = 1 << log_size
        self.log_size = log_size
        self.tag_width = tag_width
        self.tags = [-1] * size
        self.counters = [0] * size

    def lookup(self, index: int, tag: int) -> int | None:
        if self.tags[index] == tag:
            return self.counters[index]
        return None

    def update(self, index: int, tag: int, taken: bool) -> None:
        if self.tags[index] != tag:
            self.tags[index] = tag
            self.counters[index] = 0 if taken else -1
            return
        value = self.counters[index] + (1 if taken else -1)
        self.counters[index] = min(1, max(-2, value))


class Yags(Predictor):
    """YAGS with a bimodal choice table and two exception caches.

    Parameters
    ----------
    log_choice_size:
        log2 of the bimodal choice table.
    log_cache_size:
        log2 of each direction cache.
    tag_width:
        Partial tag bits stored in the caches.
    history_length:
        Global history bits hashed into the cache index.
    """

    def __init__(self, log_choice_size: int = 13, log_cache_size: int = 11,
                 tag_width: int = 8, history_length: int = 12):
        if log_choice_size < 1 or log_cache_size < 1:
            raise ValueError("table sizes must be >= 1 bit of index")
        if tag_width < 1:
            raise ValueError("tag_width must be >= 1")
        if history_length < 1:
            raise ValueError("history_length must be >= 1")
        self.log_choice_size = log_choice_size
        self.log_cache_size = log_cache_size
        self.tag_width = tag_width
        self.history_length = history_length
        self._choice = [0] * (1 << log_choice_size)
        self._taken_cache = _ExceptionCache(log_cache_size, tag_width)
        self._not_taken_cache = _ExceptionCache(log_cache_size, tag_width)
        self._ghist = 0
        self._cached_ip: int | None = None
        self._cache: tuple | None = None

    def _indices(self, ip: int) -> tuple[int, int, int]:
        choice_index = ip & mask(self.log_choice_size)
        cache_index = xor_fold(ip ^ self._ghist, self.log_cache_size)
        tag = xor_fold(ip >> 1, self.tag_width)
        return choice_index, cache_index, tag

    def _compute(self, ip: int) -> tuple:
        choice_index, cache_index, tag = self._indices(ip)
        bias_taken = self._choice[choice_index] >= 0
        # Consult the cache that stores exceptions to this bias.
        cache = (self._not_taken_cache if bias_taken
                 else self._taken_cache)
        exception = cache.lookup(cache_index, tag)
        if exception is not None:
            final = exception >= 0
        else:
            final = bias_taken
        return (choice_index, cache_index, tag, bias_taken,
                exception is not None, final)

    def predict(self, ip: int) -> bool:
        """Bias from the choice table unless an exception entry hits."""
        state = self._compute(ip)
        self._cached_ip = ip
        self._cache = state
        return state[5]

    def train(self, branch: Branch) -> None:
        """Update choice and the relevant exception cache."""
        if self._cached_ip != branch.ip or self._cache is None:
            self.predict(branch.ip)
        assert self._cache is not None
        (choice_index, cache_index, tag, bias_taken, cache_hit,
         final) = self._cache
        taken = branch.taken

        probe = self._probe
        if probe is not None:
            if cache_hit:
                consulted = ("not_taken_cache" if bias_taken
                             else "taken_cache")
                probe.record(branch.ip, consulted, final == taken,
                             overrode=("choice" if final != bias_taken
                                       else None))
            else:
                probe.record(branch.ip, "choice", final == taken)

        # The choice table trains except when it disagreed with the
        # outcome but the exception cache covered for it (keeping the
        # bias stable is the point of the scheme).
        if not (bias_taken != taken and cache_hit and final == taken):
            value = self._choice[choice_index] + (1 if taken else -1)
            self._choice[choice_index] = min(1, max(-2, value))

        # The exception cache for this bias trains when the outcome
        # contradicts the bias (a new exception) or when it already hit.
        cache = (self._not_taken_cache if bias_taken
                 else self._taken_cache)
        if taken != bias_taken or cache_hit:
            cache.update(cache_index, tag, taken)
        self._cached_ip = None

    def track(self, branch: Branch) -> None:
        """Shift the outcome into the global history register."""
        self._ghist = (((self._ghist << 1) | branch.taken)
                       & mask(self.history_length))
        self._cached_ip = None

    def metadata_stats(self) -> dict[str, Any]:
        """Self-description for the simulator output."""
        return {
            "name": "repro YAGS",
            "log_choice_size": self.log_choice_size,
            "log_cache_size": self.log_cache_size,
            "tag_width": self.tag_width,
            "history_length": self.history_length,
        }

    def probe_stats(self) -> dict[str, Any]:
        """Structural snapshot: choice table and both exception caches."""
        from ..utils.tables import distribution_stats

        def cache_stats(cache: _ExceptionCache) -> dict[str, Any]:
            stats = distribution_stats(cache.counters, -2, 1)
            live = sum(1 for tag in cache.tags if tag != -1)
            stats["live_fraction"] = live / len(cache.tags)
            return stats

        return {
            "choice": distribution_stats(self._choice, -2, 1),
            "taken_cache": cache_stats(self._taken_cache),
            "not_taken_cache": cache_stats(self._not_taken_cache),
        }

    def storage_bits(self) -> int:
        """Hardware budget of the configuration, in bits."""
        choice = (1 << self.log_choice_size) * 2
        caches = 2 * (1 << self.log_cache_size) * (2 + self.tag_width)
        return choice + caches + self.history_length

    def vector_kernel(self) -> Any:
        """Hybrid kernel: vectorized index/tag streams, scalar caches.

        Histories longer than 63 bits do not fit the packed uint64
        windows, so such configurations stay on the scalar engine.
        """
        if self.history_length > 63:
            return None
        from ..core.vectorized import YagsKernel

        return YagsKernel(self.log_choice_size, self.log_cache_size,
                          self.tag_width, self.history_length)
