"""Local-history prediction and the Alpha 21264 tournament.

The Alpha 21264 (1998) shipped the most famous *local/global* hybrid in
real silicon: a two-level **local** predictor (1K entries of 10-bit
per-branch histories feeding 3-bit counters), a 12-bit-history **global**
predictor of 2-bit counters, and a global-history-indexed **choice**
table of 2-bit counters arbitrating between them.

:class:`LocalPredictor` is the local half as a standalone component (a
thin, purpose-named wrapper over the two-level machinery with the
21264's parameters as defaults); :func:`alpha21264` assembles the whole
hybrid out of stock parts using the generalized tournament — one more
demonstration that the examples library composes (Section VI-D).
"""

from __future__ import annotations

from typing import Any

from ..core.branch import Branch
from ..core.predictor import Predictor
from ..utils.bits import mask
from ..utils.history import LocalHistoryTable
from .tournament import Tournament
from .twolevel import GAg

__all__ = ["LocalPredictor", "alpha21264"]


class LocalPredictor(Predictor):
    """The 21264-style two-level local predictor.

    Entry ``i`` of the first level holds the last ``history_length``
    outcomes of the branches whose address maps to ``i``; that pattern
    indexes a shared table of ``counter_width``-bit saturating counters.

    Parameters
    ----------
    log_histories:
        log2 of the local-history table (the 21264 used 10 → 1K entries).
    history_length:
        Outcomes per local history (the 21264 used 10).
    counter_width:
        Bits per pattern counter (the 21264 used 3).
    """

    def __init__(self, log_histories: int = 10, history_length: int = 10,
                 counter_width: int = 3):
        if log_histories < 0:
            raise ValueError("log_histories must be >= 0")
        if not 1 <= history_length <= 20:
            raise ValueError("history_length must be in [1, 20]")
        if counter_width < 1:
            raise ValueError("counter_width must be >= 1")
        self.log_histories = log_histories
        self.history_length = history_length
        self.counter_width = counter_width
        self._histories = LocalHistoryTable(1 << log_histories,
                                            history_length)
        self._max = (1 << (counter_width - 1)) - 1
        self._min = -(1 << (counter_width - 1))
        self._counters = [0] * (1 << history_length)
        self._index_mask = mask(log_histories)

    def _history_index(self, ip: int) -> int:
        return ip & self._index_mask

    def predict(self, ip: int) -> bool:
        """Pattern counter selected by this branch's local history."""
        pattern = self._histories.read(self._history_index(ip))
        return self._counters[pattern] >= 0

    def train(self, branch: Branch) -> None:
        """Saturating update of the selected pattern counter."""
        pattern = self._histories.read(self._history_index(branch.ip))
        value = self._counters[pattern]
        if branch.taken:
            if value < self._max:
                self._counters[pattern] = value + 1
        elif value > self._min:
            self._counters[pattern] = value - 1

    def track(self, branch: Branch) -> None:
        """Shift the outcome into this branch's local history."""
        self._histories.push(self._history_index(branch.ip), branch.taken)

    def metadata_stats(self) -> dict[str, Any]:
        """Self-description for the simulator output."""
        return {
            "name": "repro LocalPredictor",
            "log_histories": self.log_histories,
            "history_length": self.history_length,
            "counter_width": self.counter_width,
        }

    def storage_bits(self) -> int:
        """Hardware budget of the configuration, in bits."""
        return ((1 << self.log_histories) * self.history_length
                + (1 << self.history_length) * self.counter_width)

    def vector_kernel(self) -> Any:
        """Shared pattern table indexed by per-address history windows."""
        import numpy as np

        from ..core.vectorized import SaturatingTableKernel

        history_length = self.history_length
        index_mask = np.uint64(self._index_mask)
        return SaturatingTableKernel(
            lambda ctx: ctx.keyed_history(ctx.tracked_ips & index_mask,
                                          history_length),
            self.counter_width)


def alpha21264() -> Tournament:
    """The Alpha 21264 hybrid: local vs global with a global chooser.

    Parameters follow the shipped design: 1K x 10-bit local histories
    into 1K 3-bit counters; 4K 2-bit global counters over 12 bits of
    history; 4K 2-bit choice counters, also history-indexed.
    """
    return Tournament(
        meta=GAg(history_length=12),
        bp0=LocalPredictor(log_histories=10, history_length=10,
                           counter_width=3),
        bp1=GAg(history_length=12),
    )
