"""The 2bc-gskew predictor (Seznec & Michaud, 1999).

2bc-gskew is a de-aliased hybrid: an **e-gskew** majority vote over three
counter banks (a bimodal bank ``BIM`` and two history banks ``G0``/``G1``
indexed with *skewed* hash functions so an alias in one bank is not an
alias in the others) arbitrated against the plain bimodal bank by a
**meta** bank.  It was the direction predictor of the Alpha EV8 design
and is Table II's "more effective but still old" example.

The partial-update policy follows the original technical report:

* meta is trained only when the bimodal and e-gskew predictions differ;
* on a correct final prediction, only the banks that *agreed* with the
  outcome are strengthened (and the bimodal bank only when it provided);
* on a misprediction, every bank is trained towards the outcome (only
  the providing side when meta was confident in it, all banks otherwise).
"""

from __future__ import annotations

from typing import Any

from ..core.branch import Branch
from ..core.predictor import Predictor
from ..utils.bits import mask
from ..utils.hashing import skew_hash, xor_fold

__all__ = ["TwoBcGskew"]


class TwoBcGskew(Predictor):
    """2bc-gskew with four equally sized banks of 2-bit counters.

    Parameters
    ----------
    log_bank_size:
        log2 of each bank's counter count.
    history_length_g0, history_length_g1:
        Global history bits mixed into the two skewed banks (the classic
        configuration gives G1 a longer history than G0).
    """

    def __init__(self, log_bank_size: int = 14,
                 history_length_g0: int = 9,
                 history_length_g1: int = 16):
        if log_bank_size < 2:
            raise ValueError("log_bank_size must be >= 2")
        if history_length_g0 < 1 or history_length_g1 < 1:
            raise ValueError("history lengths must be >= 1")
        self.log_bank_size = log_bank_size
        self.history_length_g0 = history_length_g0
        self.history_length_g1 = history_length_g1
        size = 1 << log_bank_size
        self._bim = [0] * size
        self._g0 = [0] * size
        self._g1 = [0] * size
        self._meta = [0] * size
        self._ghist = 0
        self._history_mask = mask(max(history_length_g0, history_length_g1))
        # Cached per-prediction state, consumed by train (predict-then-
        # train protocol, same caching idiom as the tournament).
        self._cached_ip: int | None = None
        self._cache: tuple[int, int, int, int, bool, bool, bool, bool] | None = None

    # ------------------------------------------------------------------
    # Indexing.
    # ------------------------------------------------------------------

    def _indices(self, ip: int) -> tuple[int, int, int, int]:
        """Bank indices: bimodal and meta by address, G0/G1 skewed."""
        w = self.log_bank_size
        bim_index = xor_fold(ip, w)
        h0 = self._ghist & mask(self.history_length_g0)
        h1 = self._ghist & mask(self.history_length_g1)
        v0 = xor_fold(ip ^ (h0 << 1), w)
        v1 = xor_fold(ip ^ (h1 << 1), w)
        g0_index = skew_hash(v0, xor_fold(ip, w), 0, w)
        g1_index = skew_hash(v1, xor_fold(ip, w), 1, w)
        meta_index = bim_index
        return bim_index, g0_index, g1_index, meta_index

    def _compute(self, ip: int) -> tuple[int, int, int, int, bool, bool, bool, bool]:
        bi, g0i, g1i, mi = self._indices(ip)
        bim_pred = self._bim[bi] >= 0
        g0_pred = self._g0[g0i] >= 0
        g1_pred = self._g1[g1i] >= 0
        # e-gskew majority over the three direction banks.
        majority = (bim_pred + g0_pred + g1_pred) >= 2
        use_gskew = self._meta[mi] >= 0
        final = majority if use_gskew else bim_pred
        return bi, g0i, g1i, mi, bim_pred, g0_pred, g1_pred, final

    # ------------------------------------------------------------------
    # Predictor interface.
    # ------------------------------------------------------------------

    def predict(self, ip: int) -> bool:
        """Meta selects between the bimodal bank and the e-gskew majority."""
        state = self._compute(ip)
        self._cached_ip = ip
        self._cache = state
        return state[7]

    @staticmethod
    def _bump(table: list[int], index: int, taken: bool) -> None:
        v = table[index]
        if taken:
            if v < 1:
                table[index] = v + 1
        elif v > -2:
            table[index] = v - 1

    def train(self, branch: Branch) -> None:
        """Partial-update policy of the original 2bc-gskew."""
        if self._cached_ip != branch.ip or self._cache is None:
            self.predict(branch.ip)
        assert self._cache is not None
        bi, g0i, g1i, mi, bim_pred, g0_pred, g1_pred, final = self._cache
        taken = branch.taken
        majority = (bim_pred + g0_pred + g1_pred) >= 2
        use_gskew = self._meta[mi] >= 0

        probe = self._probe
        if probe is not None:
            provider = "gskew" if use_gskew else "bimodal"
            other = "bimodal" if use_gskew else "gskew"
            probe.record(branch.ip, provider, final == taken,
                         overrode=other if bim_pred != majority else None)

        # Meta learns which side was right, only when they disagreed.
        if bim_pred != majority:
            self._bump(self._meta, mi, majority == taken)

        if final == taken:
            # Correct: strengthen only the agreeing banks of the provider
            # side (and BIM whenever it agreed — it is also G0/G1's ally).
            if use_gskew:
                if bim_pred == taken:
                    self._bump(self._bim, bi, taken)
                if g0_pred == taken:
                    self._bump(self._g0, g0i, taken)
                if g1_pred == taken:
                    self._bump(self._g1, g1i, taken)
            else:
                self._bump(self._bim, bi, taken)
        else:
            # Mispredict: retrain everything towards the outcome.
            self._bump(self._bim, bi, taken)
            self._bump(self._g0, g0i, taken)
            self._bump(self._g1, g1i, taken)
        self._cached_ip = None
        self._cache = None

    def track(self, branch: Branch) -> None:
        """Shift the outcome into the shared global history."""
        self._ghist = ((self._ghist << 1) | branch.taken) & self._history_mask
        self._cached_ip = None
        self._cache = None

    def metadata_stats(self) -> dict[str, Any]:
        """Self-description for the simulator output."""
        return {
            "name": "repro 2bc-gskew",
            "log_bank_size": self.log_bank_size,
            "history_length_g0": self.history_length_g0,
            "history_length_g1": self.history_length_g1,
        }

    def probe_stats(self) -> dict[str, Any]:
        """Structural snapshot of all four banks."""
        from ..utils.tables import distribution_stats

        return {
            "bimodal": distribution_stats(self._bim, -2, 1),
            "g0": distribution_stats(self._g0, -2, 1),
            "g1": distribution_stats(self._g1, -2, 1),
            "meta": distribution_stats(self._meta, -2, 1),
        }

    def storage_bits(self) -> int:
        """Hardware budget of the configuration, in bits."""
        return 4 * (1 << self.log_bank_size) * 2

    def vector_kernel(self) -> Any:
        """Hybrid kernel: vectorized bank indexing, scalar bank updates.

        Histories longer than 63 bits do not fit the packed uint64
        windows, so such configurations stay on the scalar engine.
        """
        if max(self.history_length_g0, self.history_length_g1) > 63:
            return None
        from ..core.vectorized import GskewKernel

        return GskewKernel(self.log_bank_size, self.history_length_g0,
                           self.history_length_g1)
