"""Two-level adaptive predictors (Yeh & Patt, 1992).

The two-level family is a 3×3 design space named by a three-letter code:

* first letter — scope of the **history registers** (first level):
  ``G``\\ lobal (one register), ``P``\\ er-address (one per branch
  address), ``S``\\ et (one per address set);
* ``A`` — *adaptive* (always);
* last letter — scope of the **pattern tables** (second level):
  ``g``\\ lobal (one table), ``p``\\ er-address, ``s``\\ et.

:class:`TwoLevel` implements the whole space with two scope parameters,
which is how "all versions of Two Level: GAg, GAs, PAs, SAp, etc."
(paper Table II) come from a single class; the module exports one factory
per classic variant.
"""

from __future__ import annotations

import enum
from typing import Any

from ..core.branch import Branch
from ..core.predictor import Predictor
from ..utils.bits import mask
from ..utils.history import LocalHistoryTable

__all__ = [
    "Scope", "TwoLevel",
    "GAg", "GAp", "GAs", "PAg", "PAp", "PAs", "SAg", "SAp", "SAs",
]


class Scope(enum.Enum):
    """Sharing granularity of a two-level structure."""

    GLOBAL = "global"
    PER_ADDRESS = "per_address"
    PER_SET = "per_set"

    def letter(self, *, level: int) -> str:
        """The scheme-name letter for this scope at a given level."""
        letters = {
            Scope.GLOBAL: ("G", "g"),
            Scope.PER_ADDRESS: ("P", "p"),
            Scope.PER_SET: ("S", "s"),
        }
        return letters[self][0 if level == 1 else 1]


class TwoLevel(Predictor):
    """The generic two-level adaptive predictor.

    Parameters
    ----------
    history_scope:
        Scope of the first-level history registers.
    pattern_scope:
        Scope of the second-level pattern tables.
    history_length:
        Bits of outcome history per register (also the pattern-table
        index width).
    log_histories:
        log2 of the number of first-level registers (ignored for a
        global register).
    log_pattern_tables:
        log2 of the number of second-level tables (ignored for a global
        table).
    set_shift:
        Address bits dropped when forming a *set* index, so nearby
        branches share a set structure.
    counter_width:
        Bits per pattern-table counter.
    """

    def __init__(self, history_scope: Scope = Scope.GLOBAL,
                 pattern_scope: Scope = Scope.GLOBAL,
                 history_length: int = 12, log_histories: int = 10,
                 log_pattern_tables: int = 4, set_shift: int = 4,
                 counter_width: int = 2):
        if history_length < 1:
            raise ValueError("history_length must be >= 1")
        if history_length > 24:
            raise ValueError(
                "history_length above 24 would need a pattern table of "
                f"2**{history_length} counters; refusing"
            )
        if log_histories < 0 or log_pattern_tables < 0 or set_shift < 0:
            raise ValueError("table size parameters must be non-negative")
        if counter_width < 1:
            raise ValueError("counter_width must be >= 1")
        self.history_scope = Scope(history_scope)
        self.pattern_scope = Scope(pattern_scope)
        self.history_length = history_length
        self.log_histories = log_histories
        self.log_pattern_tables = log_pattern_tables
        self.set_shift = set_shift
        self.counter_width = counter_width

        self._max = (1 << (counter_width - 1)) - 1
        self._min = -(1 << (counter_width - 1))
        self._history_mask = mask(history_length)

        if self.history_scope is Scope.GLOBAL:
            self._global_history = 0
            self._local = None
        else:
            self._global_history = 0
            self._local = LocalHistoryTable(1 << log_histories, history_length)

        num_tables = (1 if self.pattern_scope is Scope.GLOBAL
                      else 1 << log_pattern_tables)
        self.num_pattern_tables = num_tables
        self._tables = [[0] * (1 << history_length) for _ in range(num_tables)]
        self._table_mask = num_tables - 1

    # ------------------------------------------------------------------
    # Index selection.
    # ------------------------------------------------------------------

    def _history_index(self, ip: int) -> int:
        if self.history_scope is Scope.PER_SET:
            return (ip >> self.set_shift) & mask(self.log_histories)
        return ip & mask(self.log_histories)

    def _history_for(self, ip: int) -> int:
        if self._local is None:
            return self._global_history
        return self._local.read(self._history_index(ip))

    def _pattern_table(self, ip: int) -> list[int]:
        if self.pattern_scope is Scope.GLOBAL:
            return self._tables[0]
        if self.pattern_scope is Scope.PER_SET:
            return self._tables[(ip >> self.set_shift) & self._table_mask]
        return self._tables[ip & self._table_mask]

    # ------------------------------------------------------------------
    # Predictor interface.
    # ------------------------------------------------------------------

    def predict(self, ip: int) -> bool:
        """Index the pattern table with this branch's history register."""
        return self._pattern_table(ip)[self._history_for(ip)] >= 0

    def train(self, branch: Branch) -> None:
        """Saturating update of the selected pattern counter."""
        table = self._pattern_table(branch.ip)
        i = self._history_for(branch.ip)
        v = table[i]
        if branch.taken:
            if v < self._max:
                table[i] = v + 1
        elif v > self._min:
            table[i] = v - 1

    def track(self, branch: Branch) -> None:
        """Shift the outcome into this branch's history register."""
        if self._local is None:
            self._global_history = (
                ((self._global_history << 1) | branch.taken)
                & self._history_mask
            )
        else:
            self._local.push(self._history_index(branch.ip), branch.taken)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def scheme_name(self) -> str:
        """The classic three-letter scheme name, e.g. ``"GAs"``."""
        return (self.history_scope.letter(level=1) + "A"
                + self.pattern_scope.letter(level=2))

    def metadata_stats(self) -> dict[str, Any]:
        """Self-description for the simulator output."""
        return {
            "name": f"repro TwoLevel {self.scheme_name()}",
            "scheme": self.scheme_name(),
            "history_length": self.history_length,
            "log_histories": self.log_histories,
            "num_pattern_tables": self.num_pattern_tables,
            "set_shift": self.set_shift,
            "counter_width": self.counter_width,
        }

    def storage_bits(self) -> int:
        """Hardware budget of the configuration, in bits."""
        pattern = (self.num_pattern_tables * (1 << self.history_length)
                   * self.counter_width)
        if self._local is None:
            first = self.history_length
        else:
            first = (1 << self.log_histories) * self.history_length
        return pattern + first

    def vector_kernel(self) -> Any:
        """All nine schemes as one saturating table.

        The pattern tables are independent counter arrays, so table
        selection and the history pattern combine into a single flat
        index ``(table << history_length) | pattern`` over one table of
        ``num_pattern_tables * 2**history_length`` counters — the same
        saturating-walk kernel as bimodal, with scheme-specific history
        derivation (one global window, or per-key windows keyed the way
        ``track`` keys the first-level table).
        """
        import numpy as np

        from ..core.vectorized import SaturatingTableKernel

        history_length = self.history_length
        history_scope = self.history_scope
        pattern_scope = self.pattern_scope
        history_key_mask = np.uint64(mask(self.log_histories))
        table_mask = np.uint64(self._table_mask)
        set_shift = np.uint64(self.set_shift)

        def indices(ctx: Any) -> Any:
            if history_scope is Scope.GLOBAL:
                patterns = ctx.global_history(history_length)
            else:
                keys = ctx.tracked_ips
                if history_scope is Scope.PER_SET:
                    keys = keys >> set_shift
                patterns = ctx.keyed_history(keys & history_key_mask,
                                             history_length)
            if pattern_scope is Scope.GLOBAL:
                selects = np.zeros(ctx.n, dtype=np.uint64)
            elif pattern_scope is Scope.PER_SET:
                selects = (ctx.ips >> set_shift) & table_mask
            else:
                selects = ctx.ips & table_mask
            return (selects << np.uint64(history_length)) | patterns

        return SaturatingTableKernel(indices, self.counter_width)


def GAg(history_length: int = 16, **kwargs: Any) -> TwoLevel:
    """Global history register, global pattern table."""
    return TwoLevel(Scope.GLOBAL, Scope.GLOBAL, history_length, **kwargs)


def GAp(history_length: int = 12, **kwargs: Any) -> TwoLevel:
    """Global history register, per-address pattern tables."""
    return TwoLevel(Scope.GLOBAL, Scope.PER_ADDRESS, history_length, **kwargs)


def GAs(history_length: int = 12, **kwargs: Any) -> TwoLevel:
    """Global history register, per-set pattern tables."""
    return TwoLevel(Scope.GLOBAL, Scope.PER_SET, history_length, **kwargs)


def PAg(history_length: int = 12, **kwargs: Any) -> TwoLevel:
    """Per-address history registers, global pattern table."""
    return TwoLevel(Scope.PER_ADDRESS, Scope.GLOBAL, history_length, **kwargs)


def PAp(history_length: int = 10, **kwargs: Any) -> TwoLevel:
    """Per-address history registers, per-address pattern tables."""
    return TwoLevel(Scope.PER_ADDRESS, Scope.PER_ADDRESS, history_length,
                    **kwargs)


def PAs(history_length: int = 10, **kwargs: Any) -> TwoLevel:
    """Per-address history registers, per-set pattern tables."""
    return TwoLevel(Scope.PER_ADDRESS, Scope.PER_SET, history_length, **kwargs)


def SAg(history_length: int = 12, **kwargs: Any) -> TwoLevel:
    """Per-set history registers, global pattern table."""
    return TwoLevel(Scope.PER_SET, Scope.GLOBAL, history_length, **kwargs)


def SAp(history_length: int = 10, **kwargs: Any) -> TwoLevel:
    """Per-set history registers, per-address pattern tables."""
    return TwoLevel(Scope.PER_SET, Scope.PER_ADDRESS, history_length, **kwargs)


def SAs(history_length: int = 10, **kwargs: Any) -> TwoLevel:
    """Per-set history registers, per-set pattern tables."""
    return TwoLevel(Scope.PER_SET, Scope.PER_SET, history_length, **kwargs)
