"""The O-GEHL predictor (Seznec, 2005).

GEHL — GEometric History Length — sums small signed counters from
several tables indexed with geometrically increasing history lengths,
like the hashed perceptron, but adds the *optimized* control loop that
made O-GEHL a CBP-1 winner:

* **adaptive threshold** — a counter balances threshold-driven and
  misprediction-driven updates to keep the training rate right;
* **dynamic history lengths** — when long histories keep proving useful
  the two highest tables adopt even longer lengths, and vice versa
  (implemented here as the documented two-configuration toggle).

TAGE (its successor) replaced the adder tree with tag matching; having
both in the examples library makes that lineage teachable.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.branch import Branch
from ..core.predictor import Predictor
from ..utils.bits import mask
from ..utils.hashing import xor_fold
from .tage import geometric_history_lengths

__all__ = ["OGehl"]


class OGehl(Predictor):
    """O-GEHL with ``num_tables`` counter tables over geometric histories.

    Parameters
    ----------
    num_tables:
        Number of counter tables (table 0 is indexed by address only).
    log_table_size:
        log2 of each table's entry count.
    counter_width:
        Bits per signed counter.
    min_history, max_history:
        Ends of the geometric history series for tables 1..N-1.
    alt_max_history:
        The longer alternative history adopted by the top tables while
        the dynamic-length controller favours long histories.
    """

    def __init__(self, num_tables: int = 8, log_table_size: int = 11,
                 counter_width: int = 4, min_history: int = 2,
                 max_history: int = 48, alt_max_history: int = 120):
        if num_tables < 2:
            raise ValueError("num_tables must be >= 2")
        if counter_width < 2:
            raise ValueError("counter_width must be >= 2")
        if alt_max_history < max_history:
            raise ValueError("alt_max_history must be >= max_history")
        self.num_tables = num_tables
        self.log_table_size = log_table_size
        self.counter_width = counter_width
        self.min_history = min_history
        self.max_history = max_history
        self.alt_max_history = alt_max_history

        base_lengths = (0,) + geometric_history_lengths(
            num_tables - 1, min_history, max_history)
        long_lengths = (0,) + geometric_history_lengths(
            num_tables - 1, min_history, alt_max_history)
        self._length_configs = (base_lengths, long_lengths)
        self._config = 0

        self._c_max = (1 << (counter_width - 1)) - 1
        self._c_min = -(1 << (counter_width - 1))
        self._tables = [[0] * (1 << log_table_size)
                        for _ in range(num_tables)]
        self._ghist = 0
        self._history_mask = mask(max(long_lengths))
        self.theta = num_tables  # O-GEHL's initial threshold heuristic
        self._tc = 0             # threshold controller
        self._lc = 0             # length controller
        self._cached_ip: int | None = None
        self._cached_indices: list[int] = []
        self._cached_sum = 0
        self._stat_config_switches = 0

    @property
    def history_lengths(self) -> Sequence[int]:
        """The active history-length configuration."""
        return self._length_configs[self._config]

    def _index(self, table: int, ip: int) -> int:
        length = self.history_lengths[table]
        if length == 0:
            return xor_fold(ip, self.log_table_size)
        segment = self._ghist & mask(length)
        return xor_fold(ip ^ (segment << 2) ^ (table << 1),
                        self.log_table_size)

    def _compute(self, ip: int) -> tuple[list[int], int]:
        indices = [self._index(t, ip) for t in range(self.num_tables)]
        # The classic GEHL sum adds num_tables/2 to de-bias the vote.
        total = self.num_tables // 2
        for table, index in zip(self._tables, indices):
            total += table[index]
        return indices, total

    def predict(self, ip: int) -> bool:
        """Sign of the de-biased counter sum."""
        indices, total = self._compute(ip)
        self._cached_ip = ip
        self._cached_indices = indices
        self._cached_sum = total
        return total >= 0

    def train(self, branch: Branch) -> None:
        """GEHL update rule with both adaptive controllers."""
        if self._cached_ip != branch.ip:
            self.predict(branch.ip)
        total = self._cached_sum
        taken = branch.taken
        mispredicted = (total >= 0) != taken
        probe = self._probe
        if probe is not None:
            # Adder trees have no single provider; attribute the vote to
            # the table contributing the largest-magnitude counter (the
            # first such table on ties).
            values = [self._tables[t][self._cached_indices[t]]
                      for t in range(self.num_tables)]
            dominant = max(range(self.num_tables),
                           key=lambda t: abs(values[t]))
            probe.record(branch.ip, f"T{dominant}", not mispredicted)
        if mispredicted or abs(total) <= self.theta:
            delta = 1 if taken else -1
            for table, index in zip(self._tables, self._cached_indices):
                value = table[index] + delta
                table[index] = min(self._c_max, max(self._c_min, value))
            # Adaptive threshold (Seznec's TC counter).
            self._tc += 1 if mispredicted else -1
            if self._tc >= 64:
                self.theta += 1
                self._tc = 0
            elif self._tc <= -64 and self.theta > 1:
                self.theta -= 1
                self._tc = 0
        if mispredicted:
            # Dynamic history lengths: mispredictions under the short
            # configuration push towards the long one and vice versa.
            self._lc += 1 if self._config == 0 else -1
            if self._lc >= 256:
                self._config = 1
                self._lc = 0
                self._stat_config_switches += 1
            elif self._lc <= -256:
                self._config = 0
                self._lc = 0
                self._stat_config_switches += 1
        self._cached_ip = None

    def track(self, branch: Branch) -> None:
        """Shift the outcome into the (long) global history register."""
        self._ghist = (((self._ghist << 1) | branch.taken)
                       & self._history_mask)
        self._cached_ip = None

    def metadata_stats(self) -> dict[str, Any]:
        """Self-description for the simulator output."""
        return {
            "name": "repro O-GEHL",
            "num_tables": self.num_tables,
            "log_table_size": self.log_table_size,
            "counter_width": self.counter_width,
            "history_lengths": list(self.history_lengths),
            "theta": self.theta,
        }

    def spec(self) -> dict[str, Any]:
        """Cache-key identity from *constructor* parameters only.

        ``metadata_stats`` includes the adaptive ``theta``, which mutates
        during simulation; the spec must stay fixed for a configuration,
        so it lists the constructor arguments instead.
        """
        return {
            "name": "repro O-GEHL",
            "num_tables": self.num_tables,
            "log_table_size": self.log_table_size,
            "counter_width": self.counter_width,
            "min_history": self.min_history,
            "max_history": self.max_history,
            "alt_max_history": self.alt_max_history,
        }

    def execution_stats(self) -> dict[str, Any]:
        """Controller activity."""
        return {
            "final_theta": self.theta,
            "active_length_config": self._config,
            "config_switches": self._stat_config_switches,
        }

    def probe_stats(self) -> dict[str, Any]:
        """Structural snapshot of every vote table."""
        from ..utils.tables import distribution_stats

        return {f"T{t}": distribution_stats(table, self._c_min, self._c_max)
                for t, table in enumerate(self._tables)}

    def storage_bits(self) -> int:
        """Hardware budget of the configuration, in bits."""
        return (self.num_tables * (1 << self.log_table_size)
                * self.counter_width + self.alt_max_history)
