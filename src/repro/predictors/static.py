"""Static (history-less) predictors.

These are the degenerate baselines every branch-prediction course starts
from; they also serve as cheap sub-components (a never-taken default, a
tie-breaker) and as the fastest possible predictor for simulator-overhead
measurements.
"""

from __future__ import annotations

from typing import Any

from ..core.branch import Branch
from ..core.predictor import Predictor

__all__ = ["AlwaysTaken", "AlwaysNotTaken", "Btfnt"]


class AlwaysTaken(Predictor):
    """Predict taken for every branch."""

    def predict(self, ip: int) -> bool:  # noqa: D102 - interface
        return True

    def train(self, branch: Branch) -> None:  # noqa: D102 - interface
        pass

    def track(self, branch: Branch) -> None:  # noqa: D102 - interface
        pass

    def metadata_stats(self) -> dict[str, Any]:  # noqa: D102 - interface
        return {"name": "repro AlwaysTaken"}


class AlwaysNotTaken(Predictor):
    """Predict not-taken for every branch."""

    def predict(self, ip: int) -> bool:  # noqa: D102 - interface
        return False

    def train(self, branch: Branch) -> None:  # noqa: D102 - interface
        pass

    def track(self, branch: Branch) -> None:  # noqa: D102 - interface
        pass

    def metadata_stats(self) -> dict[str, Any]:  # noqa: D102 - interface
        return {"name": "repro AlwaysNotTaken"}


class Btfnt(Predictor):
    """Backward-taken / forward-not-taken.

    The classic static heuristic: loop-closing (backward) branches are
    predicted taken, forward branches not-taken.  ``predict`` only
    receives the instruction address, so the branch direction is learned
    from the targets observed in ``track`` (first sighting defaults to
    not-taken, matching a hardware BTFNT whose BTB has no entry yet).
    """

    def __init__(self) -> None:
        self._is_backward: dict[int, bool] = {}

    def predict(self, ip: int) -> bool:  # noqa: D102 - interface
        return self._is_backward.get(ip, False)

    def train(self, branch: Branch) -> None:  # noqa: D102 - interface
        pass

    def track(self, branch: Branch) -> None:
        """Learn whether the branch at this address jumps backwards."""
        if branch.target:
            self._is_backward[branch.ip] = branch.target < branch.ip

    def metadata_stats(self) -> dict[str, Any]:  # noqa: D102 - interface
        return {"name": "repro BTFNT"}
