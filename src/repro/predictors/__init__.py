"""The examples library (paper Section V, Table II).

One of the largest collections of branch-predictor implementations,
written in a uniform style on top of :mod:`repro.utils`:

==============================  ==========================================
Predictor                       Module
==============================  ==========================================
Bimodal (Lee & Smith)           :mod:`repro.predictors.bimodal`
Two-Level, all 9 variants       :mod:`repro.predictors.twolevel`
GShare (McFarling)              :mod:`repro.predictors.gshare`
Generalized tournament          :mod:`repro.predictors.tournament`
2bc-gskew (Seznec & Michaud)    :mod:`repro.predictors.gskew`
Hashed perceptron               :mod:`repro.predictors.perceptron`
TAGE (Seznec & Michaud)         :mod:`repro.predictors.tage`
BATAGE (Michaud)                :mod:`repro.predictors.batage`
==============================  ==========================================

plus the static baselines, a loop predictor, branch filters, and the
extension set beyond the paper's table: YAGS, O-GEHL, and a statistical
corrector that assembles TAGE-SC(-L) by composition.  All examples
double as *components*: they can be sub-predictors of a bigger design
(Section VI-D).
"""

from .batage import Batage, dual_counter_confidence
from .bimodal import Bimodal
from .corrector import StatisticalCorrector, tage_sc, tage_sc_l
from .gehl import OGehl
from .filters import ConditionalOnlyFilter, NeverTakenFilter
from .gshare import GShare
from .local import LocalPredictor, alpha21264
from .gskew import TwoBcGskew
from .loop import LoopPredictor, WithLoopPredictor
from .perceptron import HashedPerceptron
from .static import AlwaysNotTaken, AlwaysTaken, Btfnt
from .tage import Tage, geometric_history_lengths
from .tournament import Tournament, mcfarling_tournament
from .yags import Yags
from .twolevel import (
    GAg,
    GAp,
    GAs,
    PAg,
    PAp,
    PAs,
    SAg,
    SAp,
    SAs,
    Scope,
    TwoLevel,
)

__all__ = [
    "AlwaysNotTaken", "AlwaysTaken", "Btfnt",
    "Batage", "dual_counter_confidence",
    "Bimodal",
    "ConditionalOnlyFilter", "NeverTakenFilter",
    "GShare",
    "OGehl",
    "StatisticalCorrector", "tage_sc", "tage_sc_l",
    "TwoBcGskew",
    "Yags",
    "LocalPredictor", "alpha21264",
    "LoopPredictor", "WithLoopPredictor",
    "HashedPerceptron",
    "Tage", "geometric_history_lengths",
    "Tournament", "mcfarling_tournament",
    "GAg", "GAp", "GAs", "PAg", "PAp", "PAs", "SAg", "SAp", "SAs",
    "Scope", "TwoLevel",
]

#: The Table II collection keyed by the names used in the paper's
#: evaluation tables, each mapped to a zero-argument factory producing
#: the default configuration.  The Table III benchmarks iterate this.
TABLE2_PREDICTORS = {
    "Bimodal": Bimodal,
    "Two-Level": GAs,
    "GShare": GShare,
    "Tournament": mcfarling_tournament,
    "2bc-gskew": TwoBcGskew,
    "Hashed Perc.": HashedPerceptron,
    "TAGE": Tage,
    "BATAGE": Batage,
}

__all__.append("TABLE2_PREDICTORS")
