"""The generalized tournament predictor (paper Listing 4; Evers et al.).

A tournament is a meta-predictor: a chooser component whose "outcome"
guesses which of two base predictors to believe.  The original McFarling
tournament paired a bimodal with a GShare; the generalization takes *any*
three predictors.

This class is the paper's flagship composability example: it exploits the
``train``/``track`` split by training the chooser **only** when the base
predictions differ (a partial-update policy) while still tracking every
branch through all three components — something that is impossible when a
single ``update`` function does both jobs.
"""

from __future__ import annotations

from typing import Any

from ..core.branch import Branch
from ..core.predictor import Predictor

__all__ = ["Tournament", "mcfarling_tournament"]


class Tournament(Predictor):
    """Choose between two predictors with a third one as the chooser.

    ``meta.predict(ip)`` returning ``True`` selects ``bp1``, ``False``
    selects ``bp0`` — the chooser's "taken" bit is reinterpreted as
    "predictor 1 is right" (Listing 4 line 36).

    Like the listing, the three sub-predictions for an address are cached
    between ``predict`` and ``train`` so a simulator (or an enclosing
    meta-predictor) calling both does not pay twice, and the cache is
    invalidated by ``track``.
    """

    def __init__(self, meta: Predictor, bp0: Predictor, bp1: Predictor):
        self.meta = meta
        self.bp0 = bp0
        self.bp1 = bp1
        self._predicted_ip: int | None = None
        self._tracked = True
        self._provider = False
        self._prediction = [False, False]

    def predict(self, ip: int) -> bool:
        """Predict with both bases; the chooser arbitrates."""
        if self._predicted_ip == ip and not self._tracked:
            return self._prediction[self._provider]
        self._predicted_ip = ip
        self._tracked = False
        self._provider = self.meta.predict(ip)
        self._prediction[0] = self.bp0.predict(ip)
        self._prediction[1] = self.bp1.predict(ip)
        return self._prediction[self._provider]

    def train(self, branch: Branch) -> None:
        """Train the bases always; the chooser only on disagreement.

        When the bases disagree, the chooser is trained with a synthetic
        branch whose outcome says "predictor 1 was correct" — the partial
        update policy of Listing 4.
        """
        self.predict(branch.ip)  # ensure the cache matches this branch
        probe = self._probe
        if probe is not None:
            provider = "predictor_1" if self._provider else "predictor_0"
            loser = "predictor_0" if self._provider else "predictor_1"
            disagreed = self._prediction[0] != self._prediction[1]
            probe.record(branch.ip, provider,
                         self._prediction[self._provider] == branch.taken,
                         overrode=loser if disagreed else None)
        self.bp0.train(branch)
        self.bp1.train(branch)
        if self._prediction[0] != self._prediction[1]:
            meta_branch = branch.with_outcome(
                self._prediction[1] == branch.taken
            )
            self.meta.train(meta_branch)

    def track(self, branch: Branch) -> None:
        """Track every component with the program branch."""
        self.meta.track(branch)
        self.bp0.track(branch)
        self.bp1.track(branch)
        self._tracked = True

    def metadata_stats(self) -> dict[str, Any]:
        """Nested self-description (Listing 4 line 48): components include
        their own descriptions, courtesy of the JSON output format."""
        return {
            "name": "repro Tournament",
            "metapredictor": self.meta.metadata_stats(),
            "predictor_0": self.bp0.metadata_stats(),
            "predictor_1": self.bp1.metadata_stats(),
        }

    def spec(self) -> dict[str, Any]:
        """Cache-key identity, built from the components' own specs."""
        return {
            "name": "repro Tournament",
            "metapredictor": self.meta.spec(),
            "predictor_0": self.bp0.spec(),
            "predictor_1": self.bp1.spec(),
        }

    def execution_stats(self) -> dict[str, Any]:
        """Merge component statistics under their role names."""
        stats: dict[str, Any] = {}
        for role, component in (("metapredictor", self.meta),
                                ("predictor_0", self.bp0),
                                ("predictor_1", self.bp1)):
            component_stats = component.execution_stats()
            if component_stats:
                stats[role] = component_stats
        return stats

    def on_warmup_end(self) -> None:
        """Propagate the warm-up boundary to every component."""
        self.meta.on_warmup_end()
        self.bp0.on_warmup_end()
        self.bp1.on_warmup_end()

    def attach_probe(self, probe: Any) -> None:
        """Attach the probe here and scoped views to every component."""
        self._probe = probe
        for role, component in (("metapredictor", self.meta),
                                ("predictor_0", self.bp0),
                                ("predictor_1", self.bp1)):
            component.attach_probe(
                None if probe is None else probe.scoped(role))

    def probe_stats(self) -> dict[str, Any]:
        """Merge component structural statistics under their role names."""
        stats: dict[str, Any] = {}
        for role, component in (("metapredictor", self.meta),
                                ("predictor_0", self.bp0),
                                ("predictor_1", self.bp1)):
            component_stats = component.probe_stats()
            if component_stats:
                stats[role] = component_stats
        return stats

    def vector_kernel(self) -> Any:
        """The chooser combinator over the components' kernels.

        The bases are trained unconditionally, so any kernels serve
        (tournaments nest); the chooser's disagreement-only partial
        update requires the masked-scan protocol, which only the
        saturating-table kernel implements — a chooser without one (or
        any component without a kernel) keeps the whole composition on
        the scalar engine.
        """
        from ..core.vectorized import SaturatingTableKernel, TournamentKernel

        meta_kernel = self.meta.vector_kernel()
        if not isinstance(meta_kernel, SaturatingTableKernel):
            return None
        bp0_kernel = self.bp0.vector_kernel()
        bp1_kernel = self.bp1.vector_kernel()
        if bp0_kernel is None or bp1_kernel is None:
            return None
        return TournamentKernel(meta_kernel, bp0_kernel, bp1_kernel)


def mcfarling_tournament(log_table_size: int = 14,
                         history_length: int = 12) -> Tournament:
    """The classic combination: bimodal vs GShare with a bimodal chooser.

    ``log_table_size`` sizes all three tables; ``history_length`` is the
    GShare history.
    """
    from .bimodal import Bimodal
    from .gshare import GShare

    return Tournament(
        meta=Bimodal(log_table_size=log_table_size),
        bp0=Bimodal(log_table_size=log_table_size),
        bp1=GShare(history_length=history_length,
                   log_table_size=log_table_size),
    )
