"""The TAGE predictor (Seznec & Michaud, 2006).

TAGE — TAgged GEometric history length — is the backbone of every
championship-winning direction predictor since CBP-2.  A bimodal base
predictor is backed by ``N`` *tagged* tables indexed with geometrically
increasing history lengths; the longest matching table provides the
prediction, a ``u``\\ seful counter drives replacement, and new entries
are allocated on mispredictions in a longer-history table.

The paper highlights that its MBPlib implementation takes ~150 lines
against the championship version's ~700 — the folded-history, tagged-
table and LFSR components live in the utilities library.  This module
follows the same decomposition: everything stateful below is a
:mod:`repro.utils` component.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.branch import Branch
from ..core.predictor import Predictor
from ..utils.bits import mask
from ..utils.folded import FoldedHistory, HistoryWindow
from ..utils.hashing import xor_fold
from ..utils.lfsr import Lfsr
from ..utils.tables import TaggedTable

__all__ = ["Tage", "geometric_history_lengths"]


def geometric_history_lengths(num_tables: int, min_length: int,
                              max_length: int) -> tuple[int, ...]:
    """The geometric series L(i) = min * (max/min)^(i/(N-1)), rounded.

    The defining trick of GEometric history length predictors: short
    histories get dense coverage, very long ones sparse coverage.
    """
    if num_tables < 1:
        raise ValueError("num_tables must be >= 1")
    if not 1 <= min_length <= max_length:
        raise ValueError("need 1 <= min_length <= max_length")
    if num_tables == 1:
        return (min_length,)
    ratio = (max_length / min_length) ** (1.0 / (num_tables - 1))
    lengths = []
    for i in range(num_tables):
        value = int(round(min_length * ratio ** i))
        if lengths and value <= lengths[-1]:
            value = lengths[-1] + 1  # keep the series strictly increasing
        lengths.append(value)
    return tuple(lengths)


class Tage(Predictor):
    """A parameterizable TAGE.

    Matching the paper's point that every example is tweakable: the
    number of tagged tables, per-table sizes, tag widths and the history
    series are all constructor parameters (a modern TAGE has "more than
    50 parameters"; these are the structural ones).

    Parameters
    ----------
    num_tables:
        Number of tagged tables backing the base bimodal.
    log_base_size:
        log2 of the base bimodal table.
    log_tagged_size:
        log2 of each tagged table (uniform, like the original TAGE).
    tag_widths:
        Per-table partial tag widths; defaults to a gently increasing
        series (longer histories earn wider tags).
    min_history, max_history:
        Ends of the geometric history series.
    counter_width:
        Bits of each tagged prediction counter.
    useful_width:
        Bits of each ``u`` counter.
    u_reset_period:
        Tagged-table trainings between graceful ``u`` resets (the
        alternating high/low bit clear of the original).
    """

    USE_ALT_MAX = 15  # 4-bit use_alt_on_na confidence counter

    def __init__(self, num_tables: int = 7, log_base_size: int = 13,
                 log_tagged_size: int = 10,
                 tag_widths: Sequence[int] | None = None,
                 min_history: int = 5, max_history: int = 130,
                 counter_width: int = 3, useful_width: int = 2,
                 u_reset_period: int = 1 << 18,
                 lfsr_seed: int = 0xC0FFEE):
        if num_tables < 1:
            raise ValueError("num_tables must be >= 1")
        if u_reset_period < 1:
            raise ValueError("u_reset_period must be >= 1")
        self.num_tables = num_tables
        self.log_base_size = log_base_size
        self.log_tagged_size = log_tagged_size
        self.min_history = min_history
        self.max_history = max_history
        self.counter_width = counter_width
        self.useful_width = useful_width
        self.u_reset_period = u_reset_period
        self.history_lengths = geometric_history_lengths(
            num_tables, min_history, max_history)
        if tag_widths is None:
            tag_widths = tuple(min(14, 7 + i) for i in range(num_tables))
        if len(tag_widths) != num_tables:
            raise ValueError("need one tag width per tagged table")
        self.tag_widths = tuple(tag_widths)

        self._base = [0] * (1 << log_base_size)
        self._base_mask = mask(log_base_size)
        self._tables = [
            TaggedTable(log_tagged_size, self.tag_widths[i],
                        counter_width, useful_width)
            for i in range(num_tables)
        ]
        window_length = max(self.history_lengths)
        self._window = HistoryWindow(window_length)
        self._folded_index = [
            FoldedHistory(length, log_tagged_size)
            for length in self.history_lengths
        ]
        self._folded_tag0 = [
            FoldedHistory(length, self.tag_widths[i])
            for i, length in enumerate(self.history_lengths)
        ]
        self._folded_tag1 = [
            FoldedHistory(length, max(1, self.tag_widths[i] - 1))
            for i, length in enumerate(self.history_lengths)
        ]
        self._path = 0
        self._rng = Lfsr(width=32, seed=lfsr_seed)
        self._use_alt_on_na = self.USE_ALT_MAX // 2
        self._train_count = 0
        self._u_reset_phase = 0
        # Per-prediction cache (predict-then-train protocol).
        self._cached_ip: int | None = None
        self._cache: dict[str, Any] = {}
        # Execution statistics.
        self._stat_provider_hits = [0] * (num_tables + 1)  # [0] = base
        self._stat_allocations = 0
        self._stat_allocation_failures = 0

    # ------------------------------------------------------------------
    # Index and tag computation.
    # ------------------------------------------------------------------

    def _base_index(self, ip: int) -> int:
        return ip & self._base_mask

    def _tagged_index(self, table: int, ip: int) -> int:
        w = self.log_tagged_size
        value = (xor_fold(ip, w) ^ xor_fold(ip >> w, w)
                 ^ self._folded_index[table].value
                 ^ xor_fold(self._path, w) ^ table)
        return value & mask(w)

    def _tag(self, table: int, ip: int) -> int:
        w = self.tag_widths[table]
        value = (xor_fold(ip, w) ^ self._folded_tag0[table].value
                 ^ (self._folded_tag1[table].value << 1))
        return value & mask(w)

    # ------------------------------------------------------------------
    # Prediction.
    # ------------------------------------------------------------------

    def _lookup(self, ip: int) -> dict[str, Any]:
        indices = [self._tagged_index(t, ip) for t in range(self.num_tables)]
        tags = [self._tag(t, ip) for t in range(self.num_tables)]
        hits = [
            t for t in range(self.num_tables)
            if self._tables[t].matches(indices[t], tags[t])
        ]
        base_pred = self._base[self._base_index(ip)] >= 0
        provider = hits[-1] if hits else None
        alt = hits[-2] if len(hits) >= 2 else None

        if provider is not None:
            counter = int(self._tables[provider].counters[indices[provider]])
            provider_pred = counter >= 0
            weak = counter in (0, -1)
        else:
            provider_pred = base_pred
            weak = False
        if alt is not None:
            alt_counter = int(self._tables[alt].counters[indices[alt]])
            alt_pred = alt_counter >= 0
        else:
            alt_pred = base_pred

        alt_used = (provider is not None and weak
                    and self._use_alt_on_na >= (self.USE_ALT_MAX + 1) // 2)
        final = alt_pred if alt_used else provider_pred
        return {
            "indices": indices,
            "tags": tags,
            "provider": provider,
            "alt": alt,
            "base_pred": base_pred,
            "provider_pred": provider_pred,
            "alt_pred": alt_pred,
            "weak": weak,
            "alt_used": alt_used,
            "final": final,
        }

    def predict(self, ip: int) -> bool:
        """Longest tag match provides; alt prediction covers weak entries."""
        state = self._lookup(ip)
        self._cached_ip = ip
        self._cache = state
        return state["final"]

    # ------------------------------------------------------------------
    # Training.
    # ------------------------------------------------------------------

    def _update_base(self, ip: int, taken: bool) -> None:
        i = self._base_index(ip)
        v = self._base[i]
        if taken:
            if v < 1:
                self._base[i] = v + 1
        elif v > -2:
            self._base[i] = v - 1

    def train(self, branch: Branch) -> None:
        """Provider/alt counter training, u management and allocation."""
        if self._cached_ip != branch.ip or not self._cache:
            self.predict(branch.ip)
        state = self._cache
        taken = branch.taken
        indices = state["indices"]
        provider = state["provider"]
        mispredicted = state["final"] != taken

        self._stat_provider_hits[0 if provider is None else provider + 1] += 1

        probe = self._probe
        if probe is not None:
            # Attribute to whoever supplied the *final* answer: the base,
            # the provider table, or — when use_alt_on_na distrusted a
            # weak provider — the alternative (which overrode it).
            if provider is None:
                source = "base"
            elif state["alt_used"]:
                source = ("base" if state["alt"] is None
                          else f"T{state['alt'] + 1}")
            else:
                source = f"T{provider + 1}"
            overrode = (f"T{provider + 1}"
                        if state["alt_used"]
                        and state["alt_pred"] != state["provider_pred"]
                        else None)
            probe.record(branch.ip, source, not mispredicted,
                         overrode=overrode)

        if provider is None:
            self._update_base(branch.ip, taken)
        else:
            table = self._tables[provider]
            index = indices[provider]
            # use_alt_on_na learns whether weak entries should be trusted.
            if state["weak"] and state["provider_pred"] != state["alt_pred"]:
                if state["alt_pred"] == taken:
                    self._use_alt_on_na = min(self.USE_ALT_MAX,
                                              self._use_alt_on_na + 1)
                else:
                    self._use_alt_on_na = max(0, self._use_alt_on_na - 1)
            table.update_counter(index, taken)
            # The alt (or base) trains too when the provider was weak and
            # newly allocated — keeps the fallback warm.
            if state["weak"]:
                if state["alt"] is not None:
                    self._tables[state["alt"]].update_counter(
                        indices[state["alt"]], taken)
                else:
                    self._update_base(branch.ip, taken)
            # u tracks whether the provider beats its alternative.
            if state["provider_pred"] != state["alt_pred"]:
                delta = 1 if state["provider_pred"] == taken else -1
                table.update_useful(index, delta)

        if mispredicted:
            self._allocate(branch.ip, taken, provider, indices)

        self._train_count += 1
        if self._train_count % self.u_reset_period == 0:
            self._graceful_u_reset()
        self._cached_ip = None

    def _allocate(self, ip: int, taken: bool, provider: int | None,
                  indices: list[int]) -> None:
        """Claim an entry in a longer-history table after a mispredict.

        Following the original policy: pick a random start among the
        longer tables (biased towards shorter histories), allocate at the
        first candidate whose ``u`` is zero, and on total failure age the
        ``u`` of every candidate instead.
        """
        start = 0 if provider is None else provider + 1
        if start >= self.num_tables:
            return
        # Bias: with probability 1/2 skip the first candidate table once,
        # with 1/4 twice — the LFSR-driven start of the original TAGE.
        offset = 0
        span = self.num_tables - start
        while offset < span - 1 and self._rng.next_bit():
            offset += 1
            if offset >= 2:  # original caps the random start at +2
                break
        allocated = False
        for t in range(start + offset, self.num_tables):
            index = indices[t]
            if int(self._tables[t].useful[index]) == 0:
                tag = self._tag(t, ip)
                self._tables[t].allocate(index, tag, taken)
                self._stat_allocations += 1
                allocated = True
                break
        if not allocated:
            self._stat_allocation_failures += 1
            for t in range(start, self.num_tables):
                self._tables[t].update_useful(indices[t], -1)

    def _graceful_u_reset(self) -> None:
        """Alternately clear the high and low bit of every u counter."""
        high_bit = 1 << (self.useful_width - 1)
        bit = high_bit if self._u_reset_phase == 0 else 1
        for table in self._tables:
            table.decay_useful(bit)
        self._u_reset_phase ^= 1

    # ------------------------------------------------------------------
    # Scenario tracking.
    # ------------------------------------------------------------------

    def track(self, branch: Branch) -> None:
        """Push the outcome through the shared window and folded registers."""
        new_bit = branch.taken
        for t in range(self.num_tables):
            evicted = self._window[self.history_lengths[t] - 1]
            self._folded_index[t].update(new_bit, evicted)
            self._folded_tag0[t].update(new_bit, evicted)
            self._folded_tag1[t].update(new_bit, evicted)
        self._window.push(new_bit)
        self._path = ((self._path << 1) ^ (branch.ip & 0xFFFF)) & 0xFFFF
        self._cached_ip = None

    # ------------------------------------------------------------------
    # Output hooks.
    # ------------------------------------------------------------------

    def metadata_stats(self) -> dict[str, Any]:
        """Self-description for the simulator output."""
        return {
            "name": "repro TAGE",
            "num_tables": self.num_tables,
            "log_base_size": self.log_base_size,
            "log_tagged_size": self.log_tagged_size,
            "tag_widths": list(self.tag_widths),
            "history_lengths": list(self.history_lengths),
            "counter_width": self.counter_width,
            "useful_width": self.useful_width,
            "u_reset_period": self.u_reset_period,
        }

    def execution_stats(self) -> dict[str, Any]:
        """Provider distribution and allocation behaviour."""
        return {
            "provider_hits": {
                "base" if t == 0 else f"T{t}": count
                for t, count in enumerate(self._stat_provider_hits)
            },
            "allocations": self._stat_allocations,
            "allocation_failures": self._stat_allocation_failures,
            "use_alt_on_na": self._use_alt_on_na,
        }

    def on_warmup_end(self) -> None:
        """Reset statistics so they cover the measured region only."""
        self._stat_provider_hits = [0] * (self.num_tables + 1)
        self._stat_allocations = 0
        self._stat_allocation_failures = 0

    def probe_stats(self) -> dict[str, Any]:
        """Structural snapshot: the base table plus every tagged table."""
        from ..utils.tables import distribution_stats

        stats: dict[str, Any] = {
            "base": distribution_stats(self._base, -2, 1),
        }
        for t, table in enumerate(self._tables):
            stats[f"T{t + 1}"] = table.structural_stats()
        return stats

    def storage_bits(self) -> int:
        """Hardware budget of the configuration, in bits."""
        base = (1 << self.log_base_size) * 2
        tagged = sum(
            (1 << self.log_tagged_size)
            * (self.tag_widths[t] + self.counter_width + self.useful_width)
            for t in range(self.num_tables)
        )
        return base + tagged + max(self.history_lengths)
