"""The bimodal predictor (Lee & Smith, 1983).

One table of saturating counters indexed by instruction-address bits.
Bimodal is the paper's speed-measurement workhorse: it is so simple that
the vast majority of a simulation's running time is spent in simulator
code, which is why Table III uses it to quantify the raw simulator
speedup.  It is also the usual base component of larger designs (TAGE's
base predictor, the tournament's first bank).
"""

from __future__ import annotations

from typing import Any

from ..core.branch import Branch
from ..core.predictor import Predictor
from ..utils.bits import mask

__all__ = ["Bimodal"]


class Bimodal(Predictor):
    """A table of ``2**log_table_size`` saturating ``counter_width``-bit
    counters indexed by instruction-address bits.

    Parameters
    ----------
    log_table_size:
        log2 of the number of counters.
    counter_width:
        Bits per counter (2 is the classic choice).  Counters are signed;
        non-negative predicts taken.
    instruction_shift:
        Low address bits dropped before indexing (0 for byte-exact traces;
        2 skips the typical instruction alignment bits).
    """

    def __init__(self, log_table_size: int = 14, counter_width: int = 2,
                 instruction_shift: int = 0):
        if log_table_size < 0:
            raise ValueError("log_table_size must be >= 0")
        if counter_width < 1:
            raise ValueError("counter_width must be >= 1")
        if instruction_shift < 0:
            raise ValueError("instruction_shift must be >= 0")
        self.log_table_size = log_table_size
        self.counter_width = counter_width
        self.instruction_shift = instruction_shift
        self._index_mask = mask(log_table_size)
        self._max = (1 << (counter_width - 1)) - 1
        self._min = -(1 << (counter_width - 1))
        # A plain list outruns numpy for scalar single-element access,
        # which is all the hot loop does.
        self._table = [0] * (1 << log_table_size)

    def _index(self, ip: int) -> int:
        return (ip >> self.instruction_shift) & self._index_mask

    def predict(self, ip: int) -> bool:
        """Non-negative counter means taken."""
        return self._table[self._index(ip)] >= 0

    def train(self, branch: Branch) -> None:
        """Saturating ±1 update of the selected counter."""
        i = self._index(branch.ip)
        v = self._table[i]
        probe = self._probe
        if probe is not None:
            # Single-component: the table provides every prediction
            # (same attribution the vectorized engine reports).
            probe.record(branch.ip, "table", (v >= 0) == branch.taken)
        if branch.taken:
            if v < self._max:
                self._table[i] = v + 1
        elif v > self._min:
            self._table[i] = v - 1

    def track(self, branch: Branch) -> None:
        """Bimodal keeps no scenario state."""

    def metadata_stats(self) -> dict[str, Any]:
        """Self-description for the simulator output."""
        return {
            "name": "repro Bimodal",
            "log_table_size": self.log_table_size,
            "counter_width": self.counter_width,
            "instruction_shift": self.instruction_shift,
        }

    def storage_bits(self) -> int:
        """Hardware budget of the configuration, in bits."""
        return (1 << self.log_table_size) * self.counter_width

    def probe_stats(self) -> dict[str, Any]:
        """Structural snapshot of the counter table."""
        from ..utils.tables import distribution_stats

        return {"table": distribution_stats(self._table, self._min,
                                            self._max)}

    def vector_kernel(self) -> Any:
        """Single saturating table indexed by address bits."""
        import numpy as np

        from ..core.vectorized import SaturatingTableKernel

        shift = np.uint64(self.instruction_shift)
        index_mask = np.uint64(self._index_mask)
        return SaturatingTableKernel(
            lambda ctx: (ctx.ips >> shift) & index_mask,
            self.counter_width, component="table",
            table_size=1 << self.log_table_size)
