"""The Section II analytic pipeline model.

The paper motivates branch prediction with a back-of-envelope CPI model:
a machine that fetches ``w`` instructions per cycle and resolves branches
in pipeline stage ``d`` loses ``d - 1`` cycles per misprediction, so

    CPI = 1/w + (MPKI / 1000) * (d - 1)

With ``w=1, d=5``: 5 MPKI gives CPI 1.02 and 4 MPKI gives 1.016 — a 0.4 %
speedup per MPKI saved.  With ``w=4, d=11``: 0.3 vs 0.29 CPI — 3.4 %.
The wider and deeper the machine, the more a predictor matters; this
module reproduces those numbers exactly
(``benchmarks/test_section2_cpi_model.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PipelineModel", "speedup_from_mpki_reduction"]


@dataclass(frozen=True, slots=True)
class PipelineModel:
    """An abstract in-order front end: fetch width and resolve stage.

    Attributes
    ----------
    fetch_width:
        Instructions fetched per cycle (the paper's 1- and 4-wide
        examples).
    resolve_stage:
        1-based pipeline stage in which branches are evaluated; a
        misprediction costs ``resolve_stage - 1`` penalty cycles.
    """

    fetch_width: int
    resolve_stage: int

    def __post_init__(self) -> None:
        if self.fetch_width < 1:
            raise ValueError("fetch_width must be >= 1")
        if self.resolve_stage < 1:
            raise ValueError("resolve_stage must be >= 1")

    @property
    def misprediction_penalty(self) -> int:
        """Penalty cycles per misprediction."""
        return self.resolve_stage - 1

    def cpi(self, mpki: float) -> float:
        """Cycles per instruction at a given misprediction rate."""
        if mpki < 0:
            raise ValueError("mpki must be non-negative")
        return 1.0 / self.fetch_width + (mpki / 1000.0) * self.misprediction_penalty

    def ipc(self, mpki: float) -> float:
        """Instructions per cycle at a given misprediction rate."""
        return 1.0 / self.cpi(mpki)

    def speedup(self, mpki_before: float, mpki_after: float) -> float:
        """Relative speedup from improving the predictor.

        Returned as a fraction: ``0.004`` means 0.4 % faster.
        """
        return self.cpi(mpki_before) / self.cpi(mpki_after) - 1.0


def speedup_from_mpki_reduction(fetch_width: int, resolve_stage: int,
                                mpki_before: float,
                                mpki_after: float) -> float:
    """Functional form of :meth:`PipelineModel.speedup`."""
    model = PipelineModel(fetch_width=fetch_width, resolve_stage=resolve_stage)
    return model.speedup(mpki_before, mpki_after)
