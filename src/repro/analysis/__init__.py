"""Analysis helpers: the Section II CPI model, parameter sweeps and
searches (Section VI-A/B), and paper-style report formatting."""

from .championship import Championship, LeaderboardEntry, Submission
from .cpi import PipelineModel, speedup_from_mpki_reduction
from .reporting import (
    SpeedupRow,
    format_duration,
    format_table,
    interval_series_table,
    manifest_summary_table,
    phase_breakdown_table,
    speedup_table,
)
from .search import SearchResult, SearchSpace, hill_climb, random_search
from .sweep import SweepPoint, SweepResult, sweep_grid, sweep_parameter

__all__ = [
    "Championship", "LeaderboardEntry", "Submission",
    "PipelineModel", "speedup_from_mpki_reduction",
    "SpeedupRow", "format_duration", "format_table", "speedup_table",
    "manifest_summary_table", "phase_breakdown_table",
    "interval_series_table",
    "SearchResult", "SearchSpace", "hill_climb", "random_search",
    "SweepPoint", "SweepResult", "sweep_grid", "sweep_parameter",
]
