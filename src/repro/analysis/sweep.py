"""Parameter sweeps (paper Section VI-A).

The paper's first use case: fix a table budget, sweep the GShare history
length, and watch the MPKI.  In C++ MBPlib this is a CMake for-loop over
template parameters (Listing 3); in Python the same idea is a plain loop
over constructor arguments — the library design (user code owns the run)
is what makes both one-liners.

Parallel sweeps run through one persistent
:class:`~repro.core.engine.ExecutionEngine`: pool startup is paid once
for the whole sweep (not once per grid point) and every trace is decoded
and shipped to the workers once, as a shared-memory segment, instead of
being re-pickled for every (configuration, trace) task.  Pass your own
``engine=`` to amortize across *several* sweeps and searches; with only
``workers=`` the sweep creates and closes a private engine.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence, Union

from pathlib import Path

from ..core.batch import CacheLike, run_suite
from ..core.predictor import Predictor
from ..core.simulator import SimulationConfig
from ..sbbt.trace import TraceData

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import ExecutionEngine

__all__ = ["SweepPoint", "SweepResult", "sweep_parameter", "sweep_grid",
           "engine_scope"]

TraceLike = Union[TraceData, str, Path]


@contextmanager
def engine_scope(engine: "ExecutionEngine | None",
                 workers: int) -> "Iterator[ExecutionEngine | None]":
    """Yield the engine a multi-point driver should dispatch through.

    A caller-provided ``engine`` is yielded as-is (the caller owns its
    lifecycle).  Otherwise, ``workers > 1`` opens a *private*
    :class:`~repro.core.engine.ExecutionEngine` that lives exactly as
    long as the ``with`` block — one pool and one trace shipment for the
    whole sweep/search instead of per point — and ``workers == 1``
    yields ``None`` (serial in-process execution).
    """
    if engine is not None or workers <= 1:
        yield engine
        return
    from ..core.engine import ExecutionEngine
    with ExecutionEngine(workers=workers) as own:
        yield own


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One configuration's aggregate result over the sweep's trace set."""

    parameters: dict[str, Any]
    mean_mpki: float
    aggregate_mpki: float
    total_mispredictions: int

    def __str__(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
        return f"{params}: mean MPKI {self.mean_mpki:.4f}"


@dataclass(slots=True)
class SweepResult:
    """All points of a sweep, with convenience selectors."""

    points: list[SweepPoint]

    def best(self) -> SweepPoint:
        """The point with the lowest mean MPKI."""
        if not self.points:
            raise ValueError("empty sweep")
        return min(self.points, key=lambda p: p.mean_mpki)

    def series(self, parameter: str) -> list[tuple[Any, float]]:
        """(parameter value, mean MPKI) pairs, for plotting or tables."""
        return [(p.parameters[parameter], p.mean_mpki) for p in self.points]

    def table(self) -> str:
        """A fixed-width text table of every point."""
        lines = []
        for point in self.points:
            params = " ".join(f"{k}={v}" for k, v in point.parameters.items())
            lines.append(f"{params:<40s} mean_mpki={point.mean_mpki:10.4f}")
        return "\n".join(lines)


def _evaluate_point(factory: Callable[..., Predictor],
                    parameters: dict[str, Any],
                    traces: Sequence[TraceLike],
                    config: SimulationConfig | None,
                    cache: CacheLike,
                    engine: "ExecutionEngine | None") -> SweepPoint:
    """One grid point.  ``functools.partial`` (not a lambda) keeps the
    configured factory picklable, so sweeps can fan out across processes."""
    batch = run_suite(functools.partial(factory, **parameters), traces,
                      config, cache=cache, engine=engine)
    return SweepPoint(
        parameters=parameters,
        mean_mpki=batch.mean_mpki(),
        aggregate_mpki=batch.aggregate_mpki(),
        total_mispredictions=batch.total_mispredictions,
    )


def sweep_parameter(factory: Callable[..., Predictor], parameter: str,
                    values: Iterable[Any], traces: Sequence[TraceLike],
                    config: SimulationConfig | None = None,
                    fixed: dict[str, Any] | None = None, *,
                    cache: CacheLike = None,
                    workers: int = 1,
                    engine: "ExecutionEngine | None" = None) -> SweepResult:
    """Sweep one constructor parameter of a predictor over a trace set.

    With ``cache=`` (a :class:`repro.cache.SimulationCache` or directory
    path), every (configuration, trace) result is remembered, so a
    refined or re-run sweep only simulates grid points it has never seen
    — overlapping values cost nothing.  ``workers > 1`` runs the whole
    sweep through one private :class:`~repro.core.engine.\
ExecutionEngine` (one worker pool and one shared-memory trace shipment
    for every point); pass ``engine=`` instead to reuse a pool you
    already pay for across several sweeps and searches.

    >>> # sweep = sweep_parameter(GShare, "history_length", range(6, 31),
    >>> #                         traces)   # the paper's Listing 3 sweep
    """
    fixed = dict(fixed or {})
    with engine_scope(engine, workers) as scoped:
        points = [
            _evaluate_point(factory, {**fixed, parameter: value}, traces,
                            config, cache, scoped)
            for value in values
        ]
    return SweepResult(points=points)


def sweep_grid(factory: Callable[..., Predictor],
               grid: dict[str, Sequence[Any]],
               traces: Sequence[TraceLike],
               config: SimulationConfig | None = None, *,
               cache: CacheLike = None,
               workers: int = 1,
               engine: "ExecutionEngine | None" = None) -> SweepResult:
    """Full-factorial sweep over a small parameter grid.

    The number of configurations is the product of the grid's axis sizes
    — exactly the exponential blow-up Section VI-B warns about, which is
    why :mod:`repro.analysis.search` exists for large spaces.  ``cache``,
    ``workers`` and ``engine`` behave as in :func:`sweep_parameter`; a
    grid refined with extra axis values re-simulates only the new
    combinations.
    """
    import itertools

    names = list(grid)
    with engine_scope(engine, workers) as scoped:
        points = [
            _evaluate_point(factory, dict(zip(names, combo)), traces,
                            config, cache, scoped)
            for combo in itertools.product(*(grid[name] for name in names))
        ]
    return SweepResult(points=points)
