"""Parameter sweeps (paper Section VI-A).

The paper's first use case: fix a table budget, sweep the GShare history
length, and watch the MPKI.  In C++ MBPlib this is a CMake for-loop over
template parameters (Listing 3); in Python the same idea is a plain loop
over constructor arguments — the library design (user code owns the run)
is what makes both one-liners.

Sweeps lower into the :class:`~repro.core.plan.WorkPlan` IR: the whole
grid — every (configuration, trace) pair, grouped by a per-point tag —
becomes **one** plan handed to :func:`~repro.core.plan.execute_plan`.
Serially that runs the exact same simulations in the exact same order as
the historical per-point loop; with an engine the entire sweep streams
through one persistent worker pool with the traces resident in shared
memory and several units packed per worker round-trip (adaptive chunked
dispatch), so pool startup, trace shipping *and* per-task dispatch
overhead are paid once for the whole sweep, not once per point.  Pass
your own ``engine=`` to amortize across *several* sweeps and searches;
with only ``workers=`` the sweep creates and closes a private engine.
"""

from __future__ import annotations

import functools
import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence, Union

from pathlib import Path

from ..core.batch import BatchResult, CacheLike, SuiteError, TraceFailure
from ..core.output import SimulationResult
from ..core.plan import WorkPlan, execute_plan
from ..core.predictor import Predictor
from ..core.simulator import SimulationConfig
from ..sbbt.trace import TraceData

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import ExecutionEngine

__all__ = ["SweepPoint", "SweepResult", "sweep_parameter", "sweep_grid",
           "engine_scope", "evaluate_param_sets"]

TraceLike = Union[TraceData, str, Path]


@contextmanager
def engine_scope(engine: "ExecutionEngine | None",
                 workers: int) -> "Iterator[ExecutionEngine | None]":
    """Yield the engine a multi-point driver should dispatch through.

    A caller-provided ``engine`` is yielded as-is (the caller owns its
    lifecycle).  Otherwise, ``workers > 1`` opens a *private*
    :class:`~repro.core.engine.ExecutionEngine` that lives exactly as
    long as the ``with`` block — one pool and one trace shipment for the
    whole sweep/search instead of per point — and ``workers == 1``
    yields ``None`` (serial in-process execution).
    """
    if engine is not None or workers <= 1:
        yield engine
        return
    from ..core.engine import ExecutionEngine
    with ExecutionEngine(workers=workers) as own:
        yield own


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One configuration's aggregate result over the sweep's trace set.

    ``num_failures`` and ``cache_hits`` record how the point was
    obtained: a point whose every trace failed carries
    ``mean_mpki=nan`` (only reachable with ``on_error="collect"``).
    """

    parameters: dict[str, Any]
    mean_mpki: float
    aggregate_mpki: float
    total_mispredictions: int
    num_failures: int = 0
    cache_hits: int = 0

    def __str__(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
        return f"{params}: mean MPKI {self.mean_mpki:.4f}"


@dataclass(slots=True)
class SweepResult:
    """All points of a sweep, with convenience selectors."""

    points: list[SweepPoint]

    def best(self) -> SweepPoint:
        """The point with the lowest mean MPKI (all-failed points,
        whose mean is ``nan``, never win)."""
        if not self.points:
            raise ValueError("empty sweep")
        scored = [p for p in self.points if not math.isnan(p.mean_mpki)]
        if not scored:
            raise ValueError("every sweep point failed")
        return min(scored, key=lambda p: p.mean_mpki)

    def series(self, parameter: str) -> list[tuple[Any, float]]:
        """(parameter value, mean MPKI) pairs, for plotting or tables."""
        return [(p.parameters[parameter], p.mean_mpki) for p in self.points]

    def table(self) -> str:
        """A fixed-width text table of every point."""
        lines = []
        for point in self.points:
            params = " ".join(f"{k}={v}" for k, v in point.parameters.items())
            lines.append(f"{params:<40s} mean_mpki={point.mean_mpki:10.4f}")
        return "\n".join(lines)


def evaluate_param_sets(factory: Callable[..., Predictor],
                        param_sets: Sequence[dict[str, Any]],
                        traces: Sequence[TraceLike],
                        config: SimulationConfig | None = None, *,
                        cache: CacheLike = None,
                        engine: "ExecutionEngine | None" = None,
                        chunk: int | str = "auto",
                        batch: str | bool = "auto",
                        sim_engine: str = "scalar",
                        on_error: str = "raise",
                        instrumentation: Any = None,
                        tracer: Any = None,
                        trace_parent: Any = None,
                        ) -> list[BatchResult]:
    """Evaluate many parameter sets of ``factory`` over one trace set.

    The shared lowering step of sweeps and searches: every (parameter
    set, trace) pair becomes a :class:`~repro.core.plan.WorkUnit` tagged
    with its parameter-set index, the whole cross product runs as one
    plan through :func:`~repro.core.plan.execute_plan`, and the outcomes
    are regrouped into one :class:`~repro.core.batch.BatchResult` per
    parameter set (trace order preserved).

    ``sim_engine`` selects the per-unit simulation engine; with
    ``"vectorized"`` or ``"auto"`` and ``batch="auto"`` (the default),
    all cache-missed points sharing a trace are evaluated in one
    stacked numpy pass — the whole sweep becomes a handful of batched
    group evaluations instead of one pass per point, with bit-identical
    results (``batch="off"`` opts out).

    ``functools.partial`` (not a lambda) keeps each configured factory
    picklable, so plans can fan out across processes.  Failure semantics
    with ``on_error="raise"`` (the default) match
    ``run_suite(on_error="raise")`` applied point by point: if any
    point has failures, a :class:`~repro.core.batch.SuiteError` is
    raised for the earliest such point, carrying its partial results.
    ``on_error="collect"`` instead records each point's failures on its
    :class:`~repro.core.batch.BatchResult` and always returns the full
    list.
    """
    if on_error not in ("raise", "collect"):
        raise ValueError(
            f"on_error must be 'raise' or 'collect', got {on_error!r}")
    plan = WorkPlan.for_points(
        [(tag, functools.partial(factory, **parameters))
         for tag, parameters in enumerate(param_sets)],
        traces, config, sim_engine=sim_engine)
    outcomes = execute_plan(plan, engine=engine, cache=cache, chunk=chunk,
                            batch=batch, instrumentation=instrumentation,
                            tracer=tracer, trace_parent=trace_parent)
    grouped = plan.group_outcomes(outcomes)
    batches: list[BatchResult] = []
    for tag in range(len(param_sets)):
        point_outcomes = grouped.get(tag, [])
        batch_result = BatchResult(
            results=[o for o in point_outcomes
                     if isinstance(o, SimulationResult)],
            failures=[o for o in point_outcomes
                      if isinstance(o, TraceFailure)],
        )
        if batch_result.failures and on_error == "raise":
            raise SuiteError(batch_result.failures, batch_result)
        batches.append(batch_result)
    return batches


def _evaluate_points(factory: Callable[..., Predictor],
                     param_sets: Sequence[dict[str, Any]],
                     traces: Sequence[TraceLike],
                     config: SimulationConfig | None,
                     cache: CacheLike,
                     engine: "ExecutionEngine | None",
                     chunk: int | str,
                     batch: str | bool = "auto",
                     sim_engine: str = "scalar",
                     on_error: str = "raise",
                     instrumentation: Any = None,
                     tracer: Any = None,
                     trace_parent: Any = None) -> list[SweepPoint]:
    """Lower a whole sweep into one plan; one :class:`SweepPoint` per
    parameter set."""
    batches = evaluate_param_sets(factory, param_sets, traces, config,
                                  cache=cache, engine=engine, chunk=chunk,
                                  batch=batch, sim_engine=sim_engine,
                                  on_error=on_error,
                                  instrumentation=instrumentation,
                                  tracer=tracer, trace_parent=trace_parent)
    return [
        SweepPoint(
            parameters=parameters,
            mean_mpki=(point.mean_mpki() if point.results
                       else float("nan")),
            aggregate_mpki=point.aggregate_mpki(),
            total_mispredictions=point.total_mispredictions,
            num_failures=len(point.failures),
            cache_hits=point.cache_hits,
        )
        for parameters, point in zip(param_sets, batches)
    ]


def sweep_parameter(factory: Callable[..., Predictor], parameter: str,
                    values: Iterable[Any], traces: Sequence[TraceLike],
                    config: SimulationConfig | None = None,
                    fixed: dict[str, Any] | None = None, *,
                    cache: CacheLike = None,
                    workers: int = 1,
                    engine: "ExecutionEngine | None" = None,
                    chunk: int | str = "auto",
                    batch: str | bool = "auto",
                    sim_engine: str = "scalar",
                    on_error: str = "raise",
                    instrumentation: Any = None,
                    tracer: Any = None,
                    trace_parent: Any = None) -> SweepResult:
    """Sweep one constructor parameter of a predictor over a trace set.

    With ``cache=`` (a :class:`repro.cache.SimulationCache` or directory
    path), every (configuration, trace) result is remembered, so a
    refined or re-run sweep only simulates grid points it has never seen
    — overlapping values cost nothing.  ``workers > 1`` runs the whole
    sweep through one private :class:`~repro.core.engine.\
ExecutionEngine` (one worker pool, one shared-memory trace shipment and
    adaptive chunked dispatch for every point); pass ``engine=`` instead
    to reuse a pool you already pay for across several sweeps and
    searches.  ``chunk`` (``"auto"`` or a fixed size) sets the engine's
    dispatch granularity.

    ``sim_engine`` (``"scalar"``, ``"vectorized"`` or ``"auto"``)
    selects the per-point simulation engine; combined with
    ``batch="auto"`` (the default), vectorized-capable points sharing a
    trace are evaluated in one stacked numpy pass — the classic
    history-length sweep becomes one batched group per trace.
    ``on_error="collect"`` records per-point failures on the
    :class:`SweepPoint` (``num_failures``; an all-failed point reports
    ``mean_mpki=nan``) instead of raising
    :class:`~repro.core.batch.SuiteError`.

    >>> # sweep = sweep_parameter(GShare, "history_length", range(6, 31),
    >>> #                         traces)   # the paper's Listing 3 sweep
    """
    fixed = dict(fixed or {})
    param_sets = [{**fixed, parameter: value} for value in values]
    with engine_scope(engine, workers) as scoped:
        points = _evaluate_points(factory, param_sets, traces, config,
                                  cache, scoped, chunk,
                                  batch=batch, sim_engine=sim_engine,
                                  on_error=on_error,
                                  instrumentation=instrumentation,
                                  tracer=tracer, trace_parent=trace_parent)
    return SweepResult(points=points)


def sweep_grid(factory: Callable[..., Predictor],
               grid: dict[str, Sequence[Any]],
               traces: Sequence[TraceLike],
               config: SimulationConfig | None = None, *,
               cache: CacheLike = None,
               workers: int = 1,
               engine: "ExecutionEngine | None" = None,
               chunk: int | str = "auto",
               batch: str | bool = "auto",
               sim_engine: str = "scalar",
               on_error: str = "raise",
               instrumentation: Any = None,
               tracer: Any = None,
               trace_parent: Any = None) -> SweepResult:
    """Full-factorial sweep over a small parameter grid.

    The number of configurations is the product of the grid's axis sizes
    — exactly the exponential blow-up Section VI-B warns about, which is
    why :mod:`repro.analysis.search` exists for large spaces.  ``cache``,
    ``workers``, ``engine``, ``chunk``, ``batch``, ``sim_engine`` and
    ``on_error`` behave as in :func:`sweep_parameter`; a grid refined
    with extra axis values re-simulates only the new combinations.
    """
    import itertools

    names = list(grid)
    param_sets = [
        dict(zip(names, combo))
        for combo in itertools.product(*(grid[name] for name in names))
    ]
    with engine_scope(engine, workers) as scoped:
        points = _evaluate_points(factory, param_sets, traces, config,
                                  cache, scoped, chunk,
                                  batch=batch, sim_engine=sim_engine,
                                  on_error=on_error,
                                  instrumentation=instrumentation,
                                  tracer=tracer, trace_parent=trace_parent)
    return SweepResult(points=points)
