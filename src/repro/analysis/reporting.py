"""Paper-style table rendering for the benchmark harness.

Every Table I/III/IV benchmark prints its measured rows next to the
paper's published values; this module holds the shared formatting so the
benches stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["format_duration", "format_table", "SpeedupRow", "speedup_table"]


def format_duration(seconds: float) -> str:
    """Human units matching the paper's tables (ms / s / min / h)."""
    if seconds < 0:
        raise ValueError("durations are non-negative")
    if seconds < 1.0:
        return f"{seconds * 1000:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    if seconds < 7200.0:
        return f"{seconds / 60:.2f} min"
    return f"{seconds / 3600:.2f} h"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str | None = None) -> str:
    """Fixed-width text table with a rule under the header."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match headers")
    widths = [
        max(len(str(headers[c])), *(len(str(row[c])) for row in rows))
        if rows else len(str(headers[c]))
        for c in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class SpeedupRow:
    """One (predictor, statistic) row of a Table III-style comparison."""

    label: str
    statistic: str          # "Slowest" | "Average" | "Fastest"
    baseline_seconds: float
    library_seconds: float

    @property
    def speedup(self) -> float:
        """Baseline time over library time."""
        if self.library_seconds == 0:
            return float("inf")
        return self.baseline_seconds / self.library_seconds


def speedup_table(rows: Sequence[SpeedupRow], baseline_name: str,
                  library_name: str, title: str) -> str:
    """Render Table III's layout: predictor x {slowest,average,fastest}."""
    body = [
        [
            row.label,
            row.statistic,
            format_duration(row.baseline_seconds),
            format_duration(row.library_seconds),
            f"{row.speedup:.2f} x",
        ]
        for row in rows
    ]
    return format_table(
        headers=["Predictor", "Traces", baseline_name, library_name,
                 "Speedup"],
        rows=body,
        title=title,
    )
