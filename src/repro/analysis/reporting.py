"""Paper-style table rendering for the benchmark harness.

Every Table I/III/IV benchmark prints its measured rows next to the
paper's published values; this module holds the shared formatting so the
benches stay declarative.

The ``mbp report`` subcommand reuses the same formatting to render
:mod:`repro.telemetry` artifacts — run manifests, phase-timing
breakdowns and interval timeseries — so observability output reads like
the paper's tables.  Those renderers take the *JSON* (plain-dict) form
of the artifacts, because ``mbp report`` works on files written by
earlier runs, possibly by other machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

__all__ = [
    "format_duration", "format_table", "SpeedupRow", "speedup_table",
    "manifest_summary_table", "phase_breakdown_table",
    "interval_series_table",
]


def format_duration(seconds: float) -> str:
    """Human units matching the paper's tables (ms / s / min / h)."""
    if seconds < 0:
        raise ValueError("durations are non-negative")
    if seconds < 1.0:
        return f"{seconds * 1000:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    if seconds < 7200.0:
        return f"{seconds / 60:.2f} min"
    return f"{seconds / 3600:.2f} h"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str | None = None) -> str:
    """Fixed-width text table with a rule under the header."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match headers")
    widths = [
        max(len(str(headers[c])), *(len(str(row[c])) for row in rows))
        if rows else len(str(headers[c]))
        for c in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class SpeedupRow:
    """One (predictor, statistic) row of a Table III-style comparison."""

    label: str
    statistic: str          # "Slowest" | "Average" | "Fastest"
    baseline_seconds: float
    library_seconds: float

    @property
    def speedup(self) -> float:
        """Baseline time over library time."""
        if self.library_seconds == 0:
            return float("inf")
        return self.baseline_seconds / self.library_seconds


def manifest_summary_table(manifests: Sequence[Mapping[str, Any]],
                           title: str | None = "Run manifests") -> str:
    """One row per run manifest (JSON form): the provenance at a glance.

    Accepts the ``to_json()`` form of
    :class:`repro.telemetry.RunManifest`; suite manifests should pass
    their ``runs`` list.
    """
    rows = []
    for manifest in manifests:
        metrics = manifest.get("metrics", {})
        timing = manifest.get("timing", {})
        cache = manifest.get("cache", {})
        trace = manifest.get("trace", {})
        digest = trace.get("digest")
        cache_note = ("-" if not cache.get("used")
                      else ("hit" if cache.get("hit") else "miss"))
        rows.append([
            str(trace.get("name", "?")),
            str(digest[:12]) if digest else "-",
            str(manifest.get("predictor", {}).get("name", "?")),
            f"{metrics.get('mpki', float('nan')):.4f}",
            f"{metrics.get('accuracy', float('nan')):.4%}",
            str(metrics.get("mispredictions", "?")),
            format_duration(float(timing.get("simulation_time", 0.0))),
            cache_note,
        ])
    return format_table(
        headers=["Trace", "Digest", "Predictor", "MPKI", "Accuracy",
                 "Mispred.", "Sim. time", "Cache"],
        rows=rows,
        title=title,
    )


def phase_breakdown_table(phases: Mapping[str, float],
                          title: str | None = "Phase timings") -> str:
    """Where the wall-clock went: one row per phase, with shares.

    ``phases`` maps phase name to accumulated seconds (the
    :attr:`repro.telemetry.PhaseTimers.phases` dict or its JSON copy);
    rows are ordered by descending time so the dominant phase leads.
    """
    total = sum(phases.values())
    rows = []
    for name, seconds in sorted(phases.items(),
                                key=lambda item: (-item[1], item[0])):
        share = 100.0 * seconds / total if total > 0 else 0.0
        rows.append([name, format_duration(seconds), f"{share:.1f} %"])
    rows.append(["total", format_duration(total), "100.0 %" if total > 0
                 else "0.0 %"])
    return format_table(headers=["Phase", "Time", "Share"], rows=rows,
                        title=title)


def interval_series_table(series: Mapping[str, Any],
                          title: str | None = "Interval telemetry",
                          limit: int | None = None) -> str:
    """Render an interval timeseries (JSON form) as a paper-style table.

    ``series`` is the ``to_json()`` form of
    :class:`repro.telemetry.IntervalSeries`.  ``limit`` keeps only the
    first N windows (a trailing row notes the elision).
    """
    records = list(series.get("records", []))
    elided = 0
    if limit is not None and limit >= 0 and len(records) > limit:
        elided = len(records) - limit
        records = records[:limit]
    rows = [
        [
            str(r["index"]),
            str(r["instructions"]),
            str(r["window_conditional_branches"]),
            str(r["window_mispredictions"]),
            f"{r['window_mpki']:.4f}",
            f"{r['window_accuracy']:.4%}",
            f"{r['cumulative_mpki']:.4f}",
        ]
        for r in records
    ]
    if elided:
        rows.append([f"... {elided} more", "", "", "", "", "", ""])
    header = title
    if header is not None:
        header = (f"{header} (interval={series.get('interval')}, "
                  f"warmup={series.get('warmup_instructions')})")
    return format_table(
        headers=["Window", "Instr.", "Cond.", "Mispred.", "MPKI",
                 "Accuracy", "Cum. MPKI"],
        rows=rows,
        title=header,
    )


def speedup_table(rows: Sequence[SpeedupRow], baseline_name: str,
                  library_name: str, title: str) -> str:
    """Render Table III's layout: predictor x {slowest,average,fastest}."""
    body = [
        [
            row.label,
            row.statistic,
            format_duration(row.baseline_seconds),
            format_duration(row.library_seconds),
            f"{row.speedup:.2f} x",
        ]
        for row in rows
    ]
    return format_table(
        headers=["Predictor", "Traces", baseline_name, library_name,
                 "Speedup"],
        rows=body,
        title=title,
    )
