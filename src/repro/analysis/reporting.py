"""Paper-style table rendering for the benchmark harness.

Every Table I/III/IV benchmark prints its measured rows next to the
paper's published values; this module holds the shared formatting so the
benches stay declarative.

The ``mbp report`` subcommand reuses the same formatting to render
:mod:`repro.telemetry` artifacts — run manifests, phase-timing
breakdowns, interval timeseries and :mod:`repro.probe` reports — so
observability output reads like the paper's tables.  Those renderers
take the *JSON* (plain-dict) form of the artifacts, because ``mbp
report`` works on files written by earlier runs, possibly by other
machines.

Each renderer is split into a ``*_rows`` function producing
``(headers, rows)`` and a ``*_table`` wrapper formatting them with
:func:`format_table`; :func:`format_csv` renders the same rows as CSV,
which is what ``mbp report --format csv`` emits.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

__all__ = [
    "format_duration", "format_table", "format_csv",
    "SpeedupRow", "speedup_table",
    "manifest_summary_rows", "manifest_summary_table",
    "phase_breakdown_rows", "phase_breakdown_table",
    "interval_series_rows", "interval_series_table",
    "attribution_rows", "attribution_table",
    "top_offenders_rows", "top_offenders_table",
    "structure_rows", "structure_table",
    "telemetry_csv",
]


def format_duration(seconds: float) -> str:
    """Human units matching the paper's tables (ms / s / min / h)."""
    if seconds < 0:
        raise ValueError("durations are non-negative")
    if seconds < 1.0:
        return f"{seconds * 1000:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    if seconds < 7200.0:
        return f"{seconds / 60:.2f} min"
    return f"{seconds / 3600:.2f} h"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str | None = None) -> str:
    """Fixed-width text table with a rule under the header."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match headers")
    widths = [
        max(len(str(headers[c])), *(len(str(row[c])) for row in rows))
        if rows else len(str(headers[c]))
        for c in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_csv(headers: Sequence[str],
               rows: Sequence[Sequence[Any]]) -> str:
    """The same rows a text table renders, as RFC-4180 CSV.

    Always ``\\n``-terminated lines (platform-independent goldens) and
    ends with a trailing newline.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow([str(v) for v in row])
    return buffer.getvalue()


@dataclass(frozen=True, slots=True)
class SpeedupRow:
    """One (predictor, statistic) row of a Table III-style comparison."""

    label: str
    statistic: str          # "Slowest" | "Average" | "Fastest"
    baseline_seconds: float
    library_seconds: float

    @property
    def speedup(self) -> float:
        """Baseline time over library time."""
        if self.library_seconds == 0:
            return float("inf")
        return self.baseline_seconds / self.library_seconds


def manifest_summary_rows(manifests: Sequence[Mapping[str, Any]]
                          ) -> tuple[list[str], list[list[str]]]:
    """``(headers, rows)`` of the run-manifest summary (JSON form)."""
    rows = []
    for manifest in manifests:
        metrics = manifest.get("metrics", {})
        timing = manifest.get("timing", {})
        cache = manifest.get("cache", {})
        trace = manifest.get("trace", {})
        digest = trace.get("digest")
        cache_note = ("-" if not cache.get("used")
                      else ("hit" if cache.get("hit") else "miss"))
        rows.append([
            str(trace.get("name", "?")),
            str(digest[:12]) if digest else "-",
            str(manifest.get("predictor", {}).get("name", "?")),
            f"{metrics.get('mpki', float('nan')):.4f}",
            f"{metrics.get('accuracy', float('nan')):.4%}",
            str(metrics.get("mispredictions", "?")),
            format_duration(float(timing.get("simulation_time", 0.0))),
            cache_note,
        ])
    headers = ["Trace", "Digest", "Predictor", "MPKI", "Accuracy",
               "Mispred.", "Sim. time", "Cache"]
    return headers, rows


def manifest_summary_table(manifests: Sequence[Mapping[str, Any]],
                           title: str | None = "Run manifests") -> str:
    """One row per run manifest (JSON form): the provenance at a glance.

    Accepts the ``to_json()`` form of
    :class:`repro.telemetry.RunManifest`; suite manifests should pass
    their ``runs`` list.
    """
    headers, rows = manifest_summary_rows(manifests)
    return format_table(headers=headers, rows=rows, title=title)


def phase_breakdown_rows(phases: Mapping[str, float]
                         ) -> tuple[list[str], list[list[str]]]:
    """``(headers, rows)`` of the phase breakdown, total row included."""
    total = sum(phases.values())
    rows = []
    for name, seconds in sorted(phases.items(),
                                key=lambda item: (-item[1], item[0])):
        share = 100.0 * seconds / total if total > 0 else 0.0
        rows.append([name, format_duration(seconds), f"{share:.1f} %"])
    rows.append(["total", format_duration(total), "100.0 %" if total > 0
                 else "0.0 %"])
    return ["Phase", "Time", "Share"], rows


def phase_breakdown_table(phases: Mapping[str, float],
                          title: str | None = "Phase timings") -> str:
    """Where the wall-clock went: one row per phase, with shares.

    ``phases`` maps phase name to accumulated seconds (the
    :attr:`repro.telemetry.PhaseTimers.phases` dict or its JSON copy);
    rows are ordered by descending time so the dominant phase leads.
    """
    headers, rows = phase_breakdown_rows(phases)
    return format_table(headers=headers, rows=rows, title=title)


def interval_series_rows(series: Mapping[str, Any],
                         limit: int | None = None
                         ) -> tuple[list[str], list[list[str]], int]:
    """``(headers, rows, elided)`` of an interval timeseries (JSON form).

    ``elided`` counts windows dropped by ``limit``; the rows contain
    data only (the text table adds its own elision marker row).
    """
    records = list(series.get("records", []))
    elided = 0
    if limit is not None and limit >= 0 and len(records) > limit:
        elided = len(records) - limit
        records = records[:limit]
    rows = [
        [
            str(r["index"]),
            str(r["instructions"]),
            str(r["window_conditional_branches"]),
            str(r["window_mispredictions"]),
            f"{r['window_mpki']:.4f}",
            f"{r['window_accuracy']:.4%}",
            f"{r['cumulative_mpki']:.4f}",
        ]
        for r in records
    ]
    headers = ["Window", "Instr.", "Cond.", "Mispred.", "MPKI",
               "Accuracy", "Cum. MPKI"]
    return headers, rows, elided


def interval_series_table(series: Mapping[str, Any],
                          title: str | None = "Interval telemetry",
                          limit: int | None = None) -> str:
    """Render an interval timeseries (JSON form) as a paper-style table.

    ``series`` is the ``to_json()`` form of
    :class:`repro.telemetry.IntervalSeries`.  ``limit`` keeps only the
    first N windows (a trailing row notes the elision).
    """
    headers, rows, elided = interval_series_rows(series, limit)
    if elided:
        rows.append([f"... {elided} more", "", "", "", "", "", ""])
    header = title
    if header is not None:
        header = (f"{header} (interval={series.get('interval')}, "
                  f"warmup={series.get('warmup_instructions')})")
    return format_table(headers=headers, rows=rows, title=header)


def attribution_rows(report: Mapping[str, Any]
                     ) -> tuple[list[str], list[list[str]]]:
    """``(headers, rows)`` of a probe report's attribution matrices.

    One row per (scope, component); the root scope renders as
    ``(top)``.  ``Hit rate`` is correct-when-provided, the per-component
    accuracy the probe was built to expose.
    """
    rows = []
    for scope, data in sorted(report.get("attribution", {}).items()):
        scope_label = scope if scope else "(top)"
        for name, cell in sorted(data.get("components", {}).items()):
            provided = cell["provided"]
            rate = (f"{cell['correct'] / provided:.4%}" if provided
                    else "-")
            rows.append([
                scope_label,
                name,
                str(provided),
                str(cell["correct"]),
                rate,
                str(cell["overrides"]),
                str(cell["overridden"]),
            ])
    headers = ["Scope", "Component", "Provided", "Correct", "Hit rate",
               "Overrides", "Overridden"]
    return headers, rows


def attribution_table(report: Mapping[str, Any],
                      title: str | None = "Component attribution") -> str:
    """Render a probe report's attribution section as a text table."""
    headers, rows = attribution_rows(report)
    return format_table(headers=headers, rows=rows, title=title)


def top_offenders_rows(report: Mapping[str, Any]
                       ) -> tuple[list[str], list[list[str]]]:
    """``(headers, rows)`` of a probe report's top-offenders profile."""
    rows = []
    branches = report.get("branches", {})
    for offender in branches.get("top_offenders", []):
        dominant = offender.get("dominant_component")
        rows.append([
            f"0x{offender['ip']:x}",
            str(offender["occurrences"]),
            f"{offender['taken_rate']:.4%}",
            str(offender["mispredictions"]),
            f"{offender['misprediction_rate']:.4%}",
            dominant if dominant is not None else "-",
        ])
    headers = ["IP", "Occur.", "Taken rate", "Mispred.", "Mispred. rate",
               "Dominant"]
    return headers, rows


def top_offenders_table(report: Mapping[str, Any],
                        title: str | None = "Top offenders") -> str:
    """Render the worst-predicted branches of a probe report."""
    headers, rows = top_offenders_rows(report)
    header = title
    if header is not None:
        tracked = report.get("branches", {}).get("tracked")
        if tracked is not None:
            header = f"{header} ({tracked} branches tracked)"
    return format_table(headers=headers, rows=rows, title=header)


def _flatten_structure(structure: Mapping[str, Any], prefix: str = ""
                       ) -> list[tuple[str, Mapping[str, Any]]]:
    """Leaf stat dicts of a nested structure snapshot, path-labelled.

    A leaf is a dict carrying an ``entries`` count (the
    :func:`repro.utils.tables.distribution_stats` shape); anything else
    dict-valued is a component grouping to recurse into.
    """
    leaves = []
    for name, value in sorted(structure.items()):
        path = f"{prefix}/{name}" if prefix else str(name)
        if isinstance(value, Mapping):
            if "entries" in value:
                leaves.append((path, value))
            else:
                leaves.extend(_flatten_structure(value, path))
    return leaves


def structure_rows(report: Mapping[str, Any]
                   ) -> tuple[list[str], list[list[str]]]:
    """``(headers, rows)`` of a probe report's structural snapshots.

    Missing statistics (not every table kind reports every column)
    render as ``-``.
    """
    def fmt(value: Any, spec: str) -> str:
        return format(value, spec) if value is not None else "-"

    rows = []
    for path, stats in _flatten_structure(report.get("structure", {})):
        rows.append([
            path,
            str(stats.get("entries", "-")),
            fmt(stats.get("live_fraction"), ".4f"),
            fmt(stats.get("saturated_fraction"), ".4f"),
            fmt(stats.get("entropy_bits"), ".4f"),
        ])
    headers = ["Component", "Entries", "Live", "Saturated",
               "Entropy (bits)"]
    return headers, rows


def structure_table(report: Mapping[str, Any],
                    title: str | None = "Predictor structure") -> str:
    """Render a probe report's structural statistics as a text table."""
    headers, rows = structure_rows(report)
    return format_table(headers=headers, rows=rows, title=title)


def telemetry_csv(document: Mapping[str, Any],
                  limit: int | None = None) -> str:
    """A whole telemetry document as sectioned CSV.

    Each populated section becomes one CSV block preceded by a
    ``# section:`` comment line, so the output remains a single stream
    yet splits cleanly.  ``limit`` bounds the interval rows like the
    text renderer (no elision marker — CSV consumers count rows).
    """
    blocks: list[str] = []

    def add(section: str, headers: Sequence[str],
            rows: Sequence[Sequence[Any]]) -> None:
        blocks.append(f"# section: {section}\n" + format_csv(headers, rows))

    manifest = document.get("manifest")
    if manifest is not None:
        runs = (manifest.get("runs", []) if manifest.get("kind")
                == "repro-suite-manifest" else [manifest])
        add("manifest", *manifest_summary_rows(runs))
    phases = document.get("phases")
    if phases is None and manifest is not None:
        phases = manifest.get("timing", {}).get("phases")
    if phases:
        add("phases", *phase_breakdown_rows(phases))
    intervals = document.get("intervals")
    if intervals is not None:
        headers, rows, _ = interval_series_rows(intervals, limit)
        add("intervals", headers, rows)
    probe = document.get("probe")
    if probe is None and manifest is not None:
        probe = manifest.get("probe")
    if probe is not None:
        headers, rows = attribution_rows(probe)
        if rows:
            add("attribution", headers, rows)
        headers, rows = top_offenders_rows(probe)
        if rows:
            add("top_offenders", headers, rows)
        headers, rows = structure_rows(probe)
        if rows:
            add("structure", headers, rows)
    return "\n".join(blocks)


def speedup_table(rows: Sequence[SpeedupRow], baseline_name: str,
                  library_name: str, title: str) -> str:
    """Render Table III's layout: predictor x {slowest,average,fastest}."""
    body = [
        [
            row.label,
            row.statistic,
            format_duration(row.baseline_seconds),
            format_duration(row.library_seconds),
            f"{row.speedup:.2f} x",
        ]
        for row in rows
    ]
    return format_table(
        headers=["Predictor", "Traces", baseline_name, library_name,
                 "Speedup"],
        rows=body,
        title=title,
    )
