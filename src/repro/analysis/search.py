"""Parameter-space search (paper Section VI-B).

State-of-the-art predictors have dozens of parameters, so exhaustive
sweeps are impossible; the paper's answer is that a *library* lets users
drive any optimizer they like, calling the simulator inside the
objective.  This module demonstrates exactly that with two dependency-
free optimizers: seeded random search and greedy coordinate descent
(hill climbing one parameter at a time).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence, Union

from pathlib import Path

import numpy as np

from ..core.batch import CacheLike, run_suite
from ..core.predictor import Predictor
from ..core.simulator import SimulationConfig
from ..sbbt.trace import TraceData
from .sweep import engine_scope, evaluate_param_sets

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import ExecutionEngine

__all__ = ["SearchSpace", "SearchResult", "random_search", "hill_climb"]

TraceLike = Union[TraceData, str, Path]


@dataclass(frozen=True, slots=True)
class SearchSpace:
    """Discrete candidate values per constructor parameter."""

    axes: dict[str, tuple[Any, ...]]

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("search space needs at least one axis")
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no candidate values")

    def size(self) -> int:
        """Number of points in the full grid."""
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def sample(self, rng: np.random.Generator) -> dict[str, Any]:
        """One uniformly random configuration."""
        return {
            name: values[int(rng.integers(len(values)))]
            for name, values in self.axes.items()
        }


@dataclass(slots=True)
class SearchResult:
    """Best configuration found plus the full evaluation history."""

    best_parameters: dict[str, Any]
    best_mpki: float
    evaluations: list[tuple[dict[str, Any], float]]

    @property
    def num_evaluations(self) -> int:
        """Simulated configurations (the search budget consumed)."""
        return len(self.evaluations)


def _objective(factory: Callable[..., Predictor],
               traces: Sequence[TraceLike],
               config: SimulationConfig | None,
               cache: CacheLike = None,
               engine: "ExecutionEngine | None" = None,
               chunk: int | str = "auto",
               batch: str | bool = "auto",
               sim_engine: str = "scalar",
               ) -> Callable[[dict[str, Any]], float]:
    """The MPKI objective, memoized twice over.

    The in-memory dict short-circuits repeats within one search run; the
    optional on-disk ``cache`` (a :class:`repro.cache.SimulationCache` or
    directory path) persists every (configuration, trace) result, so a
    re-run or refined search — or a sweep over an overlapping grid —
    only simulates configurations never seen before.  ``engine`` routes
    every evaluation through one persistent worker pool with the traces
    resident in shared memory, so the per-evaluation cost is pure
    simulation, not orchestration.
    """
    seen: dict[tuple, float] = {}

    def evaluate(parameters: dict[str, Any]) -> float:
        key = tuple(sorted(parameters.items()))
        if key not in seen:
            result = run_suite(functools.partial(factory, **parameters),
                               traces, config, cache=cache, engine=engine,
                               chunk=chunk, batch=batch,
                               sim_engine=sim_engine)
            seen[key] = result.mean_mpki()
        return seen[key]

    return evaluate


def random_search(factory: Callable[..., Predictor], space: SearchSpace,
                  traces: Sequence[TraceLike], budget: int = 20,
                  seed: int = 0,
                  config: SimulationConfig | None = None, *,
                  cache: CacheLike = None,
                  workers: int = 1,
                  engine: "ExecutionEngine | None" = None,
                  chunk: int | str = "auto",
                  batch: str | bool = "auto",
                  sim_engine: str = "scalar") -> SearchResult:
    """Evaluate ``budget`` random configurations; keep the best.

    Sampling only consumes the seeded RNG — no evaluation feeds back
    into it — so all ``budget`` configurations are drawn up front,
    deduplicated (the memoization the sequential loop applied one call
    at a time), and lowered into **one**
    :class:`~repro.core.plan.WorkPlan` spanning the whole search.  The
    evaluation history is then reconstructed in sample order, so results
    are identical to the historical one-configuration-at-a-time loop.

    ``workers > 1`` runs that plan through a private
    :class:`~repro.core.engine.ExecutionEngine` with adaptive chunked
    dispatch; ``engine=`` reuses a caller-owned one instead; ``chunk``
    sets the engine's dispatch granularity.  ``sim_engine`` selects the
    per-unit simulation engine; with ``"vectorized"`` or ``"auto"`` and
    ``batch="auto"`` (default), candidates sharing a trace are
    evaluated in one stacked numpy pass (bit-identical results).
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    rng = np.random.default_rng(seed)
    samples = [space.sample(rng) for _ in range(budget)]

    def _key(parameters: dict[str, Any]) -> tuple:
        return tuple(sorted(parameters.items()))

    unique: list[dict[str, Any]] = []
    position: dict[tuple, int] = {}
    for parameters in samples:
        key = _key(parameters)
        if key not in position:
            position[key] = len(unique)
            unique.append(parameters)

    with engine_scope(engine, workers) as scoped:
        batches = evaluate_param_sets(factory, unique, traces, config,
                                      cache=cache, engine=scoped,
                                      chunk=chunk, batch=batch,
                                      sim_engine=sim_engine)
    mpkis = [batch.mean_mpki() for batch in batches]

    history = [(parameters, mpkis[position[_key(parameters)]])
               for parameters in samples]
    best_parameters: dict[str, Any] | None = None
    best_mpki = float("inf")
    for parameters, mpki in history:
        if mpki < best_mpki:
            best_parameters, best_mpki = parameters, mpki
    assert best_parameters is not None
    return SearchResult(best_parameters=best_parameters,
                        best_mpki=best_mpki, evaluations=history)


def hill_climb(factory: Callable[..., Predictor], space: SearchSpace,
               traces: Sequence[TraceLike],
               start: dict[str, Any] | None = None,
               max_rounds: int = 5,
               config: SimulationConfig | None = None, *,
               cache: CacheLike = None,
               workers: int = 1,
               engine: "ExecutionEngine | None" = None,
               chunk: int | str = "auto",
               batch: str | bool = "auto",
               sim_engine: str = "scalar") -> SearchResult:
    """Greedy coordinate descent over the discrete space.

    Each round tries every candidate value of every axis (one axis at a
    time) and keeps any strict improvement; stops when a full round
    changes nothing or ``max_rounds`` is exhausted.  ``cache`` persists
    evaluations across runs (see :func:`_objective`), which makes
    restarting a climb from a different seed point nearly free on the
    already-visited part of the space.  ``workers`` / ``engine`` /
    ``chunk`` behave as in :func:`random_search` — but unlike random
    search, each candidate depends on the previous accept/reject
    decision, so evaluations stay sequential; each one still lowers its
    trace suite into a plan via :func:`~repro.core.batch.run_suite`.
    """
    current = dict(start) if start is not None else {
        name: values[len(values) // 2] for name, values in space.axes.items()
    }
    history: list[tuple[dict[str, Any], float]] = []
    with engine_scope(engine, workers) as scoped:
        evaluate = _objective(factory, traces, config, cache, scoped,
                              chunk, batch, sim_engine)
        current_mpki = evaluate(current)
        history.append((dict(current), current_mpki))
        for _ in range(max_rounds):
            improved = False
            for name, values in space.axes.items():
                for value in values:
                    if value == current[name]:
                        continue
                    candidate = {**current, name: value}
                    mpki = evaluate(candidate)
                    history.append((candidate, mpki))
                    if mpki < current_mpki:
                        current, current_mpki = candidate, mpki
                        improved = True
            if not improved:
                break
    return SearchResult(best_parameters=current, best_mpki=current_mpki,
                        evaluations=history)
