"""A Championship-Branch-Prediction-style evaluation harness.

The paper frames its whole methodology around the CBP championships:
contestants submit a predictor, the committee runs it over a fixed trace
suite, and the leaderboard ranks submissions by **mean MPKI** (the only
metric the championships use).  This module is that committee-in-a-box:
register predictor factories, run them over a suite, get a ranked
leaderboard with per-category breakdowns.

It is also the natural classroom tool the paper pitches in §VIII-E —
students submit factories, the harness produces the ranking.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence, Union

from pathlib import Path

from ..core.batch import run_suite
from ..core.predictor import Predictor
from ..core.simulator import SimulationConfig
from .reporting import format_table

__all__ = ["Submission", "LeaderboardEntry", "Championship"]

TraceLike = Union["TraceData", str, Path]  # noqa: F821 - doc alias


@dataclass(frozen=True, slots=True)
class Submission:
    """One contestant: a display name and a cold-predictor factory."""

    name: str
    factory: Callable[[], Predictor]


@dataclass(slots=True)
class LeaderboardEntry:
    """One ranked row of the championship results."""

    rank: int
    name: str
    mean_mpki: float
    per_trace_mpki: dict[str, float]
    per_category_mpki: dict[str, float] = field(default_factory=dict)
    total_time: float = 0.0


class Championship:
    """Run submissions over a fixed trace suite and rank them.

    Parameters
    ----------
    traces:
        Mapping of trace name to trace (paths or in-memory data).  Trace
        names of the form ``CATEGORY-n`` get per-category breakdowns.
    config:
        Simulation options applied to every run (e.g. warm-up).
    """

    def __init__(self, traces: Mapping[str, TraceLike],
                 config: SimulationConfig | None = None):
        if not traces:
            raise ValueError("a championship needs at least one trace")
        self.traces = dict(traces)
        self.config = config or SimulationConfig(collect_most_failed=False)
        self.submissions: list[Submission] = []

    def submit(self, name: str,
               factory: Callable[[], Predictor]) -> "Championship":
        """Register a contestant; returns self for chaining."""
        if any(existing.name == name for existing in self.submissions):
            raise ValueError(f"duplicate submission name {name!r}")
        self.submissions.append(Submission(name=name, factory=factory))
        return self

    @staticmethod
    def _category(trace_name: str) -> str:
        head, _, tail = trace_name.rpartition("-")
        return head if head and tail.isdigit() else trace_name

    def run(self) -> list[LeaderboardEntry]:
        """Evaluate every submission; returns the ranked leaderboard."""
        if not self.submissions:
            raise ValueError("no submissions registered")
        names = list(self.traces)
        scored = []
        for submission in self.submissions:
            batch = run_suite(submission.factory,
                              list(self.traces.values()),
                              self.config, names=names)
            per_trace = {result.trace_name: result.mpki
                         for result in batch.results}
            categories: dict[str, list[float]] = {}
            for trace_name, mpki in per_trace.items():
                categories.setdefault(self._category(trace_name),
                                      []).append(mpki)
            scored.append((
                statistics.fmean(per_trace.values()),
                submission.name,
                per_trace,
                {category: statistics.fmean(values)
                 for category, values in categories.items()},
                batch.timing.total,
            ))
        scored.sort(key=lambda row: (row[0], row[1]))
        return [
            LeaderboardEntry(
                rank=rank + 1, name=name, mean_mpki=mean,
                per_trace_mpki=per_trace,
                per_category_mpki=per_category,
                total_time=total_time,
            )
            for rank, (mean, name, per_trace, per_category, total_time)
            in enumerate(scored)
        ]

    def leaderboard_table(
            self, entries: Sequence[LeaderboardEntry] | None = None) -> str:
        """Render the leaderboard as championship-style text."""
        if entries is None:
            entries = self.run()
        categories = sorted({
            category for entry in entries
            for category in entry.per_category_mpki
        })
        headers = ["Rank", "Submission", "Mean MPKI",
                   *categories, "Sim time"]
        rows = [
            [str(entry.rank), entry.name, f"{entry.mean_mpki:.4f}",
             *(f"{entry.per_category_mpki.get(category, float('nan')):.3f}"
               for category in categories),
             f"{entry.total_time:.2f} s"]
            for entry in entries
        ]
        return format_table(headers, rows,
                            title="Championship leaderboard (lower is better)")
