"""Trace format translators.

MBPlib ships programs to translate BT9 and champsimtrace files into SBBT
so users can reuse traces they already recorded (paper Section IV-D).
The same translators exist here, built on the independent reader/writer
subcomponents of each format package.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..baselines.champsim.trace import InstructionTrace, read_instruction_trace
from ..baselines.cbp5.bt9 import bt9_to_trace_data, write_bt9
from ..sbbt.reader import read_trace
from ..sbbt.trace import TraceData
from ..sbbt.writer import write_trace

__all__ = [
    "TranslationReport",
    "bt9_to_sbbt",
    "sbbt_to_bt9",
    "champsim_to_sbbt",
    "champsim_trace_to_branches",
]


@dataclass(frozen=True, slots=True)
class TranslationReport:
    """Before/after sizes of one translation (the Table I quantity)."""

    source: str
    destination: str
    num_branches: int
    source_bytes: int
    destination_bytes: int

    @property
    def size_ratio(self) -> float:
        """``source / destination`` — the paper reports 7.3x for CBP5."""
        if self.destination_bytes == 0:
            return float("inf")
        return self.source_bytes / self.destination_bytes


def bt9_to_sbbt(source: str | Path, destination: str | Path) -> TranslationReport:
    """Translate a BT9-like text trace to SBBT."""
    source = Path(source)
    destination = Path(destination)
    data = bt9_to_trace_data(source)
    size = write_trace(destination, data)
    return TranslationReport(
        source=str(source), destination=str(destination),
        num_branches=len(data),
        source_bytes=source.stat().st_size, destination_bytes=size,
    )


def sbbt_to_bt9(source: str | Path, destination: str | Path) -> TranslationReport:
    """Translate an SBBT trace to the BT9-like text format."""
    source = Path(source)
    destination = Path(destination)
    data = read_trace(source)
    size = write_bt9(destination, data)
    return TranslationReport(
        source=str(source), destination=str(destination),
        num_branches=len(data),
        source_bytes=source.stat().st_size, destination_bytes=size,
    )


def champsim_trace_to_branches(trace: InstructionTrace) -> TraceData:
    """Project a per-instruction trace down to its branch records.

    The inverse of
    :func:`repro.baselines.champsim.instruction_trace_from_branches`:
    gaps are recovered by counting the non-branch records between
    branches.
    """
    records = trace.records
    branch_mask = records["is_branch"].astype(bool)
    positions = np.flatnonzero(branch_mask)
    n = len(positions)
    if n == 0:
        return TraceData.empty()
    gaps = np.empty(n, dtype=np.int64)
    gaps[0] = positions[0]
    gaps[1:] = np.diff(positions) - 1
    taken = records["branch_taken"][positions].astype(bool)
    targets = records["dest_mem"][positions, 0].astype(np.uint64)
    targets[~taken] = 0
    opcodes = (records["dest_regs"][positions, 0] & 0xF).astype(np.uint8)
    # A not-taken conditional direct branch may keep its target in SBBT,
    # but the per-instruction format only stores taken targets; restore
    # the only value rule 2 allows for indirect conditionals (null) and
    # leave direct ones null too (information lost in champsim format).
    return TraceData(
        ips=records["ip"][positions].astype(np.uint64),
        targets=targets,
        opcodes=opcodes,
        taken=taken,
        gaps=gaps.astype(np.uint16),
        num_instructions=len(records),
    )


def champsim_to_sbbt(source: str | Path,
                     destination: str | Path) -> TranslationReport:
    """Translate a champsimtrace-like file to SBBT.

    This is the translation behind Table I's DPC3 row, where the ratio is
    largest because the source stores every instruction.
    """
    source = Path(source)
    destination = Path(destination)
    instruction_trace = read_instruction_trace(source)
    data = champsim_trace_to_branches(instruction_trace)
    size = write_trace(destination, data)
    return TranslationReport(
        source=str(source), destination=str(destination),
        num_branches=len(data),
        source_bytes=source.stat().st_size, destination_bytes=size,
    )
