"""Trace real program executions into SBBT.

The paper ships an instrumentation module for Intel PIN so users can
trace x86 executables straight into SBBT.  Binary instrumentation is not
reproducible here, so this module provides the same *capability* for the
programs we can observe: it instruments a **Python callable** with
``sys.settrace`` line events and records its control flow as a branch
trace (DESIGN.md substitution table).

Model: every executed source line is an instruction; a control transfer
to anything other than the next line is a branch event.

* backward transfer within a function → a **conditional jump** (loop
  back-edge, taken); falling past a previously-seen back-edge source
  emits the not-taken exit;
* forward skip within a function → a **conditional jump** (if/else,
  taken), and straight-line flow through a known branch line emits
  not-taken;
* function call → **call**; function return → **ret**.

Line numbers are mapped into a synthetic code-address space so the
result is a well-formed SBBT trace any simulator in this package can
consume.  The tracer is single-threaded and meant for small programs
(every line event is a Python callback), which is exactly the classroom
scale the paper targets.
"""

from __future__ import annotations

import sys
from typing import Any, Callable

import numpy as np

from ..core.branch import (
    Branch,
    OPCODE_CALL,
    OPCODE_COND_JUMP,
    OPCODE_RET,
)
from ..sbbt.packet import MAX_GAP
from ..sbbt.trace import TraceData

__all__ = ["PythonTracer", "trace_python_function"]

_CODE_BASE = 0x0000_6000_0000_0000
_LINE_SIZE = 4


class PythonTracer:
    """Record a Python callable's control flow as a branch stream.

    Use as a context manager or through
    :func:`trace_python_function`.  Collected events are exposed via
    :meth:`to_trace_data`.
    """

    def __init__(self) -> None:
        self._events: list[tuple[Branch, int]] = []
        self._pending_gap = 0
        # (filename, line) of the previous event per frame depth.
        self._last_line: dict[int, tuple[str, int]] = {}
        self._known_branch_lines: set[int] = set()
        self._file_bases: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Address mapping.
    # ------------------------------------------------------------------

    def _address(self, filename: str, line: int) -> int:
        base = self._file_bases.get(filename)
        if base is None:
            base = _CODE_BASE + len(self._file_bases) * 0x100_0000
            self._file_bases[filename] = base
        return base + line * _LINE_SIZE

    # ------------------------------------------------------------------
    # Event recording.
    # ------------------------------------------------------------------

    def _emit(self, ip: int, target: int, opcode, taken: bool) -> None:
        gap = min(self._pending_gap, MAX_GAP)
        self._pending_gap = 0
        self._events.append((Branch(ip, target, opcode, taken), gap))

    def _trace(self, frame, event: str, arg: Any):  # noqa: ANN001
        depth = len(self._last_line)
        filename = frame.f_code.co_filename
        line = frame.f_lineno
        if event == "call":
            caller = self._last_line.get(depth - 1)
            if caller is not None:
                self._emit(self._address(*caller) + 1,
                           self._address(filename, line),
                           OPCODE_CALL, True)
            self._last_line[depth] = (filename, line)
            return self._trace
        if event == "line":
            previous = self._last_line.get(depth - 1)
            address = self._address(filename, line)
            if previous is not None and previous[0] == filename:
                prev_line = previous[1]
                prev_address = self._address(filename, prev_line)
                if line == prev_line + 1:
                    # Straight-line flow; a known branch line falling
                    # through is a not-taken conditional.
                    if prev_address in self._known_branch_lines:
                        self._emit(prev_address, address,
                                   OPCODE_COND_JUMP, False)
                    else:
                        self._pending_gap += 1
                else:
                    # A jump: backward = loop edge, forward = if skip.
                    self._known_branch_lines.add(prev_address)
                    self._emit(prev_address, address,
                               OPCODE_COND_JUMP, True)
            else:
                self._pending_gap += 1
            self._last_line[depth - 1] = (filename, line)
            return self._trace
        if event == "return":
            site = self._last_line.pop(depth - 1, None)
            caller = self._last_line.get(depth - 2)
            if site is not None and caller is not None:
                self._emit(self._address(*site) + 2,
                           self._address(*caller) + 3,
                           OPCODE_RET, True)
            return self._trace
        return self._trace

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def run(self, function: Callable[..., Any], *args: Any,
            **kwargs: Any) -> Any:
        """Execute ``function`` under tracing; returns its result."""
        previous = sys.gettrace()
        sys.settrace(self._trace)
        try:
            return function(*args, **kwargs)
        finally:
            sys.settrace(previous)

    @property
    def num_events(self) -> int:
        """Branch events recorded so far."""
        return len(self._events)

    def to_trace_data(self) -> TraceData:
        """Freeze the recorded events into a simulatable trace."""
        n = len(self._events)
        ips = np.fromiter((b.ip for b, _ in self._events), np.uint64, n)
        targets = np.fromiter((b.target for b, _ in self._events),
                              np.uint64, n)
        opcodes = np.fromiter((int(b.opcode) for b, _ in self._events),
                              np.uint8, n)
        taken = np.fromiter((b.taken for b, _ in self._events), bool, n)
        gaps = np.fromiter((g for _, g in self._events), np.uint16, n)
        return TraceData(
            ips, targets, opcodes, taken, gaps,
            num_instructions=n + int(gaps.sum(dtype=np.int64))
            + self._pending_gap,
        )


def trace_python_function(function: Callable[..., Any], *args: Any,
                          **kwargs: Any) -> tuple[Any, TraceData]:
    """Trace one call of ``function``; returns (result, trace).

    >>> def demo(n):
    ...     total = 0
    ...     for i in range(n):
    ...         if i % 3:
    ...             total += i
    ...     return total
    >>> result, trace = trace_python_function(demo, 50)
    >>> result == sum(i for i in range(50) if i % 3)
    True
    >>> len(trace) > 50
    True
    """
    tracer = PythonTracer()
    result = tracer.run(function, *args, **kwargs)
    return result, tracer.to_trace_data()
