"""Synthetic program-like branch trace generation.

The CBP5 and DPC3 trace sets the paper uses are no longer distributed
(the paper itself thanks D. Jiménez for a private copy).  This module is
the substitution documented in DESIGN.md: a deterministic generator that
*executes a random structured program model* — nested loops with stable
trip counts, biased and pattern-correlated conditionals, call/return
pairs and indirect switches — and emits the branches it encounters.

The point is not to match any benchmark's MPKI, but to produce traces
with the *statistical shape* real programs have, so that the simulators
and formats are exercised on realistic inputs:

* 15-25 % of instructions are branches (Hennessy & Patterson's range,
  cited by the paper when sizing the 12-bit gap field);
* never more than 4096 instructions between branches;
* a mix of highly-biased, history-predictable and noisy conditionals, so
  better predictors genuinely score better (bimodal > static,
  GShare > bimodal, TAGE > GShare on these traces — asserted by the
  integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..core.branch import (
    Branch,
    OPCODE_CALL,
    OPCODE_COND_JUMP,
    OPCODE_IND_JUMP,
    OPCODE_JUMP,
    OPCODE_RET,
)
from ..sbbt.packet import MAX_GAP
from ..sbbt.trace import TraceData

__all__ = ["WorkloadProfile", "SyntheticProgram", "generate_trace"]

_CODE_BASE = 0x0000_5555_5540_0000  # a typical PIE text-segment base
_FUNCTION_STRIDE = 0x4000
_INSTRUCTION_SIZE = 4


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """Statistical knobs of a synthetic program.

    Attributes
    ----------
    num_functions:
        Code footprint: how many distinct functions exist.
    max_call_depth:
        Bound on the synthetic call stack.
    loops_per_function:
        Mean number of loop nests per function body.
    max_loop_nesting:
        Bound on loop nesting depth.
    mean_trip_count:
        Mean loop trip count (geometric-ish distribution).
    stable_loop_fraction:
        Fraction of loops whose trip count never changes (loop-predictor
        food); the rest redraw their count each entry.
    branches_per_block:
        Mean conditional branches in a straight-line region.
    mean_block_length:
        Mean non-branch instructions between branches (controls branch
        density).
    biased_fraction / pattern_fraction / correlated_fraction:
        Fractions of conditionals that are (a) heavily biased coin
        flips, (b) exactly periodic in their own execution count
        (local-history food), and (c) copies/inversions of a recent
        *other* branch's outcome (global-history food — the correlation
        GShare-class predictors exist for).  The remainder are weakly
        biased noise.
    pattern_length_max:
        Longest period of pattern branches.
    indirect_fraction:
        Fraction of functions ending in an indirect switch.
    phase_period:
        Conditional-branch count after which biases are redrawn
        (behaviour change, as in the paper's "long traces" motivation);
        0 disables phases.
    """

    num_functions: int = 32
    max_call_depth: int = 6
    loops_per_function: float = 2.0
    max_loop_nesting: int = 3
    mean_trip_count: float = 12.0
    stable_loop_fraction: float = 0.5
    branches_per_block: float = 4.0
    mean_block_length: float = 5.0
    biased_fraction: float = 0.45
    pattern_fraction: float = 0.2
    correlated_fraction: float = 0.2
    pattern_length_max: int = 8
    indirect_fraction: float = 0.3
    phase_period: int = 0

    def __post_init__(self) -> None:
        if self.num_functions < 1:
            raise ValueError("num_functions must be >= 1")
        total = (self.biased_fraction + self.pattern_fraction
                 + self.correlated_fraction)
        if not 0.0 <= total <= 1.0:
            raise ValueError(
                "biased + pattern + correlated fractions must be in [0, 1]"
            )
        if self.mean_block_length >= MAX_GAP:
            raise ValueError("mean_block_length must stay far below 4096")


# ----------------------------------------------------------------------
# Program model nodes.
# ----------------------------------------------------------------------


@dataclass(slots=True)
class _Conditional:
    """A conditional branch site with a hidden outcome process."""

    ip: int
    target: int
    kind: str              # "biased" | "pattern" | "correlated" | "noise"
    bias: float
    pattern: int
    pattern_length: int
    corr_depth: int = 1    # which recent outcome a correlated site copies
    corr_invert: bool = False
    executions: int = 0


@dataclass(slots=True)
class _Loop:
    """A counted loop: body then a backward conditional back-edge."""

    backedge: _Conditional
    body: list
    stable: bool
    trip_count: int


@dataclass(slots=True)
class _CallSite:
    """A direct call to another function plus the matching return."""

    ip: int
    callee: int  # function index


@dataclass(slots=True)
class _Switch:
    """An indirect jump choosing among several case targets."""

    ip: int
    targets: list[int]
    weights: np.ndarray


@dataclass(slots=True)
class _Straight:
    """A run of non-branch instructions (contributes to the gap)."""

    length: int


@dataclass(slots=True)
class _Function:
    """A callable unit: entry address, body, and its return branch."""

    index: int
    entry: int
    body: list = field(default_factory=list)
    return_ip: int = 0


class SyntheticProgram:
    """A randomly built but deterministic program model.

    Construction draws the whole static structure (functions, loops,
    branch sites and their hidden processes) from ``seed``; execution is
    then a pure function of that structure plus the per-run RNG, so the
    same (profile, seed) pair always produces the identical trace —
    matching the determinism requirement of trace-based simulation.
    """

    def __init__(self, profile: WorkloadProfile, seed: int):
        self.profile = profile
        self.seed = seed
        self._build_rng = np.random.default_rng(np.random.SeedSequence([seed, 0xB]))
        self._run_rng = np.random.default_rng(np.random.SeedSequence([seed, 0xE]))
        self._next_ip = _CODE_BASE
        self._recent_outcomes: list[bool] = []
        self.functions = [self._build_function(i)
                          for i in range(profile.num_functions)]
        self._add_main_calls()
        self.num_conditional_sites = self._count_sites()

    # ------------------------------------------------------------------
    # Static structure generation.
    # ------------------------------------------------------------------

    def _alloc_ip(self, count: int = 1) -> int:
        ip = self._next_ip
        self._next_ip += count * _INSTRUCTION_SIZE
        return ip

    def _make_conditional(self, *, backward: bool = False) -> _Conditional:
        rng = self._build_rng
        profile = self.profile
        ip = self._alloc_ip()
        offset = int(rng.integers(4, 64)) * _INSTRUCTION_SIZE
        target = ip - offset if backward else ip + offset
        roll = rng.random()
        corr_depth, corr_invert = 1, False
        if roll < profile.biased_fraction:
            kind = "biased"
            bias = float(rng.choice([0.02, 0.05, 0.9, 0.95, 0.98]))
            pattern, pattern_length = 0, 1
        elif roll < profile.biased_fraction + profile.pattern_fraction:
            kind = "pattern"
            pattern_length = int(rng.integers(2, profile.pattern_length_max + 1))
            pattern = int(rng.integers(1, (1 << pattern_length) - 1))
            bias = 0.0
        elif roll < (profile.biased_fraction + profile.pattern_fraction
                     + profile.correlated_fraction):
            kind = "correlated"
            corr_depth = int(rng.integers(1, 4))
            corr_invert = bool(rng.integers(0, 2))
            bias, pattern, pattern_length = 0.5, 0, 1
        else:
            kind = "noise"
            bias = float(rng.uniform(0.25, 0.75))
            pattern, pattern_length = 0, 1
        return _Conditional(ip=ip, target=target, kind=kind, bias=bias,
                            pattern=pattern, pattern_length=pattern_length,
                            corr_depth=corr_depth, corr_invert=corr_invert)

    def _pick_callee(self) -> int:
        """Choose a call target, biased towards cheap leaf functions."""
        rng = self._build_rng
        n = self.profile.num_functions
        leaf_start = max(1, n // 3)
        if leaf_start < n and rng.random() < 0.75:
            return int(rng.integers(leaf_start, n))
        return int(rng.integers(1, max(2, n)))

    def _make_body(self, depth: int) -> list:
        rng = self._build_rng
        profile = self.profile
        body: list = []
        num_branches = 1 + rng.poisson(profile.branches_per_block)
        for _ in range(num_branches):
            body.append(_Straight(1 + int(rng.poisson(profile.mean_block_length))))
            body.append(self._make_conditional())
        # Call sites inside bodies keep the dynamic call/return density
        # realistic (they execute once per enclosing loop iteration).
        if profile.num_functions > 1 and rng.random() < 0.6:
            body.append(_Straight(1 + int(rng.poisson(2))))
            body.append(_CallSite(ip=self._alloc_ip(),
                                  callee=self._pick_callee()))
        num_loops = rng.poisson(profile.loops_per_function / (depth + 1))
        for _ in range(num_loops):
            if depth >= profile.max_loop_nesting:
                break
            inner = self._make_body(depth + 1)
            backedge = self._make_conditional(backward=True)
            # Inner loops run shorter, like real code — and it keeps one
            # pass over a function body polynomial rather than the
            # product of every nesting level's trip count.
            mean_trips = max(2.0, profile.mean_trip_count / (4.0 ** depth))
            trip = max(2, 1 + int(rng.geometric(1.0 / mean_trips)))
            body.append(_Loop(
                backedge=backedge,
                body=inner,
                stable=bool(rng.random() < profile.stable_loop_fraction),
                trip_count=trip,
            ))
        order = rng.permutation(len(body))
        return [body[i] for i in order]

    def _build_function(self, index: int) -> _Function:
        rng = self._build_rng
        profile = self.profile
        self._next_ip = (_CODE_BASE + index * _FUNCTION_STRIDE)
        function = _Function(index=index, entry=self._next_ip)
        # Functions in the upper two thirds of the table are *leaves*:
        # small bodies without deep loop nests, so calling them is cheap
        # and the dynamic instruction mix stays program-like.
        is_leaf = index >= max(1, profile.num_functions // 3)
        start_depth = max(0, profile.max_loop_nesting - 1) if is_leaf else 0
        function.body = self._make_body(depth=start_depth)
        # Call sites: mostly forward in the function table to bound the
        # natural recursion depth.
        num_calls = int(rng.integers(0, 3))
        for _ in range(num_calls):
            callee = int(rng.integers(0, profile.num_functions))
            function.body.append(_Straight(1 + int(rng.poisson(2))))
            function.body.append(_CallSite(ip=self._alloc_ip(), callee=callee))
        if rng.random() < profile.indirect_fraction:
            cases = int(rng.integers(2, 6))
            targets = [function.entry + int(rng.integers(8, 200))
                       * _INSTRUCTION_SIZE for _ in range(cases)]
            weights = rng.dirichlet(np.ones(cases))
            function.body.append(_Switch(ip=self._alloc_ip(),
                                         targets=targets, weights=weights))
        function.return_ip = self._alloc_ip()
        return function

    def _add_main_calls(self) -> None:
        """Guarantee the outer loop exercises the whole code footprint.

        Function 0 is the program's main loop; without explicit call
        sites to the other functions most of the generated code would be
        dead, so main gets a spread of calls appended to its body.
        """
        rng = self._build_rng
        main = self.functions[0]
        others = self.profile.num_functions - 1
        if others <= 0:
            return
        fanout = min(others, max(3, others // 3))
        callees = rng.choice(np.arange(1, others + 1), size=fanout,
                             replace=False)
        for callee in callees:
            main.body.append(_Straight(1 + int(rng.poisson(3))))
            main.body.append(_CallSite(ip=self._alloc_ip(),
                                       callee=int(callee)))

    def _count_sites(self) -> int:
        count = 0

        def walk(body: list) -> None:
            nonlocal count
            for node in body:
                if isinstance(node, _Conditional):
                    count += 1
                elif isinstance(node, _Loop):
                    count += 1
                    walk(node.body)

        for function in self.functions:
            walk(function.body)
        return count

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def _outcome(self, site: _Conditional) -> bool:
        site.executions += 1
        if site.kind == "pattern":
            position = site.executions % site.pattern_length
            return bool((site.pattern >> position) & 1)
        if site.kind == "correlated":
            recent = self._recent_outcomes
            if len(recent) >= site.corr_depth:
                return bool(recent[-site.corr_depth] ^ site.corr_invert)
            return bool(self._run_rng.random() < site.bias)
        return bool(self._run_rng.random() < site.bias)

    def _record_outcome(self, taken: bool) -> None:
        """Keep the short window of recent conditional outcomes that
        correlated sites copy from."""
        recent = self._recent_outcomes
        recent.append(taken)
        if len(recent) > 4:
            del recent[0]

    def _redraw_phase(self) -> None:
        """Behaviour change: re-randomize every site's hidden process."""
        rng = self._run_rng

        def walk(body: list) -> None:
            for node in body:
                if isinstance(node, _Conditional):
                    if node.kind == "biased":
                        node.bias = float(rng.choice(
                            [0.02, 0.05, 0.9, 0.95, 0.98]))
                    elif node.kind == "pattern":
                        node.pattern = int(rng.integers(
                            1, (1 << node.pattern_length) - 1))
                elif isinstance(node, _Loop):
                    walk(node.body)

        for function in self.functions:
            walk(function.body)

    def events(self, num_branches: int) -> Iterator[tuple[Branch, int]]:
        """Yield ``(branch, gap)`` pairs by running the program model.

        The program is an endless outer loop over function 0; execution
        stops after ``num_branches`` branch events.
        """
        if num_branches < 0:
            raise ValueError("num_branches must be non-negative")
        produced = 0
        conditionals_seen = 0
        pending_gap = 0
        phase = self.profile.phase_period
        call_stack: list[int] = []

        def emit(branch: Branch) -> Iterator[tuple[Branch, int]]:
            nonlocal produced, pending_gap
            gap = min(pending_gap, MAX_GAP)
            pending_gap = 0
            produced += 1
            yield branch, gap

        def run_body(body: list, depth: int) -> Iterator[tuple[Branch, int]]:
            nonlocal pending_gap, conditionals_seen
            for node in body:
                if produced >= num_branches:
                    return
                if isinstance(node, _Straight):
                    pending_gap += node.length
                elif isinstance(node, _Conditional):
                    taken = self._outcome(node)
                    self._record_outcome(taken)
                    conditionals_seen += 1
                    if phase and conditionals_seen % phase == 0:
                        self._redraw_phase()
                    yield from emit(Branch(node.ip, node.target,
                                           OPCODE_COND_JUMP, taken))
                elif isinstance(node, _Loop):
                    trips = node.trip_count if node.stable else max(
                        2, 1 + int(self._run_rng.geometric(
                            1.0 / self.profile.mean_trip_count)))
                    for iteration in range(trips):
                        if produced >= num_branches:
                            return
                        yield from run_body(node.body, depth)
                        taken = iteration + 1 < trips
                        self._record_outcome(taken)
                        conditionals_seen += 1
                        yield from emit(Branch(
                            node.backedge.ip, node.backedge.target,
                            OPCODE_COND_JUMP, taken))
                elif isinstance(node, _CallSite):
                    if len(call_stack) >= self.profile.max_call_depth:
                        continue
                    callee = self.functions[node.callee]
                    yield from emit(Branch(node.ip, callee.entry,
                                           OPCODE_CALL, True))
                    call_stack.append(node.ip + _INSTRUCTION_SIZE)
                    yield from run_body(callee.body, depth + 1)
                    return_target = call_stack.pop()
                    if produced >= num_branches:
                        return
                    yield from emit(Branch(callee.return_ip, return_target,
                                           OPCODE_RET, True))
                elif isinstance(node, _Switch):
                    choice = int(self._run_rng.choice(
                        len(node.targets), p=node.weights))
                    yield from emit(Branch(node.ip, node.targets[choice],
                                           OPCODE_IND_JUMP, True))

        main = self.functions[0]
        while produced < num_branches:
            yield from run_body(main.body, 0)
            # Close the outer program loop with an unconditional jump.
            if produced < num_branches:
                pending_gap += 2
                yield from emit(Branch(main.return_ip + _INSTRUCTION_SIZE,
                                       main.entry, OPCODE_JUMP, True))


def generate_trace(profile: WorkloadProfile, seed: int,
                   num_branches: int) -> TraceData:
    """Generate an in-memory trace of exactly ``num_branches`` records."""
    import itertools

    program = SyntheticProgram(profile, seed)
    # The walker may overshoot by a few records (loop back-edges emitted
    # after the budget check); slice to the exact count.
    packets = list(itertools.islice(program.events(num_branches),
                                    num_branches))
    n = len(packets)
    ips = np.fromiter((b.ip for b, _ in packets), np.uint64, n)
    targets = np.fromiter((b.target for b, _ in packets), np.uint64, n)
    opcodes = np.fromiter((int(b.opcode) for b, _ in packets), np.uint8, n)
    taken = np.fromiter((b.taken for b, _ in packets), bool, n)
    gaps = np.fromiter((gap for _, gap in packets), np.uint16, n)
    return TraceData(ips, targets, opcodes, taken, gaps,
                     num_instructions=n + int(gaps.sum(dtype=np.int64)))
