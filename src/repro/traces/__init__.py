"""Trace infrastructure: synthetic generation, suites, translation,
inspection.

Stands in for the paper's curated CBP5/DPC3 trace sets (no longer
distributed) and reimplements its BT9/champsimtrace translators.
"""

from .inspect import TraceStatistics, analyze_trace
from .synth import SyntheticProgram, WorkloadProfile, generate_trace
from .tracer import PythonTracer, trace_python_function
from .translate import (
    TranslationReport,
    bt9_to_sbbt,
    champsim_to_sbbt,
    champsim_trace_to_branches,
    sbbt_to_bt9,
)
from .workloads import (
    CBP5_EVALUATION_SUITE,
    CBP5_TRAINING_SUITE,
    DPC3_SUITE,
    PROFILES,
    SuiteSpec,
    generate_suite,
    generate_workload,
    write_suite,
)

__all__ = [
    "TraceStatistics", "analyze_trace",
    "SyntheticProgram", "WorkloadProfile", "generate_trace",
    "PythonTracer", "trace_python_function",
    "TranslationReport", "bt9_to_sbbt", "champsim_to_sbbt",
    "champsim_trace_to_branches", "sbbt_to_bt9",
    "CBP5_EVALUATION_SUITE", "CBP5_TRAINING_SUITE", "DPC3_SUITE",
    "PROFILES", "SuiteSpec", "generate_suite", "generate_workload",
    "write_suite",
]
