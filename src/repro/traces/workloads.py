"""Named workload suites mimicking the paper's trace sets.

The CBP5 traces are grouped into four categories (SHORT/LONG ×
MOBILE/SERVER) and the DPC3 set is built from SPEC CPU2017.  This module
defines one :class:`~repro.traces.synth.WorkloadProfile` per category —
mobile workloads have small code footprints and regular loops, server
workloads large footprints and more data-dependent branching — plus suite
builders that generate numbered traces deterministically.

Trace counts and lengths are scaled down from the paper's (223 training
traces of up to 55 G instructions) to laptop-Python scale; the *relative*
structure between suites is what matters for the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..sbbt.trace import TraceData
from ..sbbt.writer import write_trace
from .synth import WorkloadProfile, generate_trace

__all__ = [
    "PROFILES",
    "SuiteSpec",
    "CBP5_TRAINING_SUITE",
    "CBP5_EVALUATION_SUITE",
    "DPC3_SUITE",
    "generate_workload",
    "generate_suite",
    "write_suite",
]

#: Per-category profiles.  SERVER: big code footprint, noisy branches.
#: MOBILE: small kernels, loopy and regular.  SPEC17-like: in between,
#: loop-heavy with stable trip counts.
PROFILES: dict[str, WorkloadProfile] = {
    "short_mobile": WorkloadProfile(
        num_functions=12, loops_per_function=3.0, mean_trip_count=20.0,
        stable_loop_fraction=0.7, branches_per_block=3.0,
        mean_block_length=4.0, biased_fraction=0.5, pattern_fraction=0.2,
        correlated_fraction=0.2, indirect_fraction=0.15,
    ),
    "long_mobile": WorkloadProfile(
        num_functions=16, loops_per_function=3.0, mean_trip_count=24.0,
        stable_loop_fraction=0.6, branches_per_block=3.0,
        mean_block_length=4.0, biased_fraction=0.5, pattern_fraction=0.15,
        correlated_fraction=0.2, indirect_fraction=0.15,
        phase_period=40_000,
    ),
    "short_server": WorkloadProfile(
        num_functions=64, loops_per_function=1.5, mean_trip_count=8.0,
        stable_loop_fraction=0.35, branches_per_block=6.0,
        mean_block_length=6.0, biased_fraction=0.4, pattern_fraction=0.15,
        correlated_fraction=0.25, indirect_fraction=0.4,
    ),
    "long_server": WorkloadProfile(
        num_functions=96, loops_per_function=1.5, mean_trip_count=8.0,
        stable_loop_fraction=0.3, branches_per_block=6.0,
        mean_block_length=6.0, biased_fraction=0.4, pattern_fraction=0.12,
        correlated_fraction=0.25, indirect_fraction=0.4,
        phase_period=60_000,
    ),
    "spec17_like": WorkloadProfile(
        num_functions=40, loops_per_function=2.5, mean_trip_count=16.0,
        stable_loop_fraction=0.55, branches_per_block=4.0,
        mean_block_length=5.0, biased_fraction=0.4, pattern_fraction=0.2,
        correlated_fraction=0.3, indirect_fraction=0.25,
    ),
}


@dataclass(frozen=True, slots=True)
class SuiteSpec:
    """A reproducible suite: (category, trace count, branches per trace).

    ``length_spread`` makes trace lengths heterogeneous, like the real
    CBP5 set whose traces span two orders of magnitude — that spread is
    what gives Table III distinct slowest/average/fastest rows.
    """

    name: str
    categories: tuple[str, ...]
    traces_per_category: int
    branches_per_trace: int
    length_spread: float = 4.0
    seed: int = 2023

    def trace_plans(self) -> list[tuple[str, str, int, int]]:
        """Expand to (trace_name, category, seed, num_branches) tuples."""
        plans = []
        for c, category in enumerate(self.categories):
            for i in range(self.traces_per_category):
                # Deterministic per-trace length between 1/spread and
                # spread times the nominal size (geometric progression).
                position = (i / max(1, self.traces_per_category - 1)
                            if self.traces_per_category > 1 else 0.5)
                factor = self.length_spread ** (2.0 * position - 1.0)
                branches = max(1000, int(self.branches_per_trace * factor))
                plans.append((
                    f"{category.upper()}-{i + 1}",
                    category,
                    self.seed + c * 1000 + i,
                    branches,
                ))
        return plans


#: Scaled-down counterparts of the paper's three trace sets (Table I).
CBP5_TRAINING_SUITE = SuiteSpec(
    name="cbp5-training",
    categories=("short_mobile", "long_mobile", "short_server", "long_server"),
    traces_per_category=5,
    branches_per_trace=40_000,
    seed=51,
)

CBP5_EVALUATION_SUITE = SuiteSpec(
    name="cbp5-evaluation",
    categories=("short_mobile", "long_mobile", "short_server", "long_server"),
    traces_per_category=8,
    branches_per_trace=25_000,
    seed=52,
)

DPC3_SUITE = SuiteSpec(
    name="dpc3",
    categories=("spec17_like",),
    traces_per_category=6,
    branches_per_trace=40_000,
    seed=53,
)


def generate_workload(category: str, seed: int = 0,
                      num_branches: int = 50_000) -> TraceData:
    """Generate a single trace of a named category.

    >>> trace = generate_workload("short_mobile", seed=1, num_branches=2000)
    >>> len(trace)
    2000
    """
    if category not in PROFILES:
        raise KeyError(
            f"unknown workload category {category!r}; "
            f"choose from {sorted(PROFILES)}"
        )
    return generate_trace(PROFILES[category], seed, num_branches)


def generate_suite(spec: SuiteSpec) -> dict[str, TraceData]:
    """Generate every trace of a suite, keyed by trace name."""
    return {
        name: generate_trace(PROFILES[category], seed, branches)
        for name, category, seed, branches in spec.trace_plans()
    }


def write_suite(spec: SuiteSpec, directory: str | Path,
                suffix: str = ".sbbt.xz",
                progress: Callable[[str], None] | None = None) -> list[Path]:
    """Generate a suite and write each trace as an SBBT file.

    ``suffix`` selects the codec (``.sbbt`` raw, ``.sbbt.xz`` the default
    high-ratio codec).  Returns the written paths in suite order.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, category, seed, branches in spec.trace_plans():
        path = directory / f"{name}{suffix}"
        if progress is not None:
            progress(f"generating {path.name} ({branches} branches)")
        write_trace(path, generate_trace(PROFILES[category], seed, branches))
        paths.append(path)
    return paths
