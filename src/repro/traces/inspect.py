"""Trace inspection: the statistics behind format-design decisions.

The paper justifies SBBT's 12-bit gap field by checking that no CBP5 or
DPC3 trace has two consecutive branches more than 4096 instructions
apart, and cites the 15-25 % branch-density range.  This module computes
those statistics — and everything else one wants to know about a trace
before trusting an experiment on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..sbbt.trace import TraceData

__all__ = ["TraceStatistics", "analyze_trace"]


@dataclass(frozen=True, slots=True)
class TraceStatistics:
    """Summary statistics of one branch trace."""

    num_instructions: int
    num_branches: int
    num_conditional: int
    num_unconditional: int
    num_indirect: int
    num_calls: int
    num_returns: int
    num_static_branches: int
    taken_fraction: float
    branch_density: float
    max_gap: int
    mean_gap: float
    gap_fits_12_bits: bool

    def to_json(self) -> dict[str, Any]:
        """Plain-dict form for JSON output."""
        return {
            "num_instructions": self.num_instructions,
            "num_branches": self.num_branches,
            "num_conditional": self.num_conditional,
            "num_unconditional": self.num_unconditional,
            "num_indirect": self.num_indirect,
            "num_calls": self.num_calls,
            "num_returns": self.num_returns,
            "num_static_branches": self.num_static_branches,
            "taken_fraction": self.taken_fraction,
            "branch_density": self.branch_density,
            "max_gap": self.max_gap,
            "mean_gap": self.mean_gap,
            "gap_fits_12_bits": self.gap_fits_12_bits,
        }

    def summary(self) -> str:
        """Multi-line human-readable report."""
        return "\n".join([
            f"instructions        : {self.num_instructions}",
            f"branches            : {self.num_branches} "
            f"({self.branch_density:.1%} of instructions)",
            f"  conditional       : {self.num_conditional}",
            f"  unconditional     : {self.num_unconditional}",
            f"  indirect          : {self.num_indirect}",
            f"  calls / returns   : {self.num_calls} / {self.num_returns}",
            f"static branch sites : {self.num_static_branches}",
            f"taken fraction      : {self.taken_fraction:.1%}",
            f"max / mean gap      : {self.max_gap} / {self.mean_gap:.2f}"
            f" (12-bit safe: {self.gap_fits_12_bits})",
        ])


def analyze_trace(trace: TraceData) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for an in-memory trace."""
    n = len(trace)
    if n == 0:
        return TraceStatistics(
            num_instructions=trace.num_instructions, num_branches=0,
            num_conditional=0, num_unconditional=0, num_indirect=0,
            num_calls=0, num_returns=0, num_static_branches=0,
            taken_fraction=0.0, branch_density=0.0, max_gap=0,
            mean_gap=0.0, gap_fits_12_bits=True,
        )
    opcodes = trace.opcodes
    conditional = (opcodes & 1).astype(bool)
    indirect = (opcodes & 2).astype(bool)
    branch_type = opcodes >> 2
    gaps = trace.gaps.astype(np.int64)
    return TraceStatistics(
        num_instructions=trace.num_instructions,
        num_branches=n,
        num_conditional=int(conditional.sum()),
        num_unconditional=int((~conditional).sum()),
        num_indirect=int(indirect.sum()),
        num_calls=int((branch_type == 0b10).sum()),
        num_returns=int((branch_type == 0b01).sum()),
        num_static_branches=int(len(np.unique(trace.ips))),
        taken_fraction=float(trace.taken.mean()),
        branch_density=(n / trace.num_instructions
                        if trace.num_instructions else 0.0),
        max_gap=int(gaps.max()),
        mean_gap=float(gaps.mean()),
        gap_fits_12_bits=bool(gaps.max() <= 4095),
    )
