"""Interval telemetry: per-N-instruction MPKI/accuracy timeseries.

The standard simulator's output (paper Section IV-E) is an end-of-run
total, which hides everything that happens *during* a run — warm-up
transients, phase changes, the very effects ``warmup_instructions``
exists to exclude.  An :class:`IntervalRecorder` attached to
:func:`repro.core.simulator.simulate` emits one :class:`IntervalRecord`
every ``interval`` instructions, turning a simulation into a timeseries
of window and cumulative misprediction rates.

Accounting matches the simulator's counting rules exactly: conditional
branches and mispredictions inside the warm-up window are not counted,
and the window deltas of a finished series sum to the final
:class:`~repro.core.output.SimulationResult` totals (a tested
invariant — see :meth:`IntervalSeries.consistent_with`).

>>> recorder = IntervalRecorder(interval=100)
>>> recorder.start(warmup=0)
>>> recorder.record(100, 10, 3)
>>> recorder.record(200, 25, 4)
>>> series = recorder.finish(250, 30, 5)
>>> [r.window_mispredictions for r in series.records]
[3, 1, 1]
>>> series.total_mispredictions
5
>>> series.records[-1].cumulative_mispredictions
5
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import TelemetryError
from ..core.metrics import accuracy, mpki

__all__ = ["IntervalRecord", "IntervalRecorder", "IntervalSeries"]

#: Version of the interval-series JSON layout.
INTERVAL_SCHEMA = 1

__all__.append("INTERVAL_SCHEMA")

#: Column order of :meth:`IntervalSeries.to_csv` (and the CSV sink).
CSV_COLUMNS = (
    "index", "instructions", "window_instructions",
    "window_conditional_branches", "window_mispredictions",
    "cumulative_conditional_branches", "cumulative_mispredictions",
    "window_mpki", "window_accuracy", "cumulative_mpki",
)

__all__.append("CSV_COLUMNS")


@dataclass(frozen=True, slots=True)
class IntervalRecord:
    """One window of a simulation's telemetry timeseries.

    ``window_*`` fields are deltas over this window; ``cumulative_*``
    fields count from the end of warm-up to the end of this window.
    ``instructions`` is the cumulative instruction count (including
    warm-up) at the point the record was emitted; it may exceed the
    nominal window boundary by the gap of the branch that crossed it.
    """

    index: int
    instructions: int
    measured_instructions: int
    window_instructions: int
    window_conditional_branches: int
    window_mispredictions: int
    cumulative_conditional_branches: int
    cumulative_mispredictions: int

    @property
    def window_mpki(self) -> float:
        """Mispredictions per kilo-instruction within this window."""
        return mpki(self.window_mispredictions, self.window_instructions)

    @property
    def window_accuracy(self) -> float:
        """Prediction accuracy over this window's conditional branches."""
        return accuracy(self.window_mispredictions,
                        self.window_conditional_branches)

    @property
    def cumulative_mpki(self) -> float:
        """MPKI over the measured region up to the end of this window."""
        return mpki(self.cumulative_mispredictions,
                    self.measured_instructions)

    @property
    def cumulative_accuracy(self) -> float:
        """Accuracy over the measured region up to this window's end."""
        return accuracy(self.cumulative_mispredictions,
                        self.cumulative_conditional_branches)

    def to_json(self) -> dict[str, Any]:
        """Plain-dict form, including the derived rates."""
        return {
            "index": self.index,
            "instructions": self.instructions,
            "measured_instructions": self.measured_instructions,
            "window_instructions": self.window_instructions,
            "window_conditional_branches": self.window_conditional_branches,
            "window_mispredictions": self.window_mispredictions,
            "cumulative_conditional_branches":
                self.cumulative_conditional_branches,
            "cumulative_mispredictions": self.cumulative_mispredictions,
            "window_mpki": self.window_mpki,
            "window_accuracy": self.window_accuracy,
            "cumulative_mpki": self.cumulative_mpki,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "IntervalRecord":
        """Rebuild a record from :meth:`to_json` output (rates rederived)."""
        return cls(
            index=int(data["index"]),
            instructions=int(data["instructions"]),
            measured_instructions=int(data["measured_instructions"]),
            window_instructions=int(data["window_instructions"]),
            window_conditional_branches=int(
                data["window_conditional_branches"]),
            window_mispredictions=int(data["window_mispredictions"]),
            cumulative_conditional_branches=int(
                data["cumulative_conditional_branches"]),
            cumulative_mispredictions=int(data["cumulative_mispredictions"]),
        )


@dataclass(slots=True)
class IntervalSeries:
    """A finished interval timeseries plus its sampling parameters."""

    interval: int
    warmup_instructions: int
    records: list[IntervalRecord] = field(default_factory=list)

    @property
    def total_mispredictions(self) -> int:
        """Sum of every window's misprediction delta."""
        return sum(r.window_mispredictions for r in self.records)

    @property
    def total_conditional_branches(self) -> int:
        """Sum of every window's conditional-branch delta."""
        return sum(r.window_conditional_branches for r in self.records)

    @property
    def total_instructions(self) -> int:
        """Cumulative instructions at the end of the series (with warmup)."""
        return self.records[-1].instructions if self.records else 0

    def consistent_with(self, result: Any) -> bool:
        """True when the series sums to ``result``'s final totals.

        ``result`` is a :class:`~repro.core.output.SimulationResult`;
        checked both as window-delta sums and as the last record's
        cumulative counters (the two must agree by construction).
        """
        if not self.records:
            return (result.mispredictions == 0
                    and result.num_conditional_branches == 0)
        last = self.records[-1]
        return (
            self.total_mispredictions == result.mispredictions
            and self.total_conditional_branches
                == result.num_conditional_branches
            and last.cumulative_mispredictions == result.mispredictions
            and last.cumulative_conditional_branches
                == result.num_conditional_branches
            and last.measured_instructions == result.simulation_instructions
        )

    def to_json(self) -> dict[str, Any]:
        """The interval-series JSON document (see ``docs/telemetry.md``)."""
        return {
            "schema": INTERVAL_SCHEMA,
            "interval": self.interval,
            "warmup_instructions": self.warmup_instructions,
            "num_records": len(self.records),
            "records": [r.to_json() for r in self.records],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "IntervalSeries":
        """Inverse of :meth:`to_json`; raises ``TelemetryError`` on junk."""
        try:
            if data["schema"] != INTERVAL_SCHEMA:
                raise TelemetryError(
                    f"unsupported interval schema {data['schema']!r}")
            return cls(
                interval=int(data["interval"]),
                warmup_instructions=int(data["warmup_instructions"]),
                records=[IntervalRecord.from_json(r)
                         for r in data["records"]],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(
                f"malformed interval series: {exc!r}") from exc

    def to_csv(self) -> str:
        """CSV rendering, one line per record, header first."""
        out = io.StringIO()
        out.write(",".join(CSV_COLUMNS) + "\n")
        for record in self.records:
            row = record.to_json()
            out.write(",".join(
                repr(row[c]) if isinstance(row[c], float) else str(row[c])
                for c in CSV_COLUMNS) + "\n")
        return out.getvalue()

    def to_json_string(self, *, indent: int | None = 2) -> str:
        """:meth:`to_json` serialized to text."""
        return json.dumps(self.to_json(), indent=indent)


class IntervalRecorder:
    """Collects :class:`IntervalRecord` objects during one simulation.

    The simulator owns the sampling decision (it compares its running
    instruction counter against window marks); the recorder turns each
    sample of cumulative counters into window deltas, forwards records
    to an optional streaming :class:`~repro.telemetry.sinks.TelemetrySink`,
    and assembles the final :class:`IntervalSeries`.

    A recorder is reusable: :meth:`start` (called by the simulator)
    resets all state, and the last finished series stays available as
    :attr:`series`.
    """

    def __init__(self, interval: int, *, sink: Any = None):
        if interval < 1:
            raise TelemetryError(
                f"interval must be a positive instruction count, "
                f"got {interval}")
        self.interval = int(interval)
        self.sink = sink
        #: The most recently finished series (``None`` until finish()).
        self.series: IntervalSeries | None = None
        self._records: list[IntervalRecord] = []
        self._warmup = 0
        self._prev_instructions = 0
        self._prev_conditional = 0
        self._prev_mispredictions = 0

    def start(self, warmup: int = 0) -> None:
        """Reset for a new run; ``warmup`` mirrors the simulator config."""
        self._records = []
        self._warmup = warmup
        self._prev_instructions = 0
        self._prev_conditional = 0
        self._prev_mispredictions = 0

    def record(self, instructions: int, conditional_branches: int,
               mispredictions: int) -> None:
        """Sample the simulator's cumulative counters at a window mark.

        ``conditional_branches`` and ``mispredictions`` are *measured*
        (post-warm-up) cumulative counts, exactly the counters the
        simulator reports at the end of the run.
        """
        record = IntervalRecord(
            index=len(self._records) + 1,
            instructions=instructions,
            measured_instructions=max(0, instructions - self._warmup),
            window_instructions=instructions - self._prev_instructions,
            window_conditional_branches=(
                conditional_branches - self._prev_conditional),
            window_mispredictions=(
                mispredictions - self._prev_mispredictions),
            cumulative_conditional_branches=conditional_branches,
            cumulative_mispredictions=mispredictions,
        )
        self._records.append(record)
        self._prev_instructions = instructions
        self._prev_conditional = conditional_branches
        self._prev_mispredictions = mispredictions
        if self.sink is not None:
            self.sink.emit(record)

    def finish(self, instructions: int, conditional_branches: int,
               mispredictions: int) -> IntervalSeries:
        """Emit the final partial window (if any) and build the series."""
        if instructions > self._prev_instructions or not self._records:
            self.record(instructions, conditional_branches,
                        mispredictions)
        self.series = IntervalSeries(
            interval=self.interval,
            warmup_instructions=self._warmup,
            records=list(self._records),
        )
        if self.sink is not None:
            self.sink.finalize(self.series)
        return self.series
