"""Telemetry sinks: where interval records and telemetry documents go.

A :class:`TelemetrySink` receives :class:`~repro.telemetry.interval.
IntervalRecord` objects as the simulator emits them and the finished
:class:`~repro.telemetry.interval.IntervalSeries` at the end of the run.
The library ships three:

* :class:`MemorySink` — collects records in a list (tests, notebooks);
* :class:`JsonFileSink` — writes the series JSON document on finalize;
* :class:`CsvFileSink` — writes the series as CSV on finalize.

On top of per-record sinks, :func:`write_telemetry` /
:func:`read_telemetry` handle the *combined* telemetry document the CLI
produces (``mbp simulate --telemetry out.json``) and consumes
(``mbp report``): one JSON object bundling the run manifest, phase
timings, counters and the interval series.

>>> sink = MemorySink()
>>> from .interval import IntervalRecorder
>>> recorder = IntervalRecorder(interval=50, sink=sink)
>>> recorder.start()
>>> recorder.record(50, 5, 1)
>>> series = recorder.finish(80, 9, 2)
>>> len(sink.records), sink.series is series
(2, True)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..core.errors import TelemetryError
from .interval import IntervalRecord, IntervalSeries

__all__ = [
    "TELEMETRY_KIND",
    "TELEMETRY_SCHEMA",
    "TelemetrySink",
    "MemorySink",
    "JsonFileSink",
    "CsvFileSink",
    "write_telemetry",
    "read_telemetry",
]

#: Version of the combined telemetry document layout.
TELEMETRY_SCHEMA = 1

#: ``kind`` tag of the combined telemetry document.
TELEMETRY_KIND = "repro-telemetry"


class TelemetrySink:
    """Base class of interval-record consumers (both hooks optional)."""

    def emit(self, record: IntervalRecord) -> None:
        """Receive one record as soon as the simulator produces it."""

    def finalize(self, series: IntervalSeries) -> None:
        """Receive the complete series when the run finishes."""


class MemorySink(TelemetrySink):
    """Collects records (and the final series) in memory."""

    def __init__(self) -> None:
        self.records: list[IntervalRecord] = []
        self.series: IntervalSeries | None = None

    def emit(self, record: IntervalRecord) -> None:
        self.records.append(record)

    def finalize(self, series: IntervalSeries) -> None:
        self.series = series


class JsonFileSink(TelemetrySink):
    """Writes the finished series as a JSON document to ``path``."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def finalize(self, series: IntervalSeries) -> None:
        self.path.write_text(series.to_json_string() + "\n")


class CsvFileSink(TelemetrySink):
    """Writes the finished series as CSV to ``path``."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def finalize(self, series: IntervalSeries) -> None:
        self.path.write_text(series.to_csv())


def write_telemetry(path: str | Path, *,
                    manifest: Any = None,
                    phases: dict[str, float] | None = None,
                    counters: dict[str, int] | None = None,
                    intervals: IntervalSeries | None = None,
                    probe: dict[str, Any] | None = None) -> Path:
    """Write the combined telemetry document the CLI emits.

    ``manifest`` may be a :class:`~repro.telemetry.manifest.RunManifest`
    or an already-serialized dict.  A ``.csv`` path writes the interval
    series as CSV instead (the other sections have no CSV form).

    ``probe`` attaches a :mod:`repro.probe` report; the key is present
    only when one is given, so probe-less documents are byte-identical
    to those written before the section existed.
    """
    path = Path(path)
    if path.suffix.lower() == ".csv":
        if intervals is None:
            raise TelemetryError(
                "CSV telemetry output requires an interval series")
        path.write_text(intervals.to_csv())
        return path
    document = {
        "schema": TELEMETRY_SCHEMA,
        "kind": TELEMETRY_KIND,
        "manifest": (manifest.to_json() if hasattr(manifest, "to_json")
                     else manifest),
        "phases": None if phases is None else dict(phases),
        "counters": None if counters is None else dict(counters),
        "intervals": None if intervals is None else intervals.to_json(),
    }
    if probe is not None:
        document["probe"] = dict(probe)
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def read_telemetry(path: str | Path) -> dict[str, Any]:
    """Load a telemetry document (or a bare manifest) for ``mbp report``.

    Returns the combined-document shape regardless of input: a bare run
    manifest is wrapped as ``{"manifest": ..., "intervals": None, ...}``
    and a bare interval series as ``{"intervals": ..., ...}``, so the
    report renderer handles every artifact the library writes.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise TelemetryError(f"cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise TelemetryError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise TelemetryError(f"{path} is not a JSON object")
    kind = data.get("kind")
    if kind == TELEMETRY_KIND:
        if data.get("schema") != TELEMETRY_SCHEMA:
            raise TelemetryError(
                f"unsupported telemetry schema {data.get('schema')!r}")
        return data
    if kind in ("repro-run-manifest", "repro-suite-manifest"):
        return {"schema": TELEMETRY_SCHEMA, "kind": TELEMETRY_KIND,
                "manifest": data, "phases": None, "counters": None,
                "intervals": None}
    if "records" in data and "interval" in data:
        return {"schema": TELEMETRY_SCHEMA, "kind": TELEMETRY_KIND,
                "manifest": None, "phases": None, "counters": None,
                "intervals": data}
    raise TelemetryError(
        f"{path} is not a telemetry document, manifest or interval series")
