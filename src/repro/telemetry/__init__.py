"""repro.telemetry — the simulation observability layer.

The paper's claims are all *measurements*: Table III times whole
simulations, Section VII-C asserts result equivalence across simulators.
This package is the instrumentation those measurements rest on — built
zero-overhead-when-disabled so that attaching it never changes what is
being measured:

* :mod:`~repro.telemetry.instrumentation` — phase timers and event
  counters behind an :class:`Instrumentation` protocol whose default is
  a shared null object (hot loops carry no per-branch hooks);
* :mod:`~repro.telemetry.interval` — per-N-instruction MPKI/accuracy
  timeseries whose window deltas provably sum to the final
  :class:`~repro.core.output.SimulationResult` totals;
* :mod:`~repro.telemetry.manifest` — run manifests recording trace
  digest, predictor ``spec()``, config, versions, timings and cache
  provenance for every benchmark number;
* :mod:`~repro.telemetry.sinks` — JSON/CSV/memory destinations for
  interval records and the combined telemetry document used by
  ``mbp simulate --telemetry`` and ``mbp report``.

See ``docs/telemetry.md`` for the document schemas and overhead notes.
"""

from .instrumentation import NULL_INSTRUMENTATION, Instrumentation, PhaseTimers
from .interval import (
    CSV_COLUMNS,
    INTERVAL_SCHEMA,
    IntervalRecord,
    IntervalRecorder,
    IntervalSeries,
)
from .manifest import (
    MANIFEST_KIND,
    MANIFEST_SCHEMA,
    RunManifest,
    build_manifest,
    collect_environment,
    suite_manifest,
)
from .sinks import (
    TELEMETRY_KIND,
    TELEMETRY_SCHEMA,
    CsvFileSink,
    JsonFileSink,
    MemorySink,
    TelemetrySink,
    read_telemetry,
    write_telemetry,
)

__all__ = [
    "Instrumentation", "NULL_INSTRUMENTATION", "PhaseTimers",
    "IntervalRecord", "IntervalRecorder", "IntervalSeries",
    "INTERVAL_SCHEMA", "CSV_COLUMNS",
    "RunManifest", "build_manifest", "suite_manifest",
    "collect_environment", "MANIFEST_SCHEMA", "MANIFEST_KIND",
    "TelemetrySink", "MemorySink", "JsonFileSink", "CsvFileSink",
    "write_telemetry", "read_telemetry",
    "TELEMETRY_SCHEMA", "TELEMETRY_KIND",
]
