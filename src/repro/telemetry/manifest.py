"""Run manifests: a provenance record for every benchmark number.

The paper's evaluation (Tables I–IV, Section VII-C) hinges on knowing
*exactly* what produced each number: which trace bytes, which predictor
configuration, which simulator version, in how much time.  A
:class:`RunManifest` captures that for one simulation — trace name and
content digest, the predictor's canonical ``spec()``, every
``SimulationConfig`` field, simulator identity and library version,
metrics, phase timings, and whether the result came from the
:mod:`repro.cache` — as a JSON document that round-trips exactly.

Manifests are deliberately separate from the Listing-1 result JSON:
the result schema reproduces the paper and feeds the content-addressed
cache, while the manifest wraps it with reproduction provenance.

>>> from repro.core.output import SimulationResult
>>> result = SimulationResult(
...     trace_name="t", warmup_instructions=0,
...     simulation_instructions=1000, exhausted_trace=True,
...     num_branch_instructions=100, num_conditional_branches=80,
...     mispredictions=8, simulation_time=0.5,
...     predictor_metadata={"name": "GShare"})
>>> manifest = build_manifest(result, created="2026-01-01T00:00:00+00:00",
...                           environment={})
>>> RunManifest.from_json(manifest.to_json()) == manifest
True
>>> manifest.metrics["mispredictions"]
8
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from ..core.errors import TelemetryError
from ..core.output import SimulationResult
from ..core.predictor import Predictor, canonical_spec
from ..core.simulator import SimulationConfig

__all__ = [
    "MANIFEST_SCHEMA",
    "RunManifest",
    "build_manifest",
    "suite_manifest",
]

#: Version of the manifest JSON layout.
MANIFEST_SCHEMA = 1

#: ``kind`` tag distinguishing manifests from other JSON artifacts.
MANIFEST_KIND = "repro-run-manifest"

__all__.append("MANIFEST_KIND")


def collect_environment() -> dict[str, Any]:
    """The environment fields stamped into manifests by default."""
    env: dict[str, Any] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
    }
    try:
        import numpy
        env["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    return env


__all__.append("collect_environment")


@dataclass(slots=True)
class RunManifest:
    """Provenance record of one simulation (see module docstring).

    ``trace_digest``, ``config`` and ``phases`` are optional — a
    manifest built from a bare :class:`SimulationResult` records what it
    can and leaves the rest ``None`` rather than guessing.
    """

    trace_name: str
    trace_digest: str | None
    predictor: dict[str, Any]
    config: dict[str, Any] | None
    simulator: dict[str, str]
    library_version: str
    metrics: dict[str, Any]
    timing: dict[str, Any]
    cache: dict[str, Any]
    environment: dict[str, Any] = field(default_factory=dict)
    created: str | None = None
    probe: dict[str, Any] | None = None

    def to_json(self) -> dict[str, Any]:
        """The manifest JSON document (schema in ``docs/telemetry.md``).

        The ``probe`` key is present only when a probe report was
        attached — probe-less manifests serialize exactly as before the
        key existed.
        """
        document = {
            "schema": MANIFEST_SCHEMA,
            "kind": MANIFEST_KIND,
            "created": self.created,
            "trace": {"name": self.trace_name, "digest": self.trace_digest},
            "predictor": self.predictor,
            "config": self.config,
            "simulator": self.simulator,
            "library_version": self.library_version,
            "metrics": self.metrics,
            "timing": self.timing,
            "cache": self.cache,
            "environment": self.environment,
        }
        if self.probe is not None:
            document["probe"] = self.probe
        return document

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "RunManifest":
        """Inverse of :meth:`to_json`; raises ``TelemetryError`` on junk."""
        try:
            if data.get("kind") != MANIFEST_KIND:
                raise TelemetryError(
                    f"not a run manifest (kind={data.get('kind')!r})")
            if data["schema"] != MANIFEST_SCHEMA:
                raise TelemetryError(
                    f"unsupported manifest schema {data['schema']!r}")
            trace = data["trace"]
            return cls(
                trace_name=str(trace["name"]),
                trace_digest=(None if trace.get("digest") is None
                              else str(trace["digest"])),
                predictor=dict(data["predictor"]),
                config=(None if data.get("config") is None
                        else dict(data["config"])),
                simulator=dict(data["simulator"]),
                library_version=str(data["library_version"]),
                metrics=dict(data["metrics"]),
                timing=dict(data["timing"]),
                cache=dict(data["cache"]),
                environment=dict(data.get("environment") or {}),
                created=(None if data.get("created") is None
                         else str(data["created"])),
                probe=(None if data.get("probe") is None
                       else dict(data["probe"])),
            )
        except TelemetryError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(f"malformed manifest: {exc!r}") from exc

    def to_json_string(self, *, indent: int | None = 2) -> str:
        """:meth:`to_json` serialized to text."""
        return json.dumps(self.to_json(), indent=indent)

    def write(self, path: str | Path) -> Path:
        """Write the manifest JSON to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.to_json_string() + "\n")
        return path


def _default_created() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _predictor_spec(result: SimulationResult,
                    predictor: Predictor | dict[str, Any] | None
                    ) -> dict[str, Any]:
    """Best canonical identity available for the manifest."""
    if isinstance(predictor, Predictor):
        return predictor.spec()
    if predictor is not None:
        return canonical_spec(predictor)
    try:
        return canonical_spec(result.predictor_metadata)
    except TypeError:
        # Metadata with no canonical form (adaptive state, exotic types):
        # record at least the name rather than failing the manifest.
        return {"name": str(result.predictor_metadata.get("name", "?"))}


def build_manifest(result: SimulationResult, *,
                   trace: Any = None,
                   predictor: Predictor | dict[str, Any] | None = None,
                   config: SimulationConfig | None = None,
                   phases: dict[str, float] | None = None,
                   counters: dict[str, int] | None = None,
                   cache_used: bool = False,
                   environment: dict[str, Any] | None = None,
                   created: str | None = None,
                   probe: dict[str, Any] | None = None) -> RunManifest:
    """Assemble the provenance manifest for one simulation result.

    Parameters
    ----------
    result:
        The finished :class:`SimulationResult`.
    trace:
        The simulated trace (``TraceData`` or path) — when given, its
        content digest (:func:`repro.sbbt.digest.trace_digest`) is
        recorded so the manifest pins *which bytes* were simulated.
    predictor:
        The predictor instance or its ``spec()`` dict; defaults to a
        canonicalization of the result's metadata.
    config:
        The :class:`SimulationConfig` of the run (recorded field by
        field; ``None`` records ``null``).
    phases, counters:
        Phase timings / event counts from a
        :class:`~repro.telemetry.instrumentation.PhaseTimers`; phases
        default to the timings attached to ``result`` (if any).
    cache_used:
        Whether a :mod:`repro.cache` was consulted for this run;
        combined with ``result.from_cache`` into the ``cache`` section.
    environment:
        Override for the environment section (pass ``{}`` for a
        machine-independent manifest); defaults to
        :func:`collect_environment`.
    created:
        ISO-8601 creation timestamp; defaults to now (UTC).  This is
        provenance metadata, not a duration — durations in ``timing``
        all come from monotonic ``time.perf_counter`` measurements.
    probe:
        A :mod:`repro.probe` report dict; defaults to the report
        attached to ``result`` (if the run carried a
        :class:`~repro.probe.PredictionProbe`).  ``None`` (the usual
        case) omits the section entirely.
    """
    from .. import __version__

    digest: str | None = None
    if trace is not None:
        from ..sbbt.digest import trace_digest
        digest = trace_digest(trace)

    if phases is None:
        phases = getattr(result, "phases", None)
    if probe is None:
        probe = getattr(result, "probe_report", None)

    timing: dict[str, Any] = {"simulation_time": result.simulation_time}
    if phases is not None:
        timing["phases"] = dict(phases)
    if counters is not None:
        timing["counters"] = dict(counters)

    return RunManifest(
        trace_name=result.trace_name,
        trace_digest=digest,
        predictor=_predictor_spec(result, predictor),
        config=None if config is None else canonical_spec(asdict(config)),
        simulator={"name": result.simulator_name,
                   "version": _simulator_version()},
        library_version=__version__,
        metrics={
            "mpki": result.mpki,
            "accuracy": result.accuracy,
            "mispredictions": result.mispredictions,
            "num_conditional_branches": result.num_conditional_branches,
            "num_branch_instructions": result.num_branch_instructions,
            "simulation_instructions": result.simulation_instructions,
            "warmup_instructions": result.warmup_instructions,
            "exhausted_trace": result.exhausted_trace,
        },
        timing=timing,
        cache={"used": cache_used, "hit": result.from_cache},
        environment=(collect_environment() if environment is None
                     else dict(environment)),
        created=_default_created() if created is None else created,
        probe=probe,
    )


def _simulator_version() -> str:
    from ..core.output import SIMULATOR_VERSION
    return SIMULATOR_VERSION


def suite_manifest(batch: Any, *,
                   environment: dict[str, Any] | None = None,
                   created: str | None = None,
                   **kwargs: Any) -> dict[str, Any]:
    """Manifest document for a whole suite run (``run_suite`` output).

    ``batch`` is a :class:`~repro.core.batch.BatchResult`; per-trace
    manifests are built with :func:`build_manifest` (forwarding
    ``kwargs`` such as ``predictor=`` and ``config=``) and wrapped with
    the suite-level aggregates the paper reports in Table III —
    slowest / average / fastest simulation time — plus cache and
    failure accounting.
    """
    env = collect_environment() if environment is None else dict(environment)
    stamp = _default_created() if created is None else created
    runs = [
        build_manifest(result, environment={}, created=stamp, **kwargs)
        for result in batch.results
    ]
    document: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "kind": "repro-suite-manifest",
        "created": stamp,
        "environment": env,
        "num_traces": len(batch.results) + len(batch.failures),
        "cache_hits": batch.cache_hits,
        "failures": [
            {"trace": f.trace_name, "error": f.error}
            for f in batch.failures
        ],
        "runs": [m.to_json() for m in runs],
    }
    if batch.results:
        timing = batch.timing
        document["aggregate"] = {
            "mean_mpki": batch.mean_mpki(),
            "aggregate_mpki": batch.aggregate_mpki(),
            "total_mispredictions": batch.total_mispredictions,
            "total_instructions": batch.total_instructions,
            "timing": {
                "slowest": timing.slowest,
                "average": timing.average,
                "fastest": timing.fastest,
                "total": timing.total,
            },
        }
    return document
