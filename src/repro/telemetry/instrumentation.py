"""Phase timers and event counters (the observability substrate).

The paper's speed claims (Table III) are wall-clock measurements of
whole simulations; to *explain* those numbers — how much time goes to
trace decoding versus the predict/train/track loop versus result
finalization — the simulators accept an :class:`Instrumentation` object
and bracket their internal phases with it.

The design rule is **zero overhead when disabled**: the default
instrumentation is a shared null object whose hooks are no-ops and whose
``phase`` context manager is a reusable singleton, and no per-branch
hook exists at all — phases are per-run brackets, so the hot loop of
:func:`repro.core.simulator.simulate` is byte-for-byte the same whether
instrumentation is attached or not.  All timings use
``time.perf_counter`` (monotonic); wall-clock ``time.time`` is never
used for durations anywhere in the library.

>>> timers = PhaseTimers()
>>> timers.add_phase("trace_read", 0.25)
>>> timers.add_phase("trace_read", 0.25)
>>> timers.count("cache_hit")
>>> timers.phases["trace_read"]
0.5
>>> timers.counters["cache_hit"]
1
>>> NULL_INSTRUMENTATION.enabled
False
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

__all__ = ["Instrumentation", "NULL_INSTRUMENTATION", "PhaseTimers"]


class _NullPhase:
    """A reusable no-op context manager (one shared instance, no allocs)."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_PHASE = _NullPhase()


class Instrumentation:
    """Base class *and* null implementation of the instrumentation hooks.

    Simulators call three hooks:

    ``phase(name)``
        A context manager bracketing one named phase of a run
        ("trace_read", "simulate_loop", "cache_lookup", ...).
    ``add_phase(name, seconds)``
        Record an externally measured duration against a phase.
    ``count(name, n=1)``
        Bump a named event counter ("cache_hit", "trace_failure", ...).

    This base class is the null object: every hook is a no-op and
    ``phase`` returns a shared singleton, so passing
    :data:`NULL_INSTRUMENTATION` (or leaving the default) costs a few
    attribute lookups per *run*, never per branch.
    """

    #: Whether this instrumentation records anything.  Simulators may
    #: consult it to skip work that only exists to feed the hooks.
    enabled: bool = False

    def phase(self, name: str) -> Any:
        """Context manager timing one named phase (no-op here)."""
        return _NULL_PHASE

    def add_phase(self, name: str, seconds: float) -> None:
        """Record ``seconds`` of externally measured ``name`` time."""

    def count(self, name: str, n: int = 1) -> None:
        """Increment the event counter ``name`` by ``n``."""


#: The shared do-nothing instrumentation every simulator defaults to.
NULL_INSTRUMENTATION = Instrumentation()


class _TimedPhase:
    """Context manager that accumulates its elapsed time into a timer."""

    __slots__ = ("_timers", "_name", "_start")

    def __init__(self, timers: "PhaseTimers", name: str):
        self._timers = timers
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_TimedPhase":
        self._start = self._timers._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = self._timers._clock() - self._start
        self._timers.add_phase(self._name, elapsed)
        return None


class PhaseTimers(Instrumentation):
    """Accumulating phase timers and event counters.

    Re-entrant across runs: timing the same phase twice accumulates, so
    one ``PhaseTimers`` attached to a whole suite reports suite totals.
    ``clock`` is injectable for deterministic tests and defaults to the
    monotonic ``time.perf_counter``.

    Thread-safe: the serve daemon's workers=0 thread backend (and the
    engine's future callbacks) bump one shared instance from several
    threads at once, and a read-modify-write on a plain dict drops
    updates under that race — so every accumulate and every snapshot
    holds an internal lock.

    >>> ticks = iter([0.0, 1.5])
    >>> timers = PhaseTimers(clock=lambda: next(ticks))
    >>> with timers.phase("simulate_loop"):
    ...     pass
    >>> timers.phases["simulate_loop"]
    1.5
    """

    enabled = True

    def __init__(self, *, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        #: Accumulated seconds per phase name.
        self.phases: dict[str, float] = {}
        #: Event counts per counter name.
        self.counters: dict[str, int] = {}

    def phase(self, name: str) -> _TimedPhase:
        """Context manager adding its elapsed time to phase ``name``."""
        return _TimedPhase(self, name)

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` against phase ``name``."""
        with self._lock:
            self.phases[name] = self.phases.get(name, 0.0) + seconds

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict copy of the current state (JSON-ready)."""
        with self._lock:
            return {"phases": dict(self.phases),
                    "counters": dict(self.counters)}

    def __repr__(self) -> str:
        return (f"PhaseTimers(phases={sorted(self.phases)}, "
                f"counters={sorted(self.counters)})")
