"""End-to-end span tracing with cross-process context propagation.

One :class:`TraceContext` minted at an entry point (a CLI subcommand,
a serve request) follows the work through every layer of the pipeline
— the :func:`~repro.core.plan.execute_plan` cache scan, the
:class:`~repro.core.engine.ExecutionEngine` chunk dispatch, and into
the worker processes, whose per-unit ``attach`` / ``simulate`` spans
ship back with their results.  Spans stream to a JSONL sink and export
to the Chrome trace-event format via ``mbp trace export | summary``.

Like :mod:`repro.telemetry` and :mod:`repro.probe`, tracing is
zero-overhead when disabled: the default :data:`NULL_TRACER` is a
shared null object and results are byte-identical with or without it
(guarded by ``benchmarks/test_tracing.py``).  See ``docs/tracing.md``.
"""

from .context import TraceContext, new_span_id, new_trace_id
from .export import (
    TRACE_DIR_ENV,
    chrome_trace_events,
    critical_path,
    critical_path_table,
    read_spans,
    resolve_trace_dir,
    summary,
    summary_table,
    trace_ids,
)
from .span import (
    NULL_TRACER,
    JsonlSpanSink,
    Span,
    SpanRecorder,
    Tracer,
    wire_child_span,
)

__all__ = [
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "SpanRecorder",
    "JsonlSpanSink",
    "wire_child_span",
    "TRACE_DIR_ENV",
    "resolve_trace_dir",
    "read_spans",
    "trace_ids",
    "chrome_trace_events",
    "summary",
    "summary_table",
    "critical_path",
    "critical_path_table",
]
