"""Span-log loading, Chrome trace-event export and summaries.

The ``mbp trace`` subcommand is a thin shell over this module:

* :func:`read_spans` loads one or more JSONL span logs (files or
  directories of ``*.jsonl``), optionally filtered to one trace id;
* :func:`chrome_trace_events` converts spans to the Chrome trace-event
  JSON format — load the file in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing`` and every process (CLI, serve daemon, each
  engine worker) renders as its own row;
* :func:`summary` / :func:`summary_table` aggregate per-span-name
  duration distributions (count, p50, p99, total);
* :func:`critical_path` walks a single trace root-down through its
  longest children — where the wall-clock actually went.

Trace-log directories resolve like cache directories do:
:func:`resolve_trace_dir` gives the ``--trace-dir`` flag precedence,
then the ``MBP_TRACE_DIR`` environment variable, then ``None``
(tracing off) — one rule for the CLI and the serve daemon.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Sequence

from .span import Span

__all__ = [
    "TRACE_DIR_ENV",
    "resolve_trace_dir",
    "read_spans",
    "trace_ids",
    "chrome_trace_events",
    "summary",
    "summary_table",
    "critical_path",
    "critical_path_table",
]

#: Environment variable naming the default span-log directory.
TRACE_DIR_ENV = "MBP_TRACE_DIR"


def resolve_trace_dir(explicit: str | os.PathLike | None = None, *,
                      environ: dict[str, str] | None = None) -> str | None:
    """The span-log directory every entry point agrees on.

    Precedence: an ``explicit`` value (a ``--trace-dir`` flag) wins,
    then the :data:`TRACE_DIR_ENV` environment variable, then ``None``
    (tracing disabled).  Empty strings mean "unset" at either level,
    mirroring :func:`repro.cache.resolve_cache_dir`.
    """
    if explicit is not None and str(explicit):
        return str(explicit)
    env = os.environ if environ is None else environ
    from_env = env.get(TRACE_DIR_ENV, "")
    return from_env or None


# ----------------------------------------------------------------------
# Loading.
# ----------------------------------------------------------------------


def read_spans(paths: Sequence[str | Path],
               trace_id: str | None = None) -> list[Span]:
    """Load spans from JSONL files and/or directories of ``*.jsonl``.

    Unparseable lines are skipped (a crashed writer may leave a torn
    final line; losing it must not hide the rest of the trace).  With
    ``trace_id``, only that trace's spans are returned.  Spans are
    ordered by wall-clock start.
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("*.jsonl")))
        else:
            files.append(path)
    spans: list[Span] = []
    for file in files:
        try:
            text = file.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
                span = Span.from_json(doc)
            except (ValueError, KeyError, TypeError):
                continue
            if trace_id is None or span.trace_id == trace_id:
                spans.append(span)
    spans.sort(key=lambda s: (s.start, s.span_id))
    return spans


def trace_ids(spans: Iterable[Span]) -> list[str]:
    """Distinct trace ids in first-appearance order."""
    seen: dict[str, None] = {}
    for span in spans:
        seen.setdefault(span.trace_id, None)
    return list(seen)


# ----------------------------------------------------------------------
# Chrome trace-event export.
# ----------------------------------------------------------------------


def chrome_trace_events(spans: Sequence[Span]) -> dict[str, Any]:
    """Spans as a Chrome trace-event document (Perfetto-loadable).

    Each span becomes one complete event (``"ph": "X"``) with
    microsecond ``ts`` / ``dur``; ``pid`` / ``tid`` place it on the row
    of the process/thread that ran it, so engine-worker spans land on
    their worker's own track.  Span identity and linkage travel in
    ``args`` (``span_id`` / ``parent_id`` / ``trace_id``) next to the
    span's attributes.
    """
    events: list[dict[str, Any]] = []
    pids: dict[int, None] = {}
    for span in spans:
        pids.setdefault(span.pid, None)
        args: dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "status": span.status,
        }
        args.update(span.attributes)
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": span.pid,
            "tid": span.tid,
            "cat": span.status,
            "args": args,
        })
    # Metadata events label each process row in the viewer.
    for pid in pids:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"mbp pid {pid}"},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Summaries.
# ----------------------------------------------------------------------


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def summary(spans: Sequence[Span]) -> list[dict[str, Any]]:
    """Per-span-name duration distribution, sorted by total time.

    One row per distinct span name: ``count``, ``p50`` / ``p99``
    (nearest-rank, seconds), ``total`` seconds and ``errors``.
    """
    by_name: dict[str, list[float]] = {}
    errors: dict[str, int] = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span.duration)
        if span.status != "ok":
            errors[span.name] = errors.get(span.name, 0) + 1
    rows = []
    for name, durations in by_name.items():
        durations.sort()
        rows.append({
            "name": name,
            "count": len(durations),
            "p50": _percentile(durations, 50.0),
            "p99": _percentile(durations, 99.0),
            "total": sum(durations),
            "errors": errors.get(name, 0),
        })
    rows.sort(key=lambda row: (-row["total"], row["name"]))
    return rows


def summary_table(spans: Sequence[Span], *, title: str = "Span summary",
                  ) -> str:
    """The :func:`summary` rows as a fixed-width text table."""
    from ..analysis.reporting import format_table

    rows = [
        [row["name"], str(row["count"]),
         f"{row['p50'] * 1e3:.3f}", f"{row['p99'] * 1e3:.3f}",
         f"{row['total'] * 1e3:.3f}", str(row["errors"])]
        for row in summary(spans)
    ]
    return format_table(
        headers=["span", "count", "p50 ms", "p99 ms", "total ms", "errors"],
        rows=rows, title=title)


def critical_path(spans: Sequence[Span],
                  trace_id: str | None = None) -> list[Span]:
    """Root-to-leaf walk through each level's longest child.

    Starting from the trace's root span (with several roots, the
    longest), repeatedly descend into the child with the largest
    duration — the chain that bounded the trace's wall clock.
    """
    pool = [s for s in spans
            if trace_id is None or s.trace_id == trace_id]
    if not pool:
        return []
    if trace_id is None:
        ids = trace_ids(pool)
        trace_id = ids[0]
        pool = [s for s in pool if s.trace_id == trace_id]
    by_id = {s.span_id: s for s in pool}
    children: dict[str | None, list[Span]] = {}
    for span in pool:
        children.setdefault(span.parent_id, []).append(span)
    roots = [s for s in pool
             if s.parent_id is None or s.parent_id not in by_id]
    if not roots:
        return []
    current = max(roots, key=lambda s: s.duration)
    path = [current]
    while True:
        kids = children.get(current.span_id)
        if not kids:
            return path
        current = max(kids, key=lambda s: s.duration)
        path.append(current)


def critical_path_table(spans: Sequence[Span],
                        trace_id: str | None = None) -> str:
    """The :func:`critical_path` chain as an indented text listing."""
    path = critical_path(spans, trace_id)
    if not path:
        return "(no spans)"
    lines = [f"critical path (trace {path[0].trace_id}):"]
    for depth, span in enumerate(path):
        marker = "errored, " if span.status != "ok" else ""
        lines.append(f"{'  ' * depth}- {span.name}  "
                     f"[{marker}{span.duration * 1e3:.3f} ms, "
                     f"pid {span.pid}]")
    return "\n".join(lines)
