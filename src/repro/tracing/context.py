"""Trace-context propagation: the identity that crosses every boundary.

A :class:`TraceContext` is the minimal record one operation needs to
attach itself to a distributed trace: the ``trace_id`` shared by every
span of one logical request, its own ``span_id``, and the ``parent_id``
linking it upward.  Contexts are immutable values — deriving a child
mints a fresh span id and never mutates the parent — and they serialize
to plain string dicts (:meth:`TraceContext.to_wire`), so the same
context travels unchanged through a JSON protocol frame, a pickled
chunk payload into a worker process, and back.

Ids are 16 lowercase hex characters from :func:`os.urandom` — no
coordination, no counters, collision-safe at any realistic span volume
— matching the W3C trace-context sizing (64-bit span ids).

>>> root = TraceContext.new_root(trace_id="deadbeefdeadbeef")
>>> child = root.child()
>>> child.trace_id == root.trace_id
True
>>> child.parent_id == root.span_id
True
>>> TraceContext.from_wire(child.to_wire()) == child
True
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

__all__ = ["TraceContext", "new_trace_id", "new_span_id"]

#: Hex characters in one id (64 bits of entropy).
_ID_CHARS = 16


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return os.urandom(_ID_CHARS // 2).hex()


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return os.urandom(_ID_CHARS // 2).hex()


@dataclass(frozen=True, slots=True)
class TraceContext:
    """Where one operation sits in a distributed trace.

    ``trace_id`` names the whole request, ``span_id`` names this
    operation, ``parent_id`` (``None`` for a root) links to the
    enclosing operation.  Frozen: derivation (:meth:`child`) always
    allocates, so contexts can be shared freely across threads and
    shipped to worker processes.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def new_root(cls, trace_id: str | None = None) -> "TraceContext":
        """A root context: no parent, a caller-chosen or fresh trace id.

        Entry points (CLI subcommands, each serve request) mint exactly
        one of these; everything beneath derives from it.
        """
        return cls(trace_id=trace_id or new_trace_id(),
                   span_id=new_span_id(), parent_id=None)

    def child(self) -> "TraceContext":
        """A context for an operation nested under this one."""
        return TraceContext(trace_id=self.trace_id, span_id=new_span_id(),
                            parent_id=self.span_id)

    def to_wire(self) -> dict[str, Any]:
        """A plain-dict form that survives JSON and pickle unchanged."""
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "TraceContext":
        """Rebuild a context shipped with :meth:`to_wire`."""
        return cls(trace_id=str(wire["trace_id"]),
                   span_id=str(wire["span_id"]),
                   parent_id=wire.get("parent_id"))
