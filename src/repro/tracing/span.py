"""Spans, the tracer null object, the recorder and the JSONL sink.

A :class:`Span` is one timed operation of a distributed trace — named,
positioned by a :class:`~repro.tracing.context.TraceContext`, stamped
with the process/thread that ran it, and carrying free-form attributes
(the place existing telemetry counters are re-emitted).  Spans follow
the library-wide observability contract established by
:mod:`repro.telemetry` and :mod:`repro.probe`:

* **zero overhead when disabled** — the default tracer is
  :data:`NULL_TRACER`, a shared null object whose ``span`` context
  manager is a reusable singleton and whose every other hook is a
  no-op, so untraced runs are byte-for-byte identical and pay a few
  attribute lookups per *run*, never per branch;
* **durations are monotonic** — ``time.perf_counter`` deltas; the
  wall-clock ``time.time`` start stamp exists only to place spans on a
  shared timeline across processes (Chrome trace export);
* **everything travels as plain dicts** — worker processes build span
  dicts with :func:`wire_child_span` and ship them back with their
  results; the parent folds them in with
  :meth:`SpanRecorder.record_wire`.

>>> recorder = SpanRecorder()
>>> with recorder.span("suite", trace_id="deadbeefdeadbeef") as root:
...     with recorder.span("cache_lookup", parent=root.context) as child:
...         child.set_attribute("cache_hit", 3)
>>> [s.name for s in recorder.spans]
['cache_lookup', 'suite']
>>> recorder.spans[0].parent_id == recorder.spans[1].span_id
True
>>> NULL_TRACER.enabled
False
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .context import TraceContext

__all__ = ["Span", "Tracer", "NULL_TRACER", "SpanRecorder",
           "JsonlSpanSink", "wire_child_span"]

#: The two span statuses.  ``error`` marks failed units (a poisoned
#: chunk unit, a TraceFailure) without aborting the surrounding trace.
STATUSES = ("ok", "error")


@dataclass(slots=True)
class Span:
    """One finished, timed operation of a trace.

    ``start`` is wall-clock epoch seconds (cross-process timeline
    placement); ``duration`` is a monotonic-clock delta in seconds.
    ``pid`` / ``tid`` identify where the operation ran — the Chrome
    trace export uses them as rows, so worker-side spans land on their
    worker's own track.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    duration: float
    pid: int
    tid: int
    status: str = "ok"
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        """Plain-dict form (one JSONL line, one ``record_wire`` entry)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_json` output (tolerant of
        missing optional fields, so hand-written fixtures stay short)."""
        return cls(
            name=str(doc["name"]),
            trace_id=str(doc["trace_id"]),
            span_id=str(doc["span_id"]),
            parent_id=doc.get("parent_id"),
            start=float(doc.get("start", 0.0)),
            duration=float(doc.get("duration", 0.0)),
            pid=int(doc.get("pid", 0)),
            tid=int(doc.get("tid", 0)),
            status=str(doc.get("status", "ok")),
            attributes=dict(doc.get("attributes") or {}),
        )

    @property
    def context(self) -> TraceContext:
        """This span's position as a :class:`TraceContext`."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id,
                            parent_id=self.parent_id)


def wire_child_span(wire: dict[str, Any], name: str, start: float,
                    duration: float, *, status: str = "ok",
                    attributes: dict[str, Any] | None = None,
                    ) -> dict[str, Any]:
    """A span dict for worker-side code holding only a wire context.

    Workers receive the parent context as the plain dict a
    :meth:`~repro.tracing.context.TraceContext.to_wire` produced (it
    rides the pickled chunk payload), emit their spans with this
    helper, and ship the dicts back with their results — no tracer
    object ever crosses the process boundary.
    """
    from .context import new_span_id

    return Span(
        name=name,
        trace_id=str(wire["trace_id"]),
        span_id=new_span_id(),
        parent_id=str(wire["span_id"]),
        start=start,
        duration=duration,
        pid=os.getpid(),
        tid=threading.get_ident() & 0xFFFFFFFF,
        status=status,
        attributes=dict(attributes or {}),
    ).to_json()


# ----------------------------------------------------------------------
# The null tracer (the default everywhere).
# ----------------------------------------------------------------------


class _NullSpanHandle:
    """Reusable no-op span handle (one shared instance, no allocations).

    Its ``context`` is ``None`` — callers forward that as the parent of
    nested operations, and every tracer hook accepts ``None`` parents,
    so disabled tracing threads through the whole pipeline without a
    single conditional at the call sites.
    """

    __slots__ = ()

    context: TraceContext | None = None

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set_attribute(self, name: str, value: Any) -> None:
        """No-op."""

    def set_status(self, status: str) -> None:
        """No-op."""


_NULL_SPAN = _NullSpanHandle()


class Tracer:
    """Base class *and* null implementation of the tracing hooks.

    Mirrors :class:`repro.telemetry.Instrumentation`: this base is the
    shared do-nothing object (:data:`NULL_TRACER`), and
    :class:`SpanRecorder` is the recording subclass.  Hooks:

    ``span(name, ...)``
        Context manager bracketing one operation; yields a handle with
        ``.context`` (the minted :class:`TraceContext`, ``None`` when
        disabled), ``.set_attribute`` and ``.set_status``.
    ``child(parent)``
        Mint a context for a manually timed operation.
    ``add_span(name, seconds, ...)``
        Record an externally measured span.
    ``record_wire(spans)``
        Fold in span dicts shipped back from a worker process.
    """

    #: Whether this tracer records anything.  Hot paths consult it to
    #: skip work that exists only to feed spans (context minting for
    #: chunk payloads, attribute snapshots).
    enabled: bool = False

    def span(self, name: str, *, parent: TraceContext | None = None,
             trace_id: str | None = None,
             context: TraceContext | None = None,
             attributes: dict[str, Any] | None = None) -> Any:
        """Context manager for one operation (no-op here)."""
        return _NULL_SPAN

    def child(self, parent: TraceContext | None = None,
              ) -> TraceContext | None:
        """A context for a manually timed child operation (``None`` here)."""
        return None

    def add_span(self, name: str, seconds: float, *,
                 context: TraceContext | None = None,
                 parent: TraceContext | None = None,
                 trace_id: str | None = None,
                 start: float | None = None,
                 status: str = "ok",
                 attributes: dict[str, Any] | None = None) -> None:
        """Record an externally measured span (no-op here)."""

    def record_wire(self, spans: list[dict[str, Any]] | None) -> None:
        """Fold in worker-emitted span dicts (no-op here)."""


#: The shared do-nothing tracer every pipeline stage defaults to.
NULL_TRACER = Tracer()


# ----------------------------------------------------------------------
# The recording tracer.
# ----------------------------------------------------------------------


class JsonlSpanSink:
    """Append-only JSONL span log: one span dict per line.

    Durable as it goes — every span is written (and flushed) when it
    closes, so a crashed or killed process still leaves every finished
    span on disk.  Thread-safe; the serve daemon shares one sink across
    its event loop and executor threads.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._stream = None

    def write(self, doc: dict[str, Any]) -> None:
        """Append one span dict as a JSON line."""
        line = json.dumps(doc, separators=(",", ":"), sort_keys=True)
        with self._lock:
            if self._stream is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._stream = open(self.path, "a", encoding="utf-8")
            self._stream.write(line + "\n")
            self._stream.flush()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        with self._lock:
            if self._stream is not None:
                self._stream.close()
                self._stream = None

    def __enter__(self) -> "JsonlSpanSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _SpanHandle:
    """A live span: context manager measuring one operation."""

    __slots__ = ("_recorder", "_name", "context", "_attributes",
                 "_status", "_start_wall", "_start_perf")

    def __init__(self, recorder: "SpanRecorder", name: str,
                 context: TraceContext,
                 attributes: dict[str, Any] | None):
        self._recorder = recorder
        self._name = name
        self.context = context
        self._attributes = dict(attributes or {})
        self._status = "ok"
        self._start_wall = 0.0
        self._start_perf = 0.0

    def set_attribute(self, name: str, value: Any) -> None:
        """Attach one attribute (JSON-serializable value)."""
        self._attributes[name] = value

    def set_status(self, status: str) -> None:
        """Override the span status (``"ok"`` / ``"error"``)."""
        self._status = status

    def __enter__(self) -> "_SpanHandle":
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, *exc_info: object) -> None:
        duration = time.perf_counter() - self._start_perf
        status = "error" if exc_type is not None else self._status
        self._recorder.add_span(
            self._name, duration, context=self.context,
            start=self._start_wall, status=status,
            attributes=self._attributes)
        return None


class SpanRecorder(Tracer):
    """The recording tracer: collects spans, optionally streams them.

    ``root`` (optional) is the context every parentless ``span()`` /
    ``child()`` call nests under — CLI entry points mint one root per
    invocation.  Without a root, parentless spans become independent
    roots (the serve daemon's shape: one root per request).  ``sink``
    (for example a :class:`JsonlSpanSink`) additionally receives every
    span as it closes; the in-memory list is always kept, so exporters
    and tests can read :attr:`spans` without a file round-trip.

    Thread-safe: the recording list and the sink are guarded, so engine
    callbacks, serve executor threads and the event loop can all record
    concurrently.
    """

    enabled = True

    def __init__(self, *, root: TraceContext | None = None,
                 sink: JsonlSpanSink | None = None):
        self.root = root
        self.sink = sink
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    # -- context minting ------------------------------------------------

    def _derive(self, parent: TraceContext | None,
                trace_id: str | None) -> TraceContext:
        if parent is not None:
            return parent.child()
        if trace_id is not None:
            return TraceContext.new_root(trace_id)
        if self.root is not None:
            return self.root.child()
        return TraceContext.new_root()

    def child(self, parent: TraceContext | None = None) -> TraceContext:
        """Mint a context for a manually timed operation."""
        return self._derive(parent, None)

    # -- recording ------------------------------------------------------

    def span(self, name: str, *, parent: TraceContext | None = None,
             trace_id: str | None = None,
             context: TraceContext | None = None,
             attributes: dict[str, Any] | None = None) -> _SpanHandle:
        """A live span handle.  ``parent`` nests explicitly; bare calls
        nest under :attr:`root` (or start a new trace); ``trace_id``
        forces a fresh root with that id (serve requests); ``context``
        reuses a pre-minted context (coalescing leaders, whose span id
        must be known before the span closes)."""
        ctx = context if context is not None else \
            self._derive(parent, trace_id)
        return _SpanHandle(self, name, ctx, attributes)

    def add_span(self, name: str, seconds: float, *,
                 context: TraceContext | None = None,
                 parent: TraceContext | None = None,
                 trace_id: str | None = None,
                 start: float | None = None,
                 status: str = "ok",
                 attributes: dict[str, Any] | None = None) -> None:
        """Record one externally measured span."""
        ctx = context if context is not None else \
            self._derive(parent, trace_id)
        span = Span(
            name=name,
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_id=ctx.parent_id,
            start=time.time() - seconds if start is None else start,
            duration=seconds,
            pid=os.getpid(),
            tid=threading.get_ident() & 0xFFFFFFFF,
            status=status,
            attributes=dict(attributes or {}),
        )
        self.record(span)

    def record(self, span: Span) -> None:
        """Append one finished span (and stream it to the sink)."""
        with self._lock:
            self._spans.append(span)
            if self.sink is not None:
                self.sink.write(span.to_json())

    def record_wire(self, spans: list[dict[str, Any]] | None) -> None:
        """Fold in span dicts a worker shipped back with its results."""
        if not spans:
            return
        for doc in spans:
            self.record(Span.from_json(doc))

    @property
    def spans(self) -> list[Span]:
        """A snapshot of every span recorded so far."""
        with self._lock:
            return list(self._spans)

    def __repr__(self) -> str:
        return (f"SpanRecorder(spans={len(self._spans)}, "
                f"sink={self.sink.path if self.sink else None})")
