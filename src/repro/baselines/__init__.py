"""The comparator systems of the paper's evaluation, rebuilt.

* :mod:`repro.baselines.cbp5` — the CBP5 championship framework style:
  plain-text BT9 traces, framework-owned main loop, fused update call.
* :mod:`repro.baselines.champsim` — a ChampSim-style cycle-level
  out-of-order core over per-instruction traces.

Neither is needed to *use* the library; they exist so the Table I/III/IV
experiments can be regenerated end to end.
"""

__all__ = ["cbp5", "champsim"]
