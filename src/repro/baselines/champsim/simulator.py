"""Top-level ChampSim-style runner.

Like the real ChampSim, this entry point owns the run (framework style):
it loads a per-instruction trace, optionally runs a warm-up region, then
simulates and reports IPC and MPKI together — the paper's contrast being
that a cycle-accurate simulator must pay for every instruction even when
the user only wants branch-prediction numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Union

from ...core.predictor import Predictor
from .core import CoreConfig, CoreStats, O3Core
from .trace import InstructionTrace, read_instruction_trace

__all__ = ["ChampsimResult", "run_champsim"]

TraceLike = Union[InstructionTrace, str, Path]


@dataclass(slots=True)
class ChampsimResult:
    """IPC-and-MPKI report of one cycle-level simulation."""

    trace_name: str
    stats: CoreStats
    predictor_metadata: dict[str, Any]
    simulation_time: float

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.stats.ipc

    @property
    def mpki(self) -> float:
        """Direction mispredictions per kilo-instruction."""
        return self.stats.mpki

    def to_json(self) -> dict[str, Any]:
        """Full report object."""
        return {
            "metadata": {
                "simulator": "repro ChampSim-style cycle simulator",
                "trace": self.trace_name,
                "predictor": self.predictor_metadata,
            },
            "metrics": {
                **self.stats.to_json(),
                "simulation_time": self.simulation_time,
            },
        }

    def summary(self) -> str:
        """One-line report in ChampSim's finished-CPU style."""
        return (
            f"CPU 0 cumulative IPC: {self.ipc:.4f} "
            f"instructions: {self.stats.instructions} "
            f"cycles: {self.stats.cycles} "
            f"MPKI: {self.mpki:.4f} ({self.trace_name})"
        )


def run_champsim(predictor: Predictor, trace: TraceLike,
                 config: CoreConfig | None = None,
                 max_instructions: int | None = None,
                 trace_name: str | None = None,
                 instrumentation: Any = None) -> ChampsimResult:
    """Simulate ``trace`` on the cycle-level core with ``predictor``.

    The paper's methodology runs "only the first 100 million
    instructions from each trace" because ChampSim is so much slower;
    ``max_instructions`` is that knob.

    ``instrumentation`` accepts :mod:`repro.telemetry` phase timers and
    records "trace_read" and "core_run" phases — the split that shows
    how much of the Table III gap is the cycle model rather than I/O.
    """
    instr = instrumentation
    read_start = time.perf_counter() if instr is not None else 0.0
    if isinstance(trace, InstructionTrace):
        data, name = trace, trace_name or "<memory>"
    else:
        data = read_instruction_trace(trace)
        name = trace_name or str(trace)
    if instr is not None:
        instr.add_phase("trace_read", time.perf_counter() - read_start)
    start = time.perf_counter()
    core = O3Core(predictor, config)
    stats = core.run(data, max_instructions=max_instructions)
    elapsed = time.perf_counter() - start
    if instr is not None:
        instr.add_phase("core_run", elapsed)
    return ChampsimResult(
        trace_name=name,
        stats=stats,
        predictor_metadata=predictor.metadata_stats(),
        simulation_time=elapsed,
    )
