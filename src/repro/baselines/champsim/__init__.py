"""ChampSim-style cycle-level baseline (per-instruction traces, O3 core)."""

from .btb import Btb, ReturnAddressStack
from .cache import Cache, MemoryHierarchy
from .core import CoreConfig, CoreStats, O3Core
from .indirect import GshareIndirect, IttageLite
from .simulator import ChampsimResult, run_champsim
from .trace import (
    INSTRUCTION_RECORD_SIZE,
    InstructionTrace,
    instruction_trace_from_branches,
    read_instruction_trace,
    write_instruction_trace,
)

__all__ = [
    "Btb", "ReturnAddressStack",
    "Cache", "MemoryHierarchy",
    "CoreConfig", "CoreStats", "O3Core",
    "GshareIndirect", "IttageLite",
    "ChampsimResult", "run_champsim",
    "INSTRUCTION_RECORD_SIZE", "InstructionTrace",
    "instruction_trace_from_branches", "read_instruction_trace",
    "write_instruction_trace",
]
