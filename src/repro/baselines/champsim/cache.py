"""A small cache hierarchy for the cycle-level core.

The ChampSim baseline must pay memory latencies to be meaningfully
cycle-accurate; this module provides set-associative LRU caches chained
into an Ice-Lake-ish hierarchy (the paper configures ChampSim "with
default parameters, similar to Intel's Ice Lake architecture").
Latencies are load-to-use cycles, accumulated down the chain on misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...utils.bits import is_power_of_two

__all__ = ["Cache", "MemoryHierarchy"]


class Cache:
    """A set-associative, LRU, inclusive-enough cache level.

    Only hit/miss timing is modelled (no dirty state, no bandwidth): a
    lookup returns the added latency and inserts the line on a miss after
    consulting ``parent``.
    """

    def __init__(self, name: str, size_bytes: int, ways: int,
                 line_size: int = 64, latency: int = 4,
                 parent: "Cache | None" = None,
                 miss_latency: int = 200):
        if size_bytes % (ways * line_size):
            raise ValueError(f"{name}: size must be sets*ways*line_size")
        num_sets = size_bytes // (ways * line_size)
        if not is_power_of_two(num_sets):
            raise ValueError(f"{name}: set count {num_sets} not a power of two")
        self.name = name
        self.ways = ways
        self.line_bits = line_size.bit_length() - 1
        self.latency = latency
        self.parent = parent
        self.miss_latency = miss_latency
        self._set_mask = num_sets - 1
        self._index_bits = num_sets.bit_length() - 1
        self._sets: list[dict[int, None]] = [dict() for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> int:
        """Total latency to obtain the line holding ``address``."""
        line = address >> self.line_bits
        entries = self._sets[line & self._set_mask]
        tag = line >> self._index_bits
        if tag in entries:
            self.hits += 1
            del entries[tag]      # refresh LRU position
            entries[tag] = None
            return self.latency
        self.misses += 1
        if self.parent is not None:
            below = self.parent.access(address)
        else:
            below = self.miss_latency
        if len(entries) >= self.ways:
            del entries[next(iter(entries))]
        entries[tag] = None
        return self.latency + below

    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 when never accessed)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


@dataclass(slots=True)
class MemoryHierarchy:
    """L1I + L1D sharing an L2 and an LLC, Ice-Lake-ish sizing."""

    l1i: Cache
    l1d: Cache
    l2: Cache
    llc: Cache

    @classmethod
    def ice_lake_like(cls) -> "MemoryHierarchy":
        """Build the default hierarchy used by the baseline core."""
        llc = Cache("LLC", size_bytes=2 * 1024 * 1024, ways=16, latency=30,
                    miss_latency=160)
        l2 = Cache("L2", size_bytes=512 * 1024, ways=8, latency=10,
                   parent=llc)
        l1i = Cache("L1I", size_bytes=32 * 1024, ways=8, latency=1,
                    parent=l2)
        l1d = Cache("L1D", size_bytes=48 * 1024, ways=12, latency=4,
                    parent=l2)
        return cls(l1i=l1i, l1d=l1d, l2=l2, llc=llc)

    def stats(self) -> dict[str, float]:
        """Per-level miss rates for the simulator report."""
        return {
            cache.name: cache.miss_rate()
            for cache in (self.l1i, self.l1d, self.l2, self.llc)
        }
