"""Branch target buffer and return-address stack.

The ChampSim-style core needs target prediction, not just direction
prediction: the paper's methodology pairs GShare with an 8K-entry BTB and
BATAGE with high-end target predictors.  This module provides the two
structural pieces: a set-associative LRU :class:`Btb` and a circular
:class:`ReturnAddressStack`.
"""

from __future__ import annotations

from ...utils.bits import is_power_of_two

__all__ = ["Btb", "ReturnAddressStack"]


class Btb:
    """A set-associative branch target buffer with LRU replacement.

    Each set is a Python dict from tag to target; dict insertion order
    doubles as the LRU order (re-inserting moves an entry to the back).
    """

    def __init__(self, num_sets: int = 1024, ways: int = 8,
                 instruction_shift: int = 0):
        if not is_power_of_two(num_sets):
            raise ValueError(f"num_sets must be a power of two, got {num_sets}")
        if ways < 1:
            raise ValueError(f"ways must be >= 1, got {ways}")
        self.num_sets = num_sets
        self.ways = ways
        self.instruction_shift = instruction_shift
        self._set_mask = num_sets - 1
        self._index_bits = num_sets.bit_length() - 1
        self._sets: list[dict[int, int]] = [dict() for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0

    @property
    def num_entries(self) -> int:
        """Total capacity in entries."""
        return self.num_sets * self.ways

    def _locate(self, ip: int) -> tuple[dict[int, int], int]:
        line = ip >> self.instruction_shift
        return self._sets[line & self._set_mask], line >> self._index_bits

    def lookup(self, ip: int) -> int | None:
        """Predicted target of the branch at ``ip``; None on a miss."""
        entries, tag = self._locate(ip)
        target = entries.get(tag)
        if target is None:
            self.misses += 1
            return None
        self.hits += 1
        # Refresh LRU position.
        del entries[tag]
        entries[tag] = target
        return target

    def update(self, ip: int, target: int) -> None:
        """Install or refresh the mapping ``ip -> target``."""
        entries, tag = self._locate(ip)
        if tag in entries:
            del entries[tag]
        elif len(entries) >= self.ways:
            # Evict the least recently used entry (first inserted).
            oldest = next(iter(entries))
            del entries[oldest]
        entries[tag] = target


class ReturnAddressStack:
    """A fixed-depth circular return-address stack.

    Overflow silently wraps (oldest entries are clobbered) and underflow
    returns ``None`` — both mirror hardware RAS behaviour, where a
    mis-sized stack causes mispredicted returns rather than faults.
    """

    def __init__(self, depth: int = 32):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self._stack: list[int | None] = [None] * depth
        self._top = 0      # index where the next push lands
        self._live = 0     # number of valid entries (<= depth)

    def push(self, return_address: int) -> None:
        """Record the return address of a call."""
        self._stack[self._top] = return_address
        self._top = (self._top + 1) % self.depth
        self._live = min(self.depth, self._live + 1)

    def pop(self) -> int | None:
        """Predicted target of a return; None when empty."""
        if self._live == 0:
            return None
        self._top = (self._top - 1) % self.depth
        self._live -= 1
        value = self._stack[self._top]
        self._stack[self._top] = None
        return value

    def __len__(self) -> int:
        return self._live
