"""A champsimtrace-like per-instruction binary format.

ChampSim traces record **every** instruction, not just branches, because
a cycle-accurate simulator needs the full dynamic stream: each 64-byte
record carries the instruction pointer, branch flags and the register and
memory operands ("ChampSim needs to store the registers accessed by the
instructions and information about all types of instructions, not just
branches" — the paper's explanation of the DPC3 42× size ratio in
Table I).

Record layout (64 bytes, little endian, mirroring ChampSim's
``input_instr``)::

    u64 ip
    u8  is_branch
    u8  branch_taken
    u8  destination_registers[2]
    u8  source_registers[4]
    u64 destination_memory[2]
    u64 source_memory[4]

We additionally prepend a 16-byte header (magic + instruction count) so
readers can size buffers; real champsim traces are headerless, which does
not affect any experiment.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ...core.errors import TraceFormatError
from ...sbbt.compression import open_compressed
from ...sbbt.trace import TraceData
from ...utils.hashing import mix64

__all__ = [
    "INSTRUCTION_RECORD_SIZE",
    "InstructionTrace",
    "instruction_trace_from_branches",
    "write_instruction_trace",
    "read_instruction_trace",
]

#: Bytes per instruction record, matching ChampSim's input_instr.
INSTRUCTION_RECORD_SIZE = 64

_MAGIC = b"CSIMTRC\n"
_HEADER = struct.Struct("<8sQ")

#: numpy dtype of one record.
RECORD_DTYPE = np.dtype([
    ("ip", "<u8"),
    ("is_branch", "u1"),
    ("branch_taken", "u1"),
    ("dest_regs", "u1", (2,)),
    ("src_regs", "u1", (4,)),
    ("dest_mem", "<u8", (2,)),
    ("src_mem", "<u8", (4,)),
])
assert RECORD_DTYPE.itemsize == INSTRUCTION_RECORD_SIZE


@dataclass(slots=True)
class InstructionTrace:
    """A decoded per-instruction trace (numpy record array).

    ``records`` has :data:`RECORD_DTYPE`; branch records carry the
    direction in ``branch_taken`` and their target in ``dest_mem[0]``
    (ChampSim reconstructs targets from the next ip; storing it keeps our
    reader simple without changing the record size).
    """

    records: np.ndarray

    def __len__(self) -> int:
        return len(self.records)

    @property
    def num_branches(self) -> int:
        """Number of branch records."""
        return int(self.records["is_branch"].sum())

    def branch_mask(self) -> np.ndarray:
        """Boolean mask over records selecting branches."""
        return self.records["is_branch"].astype(bool)


def instruction_trace_from_branches(trace: TraceData,
                                    seed: int = 7) -> InstructionTrace:
    """Expand a branch trace into a full per-instruction stream.

    Every gap of ``g`` non-branch instructions becomes ``g`` filler
    records with sequential instruction pointers and deterministic
    pseudo-random register/memory operands (~30 % loads, ~12 % stores —
    a typical integer-code mix), followed by the branch record itself.
    """
    total = len(trace) + int(trace.gaps.sum(dtype=np.int64))
    records = np.zeros(total, dtype=RECORD_DTYPE)

    ips = trace.ips.tolist()
    targets = trace.targets.tolist()
    taken = trace.taken.tolist()
    opcodes = trace.opcodes.tolist()
    gaps = trace.gaps.tolist()

    position = 0
    fall_through = ips[0] - 4 * (gaps[0] + 1) if len(trace) else 0
    out_ip = records["ip"]
    out_isbr = records["is_branch"]
    out_taken = records["branch_taken"]
    out_dmem = records["dest_mem"]
    out_smem = records["src_mem"]
    out_dreg = records["dest_regs"]
    out_sreg = records["src_regs"]

    for i in range(len(trace)):
        gap = gaps[i]
        # Filler instructions run sequentially up to the branch.
        current = ips[i] - 4 * gap
        for _ in range(gap):
            # Static properties (operation kind, registers) depend on the
            # instruction address only; memory addresses additionally
            # stride with the dynamic position, so repeated executions
            # touch different data — real traces have exactly this mix of
            # redundancy (code) and entropy (data), which is what keeps
            # the compressed record stream from collapsing to nothing.
            h = mix64(current ^ seed)
            out_ip[position] = current
            out_dreg[position][1] = h & 0x3F
            out_sreg[position][0] = (h >> 6) & 0x3F
            out_sreg[position][1] = (h >> 12) & 0x3F
            kind = h % 100
            if kind < 30:  # load
                stride = 8 + (h >> 20) % 64 * 8
                out_smem[position][0] = (0x7000_0000_0000 + (h & 0xFF_F000)
                                         + (position * stride) % 0x10_0000)
            elif kind < 42:  # store
                stride = 8 + (h >> 26) % 64 * 8
                out_dmem[position][0] = (0x7000_0000_0000 + (h & 0xFF_F000)
                                         + (position * stride) % 0x10_0000)
            position += 1
            current += 4
        out_ip[position] = ips[i]
        out_isbr[position] = 1
        out_taken[position] = 1 if taken[i] else 0
        out_dmem[position][0] = targets[i] if taken[i] else 0
        # Flag bits for the reader: conditional / indirect / type.
        out_dreg[position][0] = opcodes[i]
        position += 1
    assert position == total
    return InstructionTrace(records=records)


def write_instruction_trace(path: str | os.PathLike,
                            trace: InstructionTrace) -> int:
    """Write header + records (codec from suffix); returns on-disk size."""
    with open_compressed(path, "wb") as stream:
        stream.write(_HEADER.pack(_MAGIC, len(trace.records)))
        stream.write(trace.records.tobytes())
    return Path(path).stat().st_size


def read_instruction_trace(path: str | os.PathLike) -> InstructionTrace:
    """Read and decode a champsimtrace-like file."""
    with open_compressed(path, "rb") as stream:
        payload = stream.read()
    if len(payload) < _HEADER.size:
        raise TraceFormatError(f"{path}: truncated header")
    magic, count = _HEADER.unpack(payload[:_HEADER.size])
    if magic != _MAGIC:
        raise TraceFormatError(f"{path}: bad magic {magic!r}")
    body = payload[_HEADER.size:]
    expected = count * INSTRUCTION_RECORD_SIZE
    if len(body) != expected:
        raise TraceFormatError(
            f"{path}: body is {len(body)} bytes, expected {expected}"
        )
    records = np.frombuffer(body, dtype=RECORD_DTYPE).copy()
    return InstructionTrace(records=records)
