"""A cycle-driven out-of-order core model.

This is the reproduction's stand-in for ChampSim's O3 CPU.  Unlike the
branch-only simulator — which touches each *branch* once — this model
advances a cycle counter and, every cycle, performs the bookkeeping of a
superscalar pipeline over **every instruction**:

* **fetch** — bandwidth-limited, pays instruction-cache latency per new
  line, performs branch direction *and* target prediction, and stalls on
  a misprediction until the branch executes;
* **dispatch** — fills a reorder buffer (bounded by ``rob_size``) and a
  scheduler window;
* **issue/execute** — instructions leave the scheduler out of order when
  their source registers are ready (a 64-entry scoreboard) and a
  functional-unit slot is free; loads and stores pay data-cache latency;
* **commit** — in order, bounded width.

The modelling level is deliberately ChampSim-ish, not RTL: the paper's
evaluation relies on three behavioural properties, all of which hold
here — cycle simulation costs orders of magnitude more than branch-only
simulation; the branch predictor is a small fraction of the per-cycle
work (so simple and complex predictors take comparable time, Table III
bottom); and the model reports *performance* (IPC), which MBPlib by
design does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ...core.branch import Branch, Opcode
from ...core.predictor import Predictor
from .btb import Btb, ReturnAddressStack
from .cache import MemoryHierarchy
from .indirect import GshareIndirect, IttageLite
from .trace import InstructionTrace

__all__ = ["CoreConfig", "CoreStats", "O3Core"]

_INSTRUCTION_SIZE = 4
_NUM_REGISTERS = 64


@dataclass(frozen=True, slots=True)
class CoreConfig:
    """Microarchitectural parameters (Ice-Lake-ish defaults)."""

    fetch_width: int = 5
    decode_width: int = 5
    issue_width: int = 8
    commit_width: int = 5
    rob_size: int = 352
    scheduler_size: int = 64
    pipeline_depth: int = 10
    mispredict_extra_penalty: int = 4
    btb_sets: int = 1024
    btb_ways: int = 8
    ras_depth: int = 32
    indirect_predictor: str = "gshare"  # "gshare" | "ittage"

    def __post_init__(self) -> None:
        if min(self.fetch_width, self.decode_width, self.issue_width,
               self.commit_width) < 1:
            raise ValueError("pipeline widths must be >= 1")
        if self.rob_size < 1 or self.scheduler_size < 1:
            raise ValueError("rob_size and scheduler_size must be >= 1")
        if self.indirect_predictor not in ("gshare", "ittage"):
            raise ValueError(
                f"unknown indirect predictor {self.indirect_predictor!r}"
            )


@dataclass(slots=True)
class CoreStats:
    """Counters accumulated by one run of the core."""

    instructions: int = 0
    cycles: int = 0
    branches: int = 0
    conditional_branches: int = 0
    direction_mispredictions: int = 0
    target_mispredictions: int = 0
    btb_misses: int = 0
    cache_miss_rates: dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mpki(self) -> float:
        """Direction mispredictions per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.direction_mispredictions / self.instructions

    def to_json(self) -> dict[str, Any]:
        """Report dict in the style of ChampSim's end-of-run block."""
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "mpki": self.mpki,
            "branches": self.branches,
            "conditional_branches": self.conditional_branches,
            "direction_mispredictions": self.direction_mispredictions,
            "target_mispredictions": self.target_mispredictions,
            "btb_misses": self.btb_misses,
            "cache_miss_rates": self.cache_miss_rates,
        }


# In-flight instruction micro-op, kept as a plain list for speed.
# Fields: [done_cycle | None, src1, src2, dest, mem_address, is_store,
#          committed_flag]
_DONE, _SRC1, _SRC2, _DEST, _MEM, _STORE, _RETIRED = range(7)


class O3Core:
    """The cycle-driven core: couple a direction predictor to front-end
    structures and run an instruction trace through the pipeline."""

    def __init__(self, predictor: Predictor,
                 config: CoreConfig | None = None,
                 memory: MemoryHierarchy | None = None):
        self.config = config or CoreConfig()
        self.predictor = predictor
        self.memory = memory or MemoryHierarchy.ice_lake_like()
        self.btb = Btb(self.config.btb_sets, self.config.btb_ways)
        self.ras = ReturnAddressStack(self.config.ras_depth)
        if self.config.indirect_predictor == "ittage":
            self.indirect = IttageLite()
        else:
            self.indirect = GshareIndirect()

    # ------------------------------------------------------------------
    # Front-end helpers.
    # ------------------------------------------------------------------

    def _predict_target(self, ip: int, opcode: Opcode) -> int | None:
        """RAS for returns, indirect predictor for indirect branches,
        BTB for direct ones."""
        if opcode.is_return:
            return self.ras.pop()
        if opcode.is_indirect:
            return self.indirect.predict(ip)
        return self.btb.lookup(ip)

    def _train_target(self, ip: int, opcode: Opcode, target: int) -> None:
        if opcode.is_call:
            self.ras.push(ip + _INSTRUCTION_SIZE)
        if opcode.is_return:
            return
        if opcode.is_indirect:
            self.indirect.update(ip, target)
        else:
            self.btb.update(ip, target)

    def _handle_branch(self, ip: int, opcode_value: int, taken: bool,
                       target: int, stats: CoreStats) -> bool:
        """Predict, train and count one branch; True = fetch must redirect."""
        opcode = Opcode(opcode_value & 0xF)
        stats.branches += 1
        actual_target = target if taken else ip + _INSTRUCTION_SIZE
        if opcode.is_conditional:
            stats.conditional_branches += 1
            predicted_taken = self.predictor.predict(ip)
        else:
            predicted_taken = True
        direction_wrong = predicted_taken != taken
        target_wrong = False
        if not direction_wrong and taken:
            predicted_target = self._predict_target(ip, opcode)
            if predicted_target is None:
                stats.btb_misses += 1
                target_wrong = True
            elif predicted_target != actual_target:
                target_wrong = True
        if direction_wrong:
            stats.direction_mispredictions += 1
        elif target_wrong:
            stats.target_mispredictions += 1
        branch = Branch(ip, target if taken else 0, opcode, taken)
        if opcode.is_conditional:
            self.predictor.train(branch)
        self.predictor.track(branch)
        if taken:
            self._train_target(ip, opcode, actual_target)
        elif opcode.is_call:  # pragma: no cover - calls are always taken
            self.ras.push(ip + _INSTRUCTION_SIZE)
        return direction_wrong or target_wrong

    # ------------------------------------------------------------------
    # The cycle loop.
    # ------------------------------------------------------------------

    def run(self, trace: InstructionTrace,
            max_instructions: int | None = None) -> CoreStats:
        """Execute the trace cycle by cycle; returns the statistics."""
        config = self.config
        stats = CoreStats()
        l1i = self.memory.l1i
        l1d = self.memory.l1d

        total = len(trace.records)
        if max_instructions is not None:
            total = min(total, max_instructions)
        records = trace.records
        ips = records["ip"][:total].tolist()
        is_branch = records["is_branch"][:total].tolist()
        branch_taken = records["branch_taken"][:total].tolist()
        opcode_field = records["dest_regs"][:total, 0].tolist()
        dest_regs = records["dest_regs"][:total, 1].tolist()
        src1 = records["src_regs"][:total, 0].tolist()
        src2 = records["src_regs"][:total, 1].tolist()
        dest_mem = records["dest_mem"][:total, 0].tolist()
        src_mem = records["src_mem"][:total, 0].tolist()

        depth = config.pipeline_depth
        fetch_width = config.fetch_width
        issue_width = config.issue_width
        commit_width = config.commit_width
        rob_size = config.rob_size
        scheduler_size = config.scheduler_size
        redirect_penalty = config.mispredict_extra_penalty + depth

        reg_ready = [0] * _NUM_REGISTERS
        rob: list[list] = []          # in-flight, program order
        rob_head = 0                  # commit pointer into rob
        scheduler: list[list] = []    # dispatched but not issued
        cycle = 0
        fetch_index = 0
        fetch_resume_cycle = 0        # earliest cycle fetch may proceed
        blocking_branch: list | None = None  # unresolved mispredict
        last_fetch_line = -1
        committed = 0

        while committed < total:
            # ---- Commit stage: in order, bounded width. ----------------
            slots = commit_width
            while (slots and rob_head < len(rob)):
                entry = rob[rob_head]
                done = entry[_DONE]
                if done is None or done > cycle:
                    break
                entry[_RETIRED] = True
                rob_head += 1
                committed += 1
                slots -= 1
            if rob_head > 2048:
                # Compact the retired prefix so the list stays bounded.
                del rob[:rob_head]
                rob_head = 0

            # ---- Issue stage: out of order from the scheduler. ---------
            if scheduler:
                issued = 0
                index = 0
                while index < len(scheduler) and issued < issue_width:
                    uop = scheduler[index]
                    ready1 = reg_ready[uop[_SRC1]]
                    ready2 = reg_ready[uop[_SRC2]]
                    if ready1 <= cycle and ready2 <= cycle:
                        latency = 1
                        mem = uop[_MEM]
                        if mem:
                            if uop[_STORE]:
                                latency = 1  # stores retire via the buffer
                                l1d.access(mem)
                            else:
                                latency = l1d.access(mem)
                        done = cycle + latency
                        uop[_DONE] = done
                        dest = uop[_DEST]
                        if dest:
                            reg_ready[dest] = done
                        if uop is blocking_branch:
                            fetch_resume_cycle = done + redirect_penalty
                            blocking_branch = None
                        scheduler.pop(index)
                        issued += 1
                    else:
                        index += 1

            # ---- Fetch + dispatch stage. --------------------------------
            if (blocking_branch is None and cycle >= fetch_resume_cycle
                    and fetch_index < total):
                slots = fetch_width
                while (slots and fetch_index < total
                       and len(rob) - rob_head < rob_size
                       and len(scheduler) < scheduler_size):
                    i = fetch_index
                    ip = ips[i]
                    line = ip >> 6
                    if line != last_fetch_line:
                        last_fetch_line = line
                        icache = l1i.access(ip)
                        if icache > 1:
                            # The rest of this fetch group waits.
                            fetch_resume_cycle = cycle + icache - 1
                            slots = 1
                    uop = [None, src1[i], src2[i], dest_regs[i],
                           0, False, False]
                    if src_mem[i]:
                        uop[_MEM] = src_mem[i]
                    elif dest_mem[i] and not is_branch[i]:
                        uop[_MEM] = dest_mem[i]
                        uop[_STORE] = True
                    redirect = False
                    if is_branch[i]:
                        redirect = self._handle_branch(
                            ip, opcode_field[i], bool(branch_taken[i]),
                            dest_mem[i], stats)
                    rob.append(uop)
                    scheduler.append(uop)
                    fetch_index += 1
                    slots -= 1
                    if redirect:
                        blocking_branch = uop
                        last_fetch_line = -1
                        break

            cycle += 1

        stats.instructions = committed
        # Account for the front-end fill of the first instructions.
        stats.cycles = cycle + depth
        stats.cache_miss_rates = self.memory.stats()
        return stats
