"""Indirect branch target predictors.

The paper's ChampSim methodology pairs the GShare direction predictor
with "a 4K-entry GShare-like indirect target predictor" (Chang, Hao &
Patt's target cache) and BATAGE with "a 64 kB ITTAGE target predictor"
(Seznec) — "if we are going to simulate for performance, it makes sense
to have a high-end target predictor accompanying a high-end branch
predictor".  Both are rebuilt here.
"""

from __future__ import annotations

from ...utils.bits import mask
from ...utils.hashing import xor_fold

__all__ = ["GshareIndirect", "IttageLite"]


class GshareIndirect:
    """A history-hashed target cache (Chang et al., 1997).

    One table of targets indexed by ``hash(ip, target-history)``: the
    history register records low bits of recent indirect targets, so the
    same indirect branch reaching a different call-site pattern maps to a
    different entry.
    """

    def __init__(self, log_table_size: int = 12, history_length: int = 14):
        if log_table_size < 1:
            raise ValueError("log_table_size must be >= 1")
        self.log_table_size = log_table_size
        self.history_length = history_length
        self._targets: list[int] = [0] * (1 << log_table_size)
        self._history = 0

    def _index(self, ip: int) -> int:
        return xor_fold(ip ^ (self._history << 2), self.log_table_size)

    def predict(self, ip: int) -> int | None:
        """Predicted target, or None when the entry is empty."""
        target = self._targets[self._index(ip)]
        return target if target else None

    def update(self, ip: int, target: int) -> None:
        """Install the resolved target and shift it into the history."""
        self._targets[self._index(ip)] = target
        self._history = (((self._history << 2) ^ (target >> 2))
                         & mask(self.history_length))


class IttageLite:
    """An ITTAGE-style tagged geometric target predictor (Seznec, 2011).

    Tagged tables with geometrically increasing history lengths store
    (tag, target, confidence); the longest matching entry with the
    highest confidence provides the target.  This is a compact
    reimplementation with the structural properties intact (geometric
    histories, tag match, confidence-gated replacement, allocation on
    mispredict).
    """

    def __init__(self, num_tables: int = 5, log_table_size: int = 9,
                 tag_width: int = 10, min_history: int = 4,
                 max_history: int = 64):
        from ...predictors.tage import geometric_history_lengths

        self.num_tables = num_tables
        self.log_table_size = log_table_size
        self.tag_width = tag_width
        self.history_lengths = geometric_history_lengths(
            num_tables, min_history, max_history)
        size = 1 << log_table_size
        self._tags = [[0] * size for _ in range(num_tables)]
        self._targets = [[0] * size for _ in range(num_tables)]
        self._confidence = [[0] * size for _ in range(num_tables)]
        self._base: dict[int, int] = {}
        self._history = 0

    def _index(self, table: int, ip: int) -> int:
        history = self._history & mask(self.history_lengths[table])
        return xor_fold(ip ^ (history << 1) ^ (table << 3),
                        self.log_table_size)

    def _tag(self, table: int, ip: int) -> int:
        history = self._history & mask(self.history_lengths[table])
        return xor_fold((ip >> 2) ^ (history << 3) ^ (table << 5),
                        self.tag_width) or 1  # 0 means "empty"

    def predict(self, ip: int) -> int | None:
        """Longest matching tagged entry wins; fall back to a last-target
        table, then to None."""
        for table in range(self.num_tables - 1, -1, -1):
            index = self._index(table, ip)
            if self._tags[table][index] == self._tag(table, ip):
                return self._targets[table][index] or None
        return self._base.get(ip)

    def update(self, ip: int, target: int) -> None:
        """Train the providing entry; allocate on a target mismatch."""
        provider = None
        for table in range(self.num_tables - 1, -1, -1):
            index = self._index(table, ip)
            if self._tags[table][index] == self._tag(table, ip):
                provider = (table, index)
                break
        correct = (self.predict(ip) == target)
        if provider is not None:
            table, index = provider
            if self._targets[table][index] == target:
                self._confidence[table][index] = min(
                    3, self._confidence[table][index] + 1)
            elif self._confidence[table][index] > 0:
                self._confidence[table][index] -= 1
            else:
                self._targets[table][index] = target
        if not correct:
            start = 0 if provider is None else provider[0] + 1
            for table in range(start, self.num_tables):
                index = self._index(table, ip)
                if self._confidence[table][index] == 0:
                    self._tags[table][index] = self._tag(table, ip)
                    self._targets[table][index] = target
                    self._confidence[table][index] = 0
                    break
        self._base[ip] = target
        self._history = ((self._history << 2) ^ (target >> 2)) & mask(
            max(self.history_lengths))
