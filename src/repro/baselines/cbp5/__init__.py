"""CBP5-framework-style baseline (text traces, framework control flow)."""

from .bt9 import Bt9Header, bt9_to_trace_data, iter_bt9, read_bt9_header, write_bt9
from .framework import Cbp5Framework, Cbp5Result, cbp5_main
from .interface import Cbp5Predictor, FromMbpPredictor, OpType

__all__ = [
    "Bt9Header", "bt9_to_trace_data", "iter_bt9", "read_bt9_header",
    "write_bt9",
    "Cbp5Framework", "Cbp5Result", "cbp5_main",
    "Cbp5Predictor", "FromMbpPredictor", "OpType",
]
