"""A BT9-like plain-text branch trace format.

The CBP5 framework distributes traces in BT9: a *plain-text* format that
first describes a graph — nodes are the static branches of the program,
edges their observed (source, outcome, target) transitions — and then
lists the executed edge sequence, one edge id per line.

This module reimplements that structure (slightly simplified field-wise,
faithfully structure-wise) because the paper's evaluation hinges on its
two costs, which a Python reimplementation reproduces exactly in kind:

* every record crosses a **text parser** (``int(line)``), and
* every executed branch is materialized through a **hashed lookup** into
  the node/edge metadata ("the cache misses from accessing a big hashed
  structure", Section VII-D).

Layout (field roster matching the real BT9: nodes carry virtual and
physical addresses, opcode and size; edges carry source and destination
node, outcome, both target addresses, the inter-branch instruction count
and the traversal count)::

    BT9_SPA_TRACE_FORMAT
    version: 9.0
    total_instruction_count: <N>
    branch_instruction_count: <M>
    BT9_NODES
    NODE <id> <virt_addr> <phys_addr> <opcode-mnemonic> <size>
    ...
    BT9_EDGES
    EDGE <id> <src_node> <dest_node> <taken T|N> <virt_target> <phys_target> <inst_cnt> <traverse_cnt>
    ...
    BT9_EDGE_SEQUENCE
    <edge_id>
    ...
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ...core.branch import Branch, Opcode
from ...core.errors import TraceFormatError
from ...sbbt.compression import open_compressed
from ...sbbt.trace import TraceData

__all__ = ["write_bt9", "read_bt9_header", "iter_bt9", "Bt9Header"]

_MAGIC = "BT9_SPA_TRACE_FORMAT"

_OPCODE_MNEMONICS = {}
for value in range(16):
    if (value >> 2) != 0b11:
        _OPCODE_MNEMONICS[value] = Opcode(value).mnemonic().replace(" ", "+")
_MNEMONIC_OPCODES = {v: Opcode(k) for k, v in _OPCODE_MNEMONICS.items()}


@dataclass(frozen=True, slots=True)
class Bt9Header:
    """Counts parsed from a BT9 file's key-value preamble."""

    num_instructions: int
    num_branches: int


def write_bt9(path: str | os.PathLike, trace: TraceData) -> int:
    """Write ``trace`` in the BT9-like text format (codec from suffix).

    Builds the node table (one entry per static branch) and the edge
    table (one entry per distinct (branch, outcome, target, gap)
    transition), then emits the edge id sequence.  Returns the on-disk
    size in bytes.
    """
    nodes: dict[int, int] = {}           # ip -> node id
    node_rows: list[str] = []
    # (src_node, dest_node, taken, target, gap) -> edge id
    edges: dict[tuple[int, int, bool, int, int], int] = {}
    edge_fields: list[tuple[int, int, bool, int, int]] = []
    traverse_counts: list[int] = []
    sequence: list[int] = []

    ips = trace.ips.tolist()
    opcodes = trace.opcodes.tolist()
    taken_column = trace.taken.tolist()
    targets = trace.targets.tolist()
    gaps = trace.gaps.tolist()

    def node_for(ip: int, opcode: int) -> int:
        node_id = nodes.get(ip)
        if node_id is None:
            node_id = nodes[ip] = len(nodes)
            # The fake physical address keeps the field populated the way
            # real BT9 files have it (we have no MMU to consult).
            node_rows.append(
                f"NODE {node_id} {ip:#x} {ip & 0xFFFFFFFFF:#x} "
                f"{_OPCODE_MNEMONICS[opcode]} 4"
            )
        return node_id

    n = len(ips)
    for i in range(n):
        node_id = node_for(ips[i], opcodes[i])
        # The destination node is the *next executed branch*, which is
        # how BT9 encodes the program graph.  The last branch points back
        # at itself for lack of a successor.
        if i + 1 < n:
            dest_id = node_for(ips[i + 1], opcodes[i + 1])
        else:
            dest_id = node_id
        key = (node_id, dest_id, taken_column[i], targets[i], gaps[i])
        edge_id = edges.get(key)
        if edge_id is None:
            edge_id = edges[key] = len(edge_fields)
            edge_fields.append(key)
            traverse_counts.append(0)
        traverse_counts[edge_id] += 1
        sequence.append(edge_id)

    edge_rows = [
        f"EDGE {edge_id} {src} {dest} {'T' if taken else 'N'} "
        f"{target:#x} {target & 0xFFFFFFFFF:#x} {gap} "
        f"{traverse_counts[edge_id]}"
        for edge_id, (src, dest, taken, target, gap)
        in enumerate(edge_fields)
    ]

    lines = [
        _MAGIC,
        "version: 9.0",
        f"total_instruction_count: {trace.num_instructions}",
        f"branch_instruction_count: {len(trace)}",
        "BT9_NODES",
        *node_rows,
        "BT9_EDGES",
        *edge_rows,
        "BT9_EDGE_SEQUENCE",
        *(str(e) for e in sequence),
        "",
    ]
    payload = "\n".join(lines).encode("ascii")
    with open_compressed(path, "wb") as stream:
        stream.write(payload)
    return Path(path).stat().st_size


def _text_lines(path: str | os.PathLike) -> Iterator[str]:
    """Decompressed text lines of a BT9 file."""
    with open_compressed(path, "rb") as stream:
        for raw in stream:
            yield raw.decode("ascii").rstrip("\n")


def read_bt9_header(path: str | os.PathLike) -> Bt9Header:
    """Parse just the counts from the preamble."""
    instructions = branches = None
    for line in _text_lines(path):
        if line.startswith("total_instruction_count:"):
            instructions = int(line.split(":")[1])
        elif line.startswith("branch_instruction_count:"):
            branches = int(line.split(":")[1])
        elif line == "BT9_NODES":
            break
    if instructions is None or branches is None:
        raise TraceFormatError(f"{path}: missing counts in BT9 preamble")
    return Bt9Header(num_instructions=instructions, num_branches=branches)


def iter_bt9(path: str | os.PathLike) -> Iterator[tuple[Branch, int]]:
    """Stream ``(branch, gap)`` pairs from a BT9-like file.

    This reader deliberately works the way the CBP5 framework's does:
    parse the graph into hashed tables first, then resolve every line of
    the edge sequence through those tables.  Its per-branch cost is the
    baseline that SBBT's flat packets are measured against
    (``benchmarks/test_ablation_trace_reading.py``).
    """
    lines = _text_lines(path)
    first = next(lines, None)
    if first != _MAGIC:
        raise TraceFormatError(f"{path}: not a BT9 trace (magic {first!r})")

    nodes: dict[int, tuple[int, Opcode]] = {}
    edges: dict[int, tuple[int, bool, int, int]] = {}
    section = "preamble"
    for line in lines:
        if not line:
            continue
        if line == "BT9_NODES":
            section = "nodes"
            continue
        if line == "BT9_EDGES":
            section = "edges"
            continue
        if line == "BT9_EDGE_SEQUENCE":
            section = "sequence"
            continue
        if section == "nodes":
            _, node_id, address, _phys, mnemonic, _size = line.split()
            nodes[int(node_id)] = (int(address, 16),
                                   _MNEMONIC_OPCODES[mnemonic])
        elif section == "edges":
            (_, edge_id, node_id, _dest, taken, target, _ptarget,
             gap, _traverse) = line.split()
            edges[int(edge_id)] = (int(node_id), taken == "T",
                                   int(target, 16), int(gap))
        elif section == "sequence":
            node_id, taken, target, gap = edges[int(line)]
            ip, opcode = nodes[node_id]
            yield Branch(ip, target, opcode, taken), gap
        elif section != "preamble":
            raise TraceFormatError(f"{path}: unexpected line {line!r}")


def bt9_to_trace_data(path: str | os.PathLike) -> TraceData:
    """Load a whole BT9 file into the in-memory representation."""
    import numpy as np

    header = read_bt9_header(path)
    branches = list(iter_bt9(path))
    n = len(branches)
    if n != header.num_branches:
        raise TraceFormatError(
            f"{path}: header promises {header.num_branches} branches, "
            f"sequence has {n}"
        )
    return TraceData(
        ips=np.fromiter((b.ip for b, _ in branches), np.uint64, n),
        targets=np.fromiter((b.target for b, _ in branches), np.uint64, n),
        opcodes=np.fromiter((int(b.opcode) for b, _ in branches), np.uint8, n),
        taken=np.fromiter((b.taken for b, _ in branches), bool, n),
        gaps=np.fromiter((g for _, g in branches), np.uint16, n),
        num_instructions=header.num_instructions,
    )


__all__.append("bt9_to_trace_data")
