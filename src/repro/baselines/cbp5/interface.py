"""The CBP5 predictor interface and the MBPlib→CBP5 adapter.

The championship framework defines a C++ class ``PREDICTOR`` with three
methods — ``GetPrediction``, ``UpdatePredictor`` (conditional branches)
and ``TrackOtherInst`` (everything else).  Note the contrast the paper
draws: *update* does both training and tracking at once, which is exactly
what blocks the partial-update meta-predictors of Section VI-D.

:class:`FromMbpPredictor` adapts any :class:`repro.core.Predictor` to
this interface, mirroring the paper's methodology of running "the same
branch predictor implementations across the different simulators, with
only small changes needed to comply with the different interfaces".
"""

from __future__ import annotations

import abc
import enum

from ...core.branch import Branch, Opcode
from ...core.predictor import Predictor

__all__ = ["OpType", "Cbp5Predictor", "FromMbpPredictor"]


class OpType(enum.IntEnum):
    """The CBP5 framework's branch operation types."""

    OP_JMP_DIRECT_UNCOND = 1
    OP_JMP_INDIRECT_UNCOND = 2
    OP_JMP_DIRECT_COND = 3
    OP_JMP_INDIRECT_COND = 4
    OP_CALL_DIRECT = 5
    OP_CALL_INDIRECT = 6
    OP_RET = 7

    @classmethod
    def from_opcode(cls, opcode: Opcode) -> "OpType":
        """Map an SBBT opcode onto the CBP5 operation type."""
        if opcode.is_return:
            return cls.OP_RET
        if opcode.is_call:
            return (cls.OP_CALL_INDIRECT if opcode.is_indirect
                    else cls.OP_CALL_DIRECT)
        if opcode.is_conditional:
            return (cls.OP_JMP_INDIRECT_COND if opcode.is_indirect
                    else cls.OP_JMP_DIRECT_COND)
        return (cls.OP_JMP_INDIRECT_UNCOND if opcode.is_indirect
                else cls.OP_JMP_DIRECT_UNCOND)


class Cbp5Predictor(abc.ABC):
    """The championship's ``PREDICTOR`` class, Pythonized."""

    @abc.abstractmethod
    def get_prediction(self, pc: int) -> bool:
        """Direction guess for the conditional branch at ``pc``."""

    @abc.abstractmethod
    def update_predictor(self, pc: int, op_type: OpType, resolve_dir: bool,
                         pred_dir: bool, branch_target: int) -> None:
        """Train *and* track with a resolved conditional branch."""

    @abc.abstractmethod
    def track_other_inst(self, pc: int, op_type: OpType,
                         branch_target: int) -> None:
        """Observe a non-conditional branch."""


class FromMbpPredictor(Cbp5Predictor):
    """Adapter: run an MBPlib-style predictor under the CBP5 interface.

    The fused ``update_predictor`` simply calls ``train`` then ``track``
    — the composition the simulator would have performed — so both
    simulators produce **identical** predictions for the same trace,
    which is the Section VII-C equivalence check.
    """

    _OP_OPCODES = {
        OpType.OP_JMP_DIRECT_UNCOND: Opcode(0b0000),
        OpType.OP_JMP_INDIRECT_UNCOND: Opcode(0b0010),
        OpType.OP_JMP_DIRECT_COND: Opcode(0b0001),
        OpType.OP_JMP_INDIRECT_COND: Opcode(0b0011),
        OpType.OP_CALL_DIRECT: Opcode(0b1000),
        OpType.OP_CALL_INDIRECT: Opcode(0b1010),
        OpType.OP_RET: Opcode(0b0110),
    }

    def __init__(self, inner: Predictor):
        self.inner = inner

    def _branch(self, pc: int, op_type: OpType, taken: bool,
                target: int) -> Branch:
        return Branch(pc, target, self._OP_OPCODES[op_type], taken)

    def get_prediction(self, pc: int) -> bool:
        """Delegate to the inner predictor's ``predict``."""
        return self.inner.predict(pc)

    def update_predictor(self, pc: int, op_type: OpType, resolve_dir: bool,
                         pred_dir: bool, branch_target: int) -> None:
        """``train`` then ``track`` with the resolved branch."""
        branch = self._branch(pc, op_type, resolve_dir, branch_target)
        self.inner.train(branch)
        self.inner.track(branch)

    def track_other_inst(self, pc: int, op_type: OpType,
                         branch_target: int) -> None:
        """``track`` only (non-conditional branches are always taken)."""
        self.inner.track(self._branch(pc, op_type, True, branch_target))
