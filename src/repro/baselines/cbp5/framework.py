"""A CBP5-style *framework* simulator.

This is the baseline MBPlib defines itself against, rebuilt with the
properties the paper attributes to it:

* **framework, not library** — :func:`cbp5_main` owns the whole run: it
  opens the trace, drives the loop and formats the report; user code only
  supplies the predictor object (the framework calls you);
* **plain-text traces** — every branch goes through the BT9 reader's
  line parser and graph lookups;
* **fused update** — conditional branches reach the predictor through a
  single ``update_predictor`` doing train+track at once.

Because both simulators are deterministic and drive predictors with the
same sequence, results are *identical* to the MBPlib-style simulator's —
the Section VII-C check, enforced by tests and a benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ...core.metrics import accuracy, mpki
from .bt9 import iter_bt9, read_bt9_header
from .interface import Cbp5Predictor, OpType

__all__ = ["Cbp5Result", "Cbp5Framework", "cbp5_main"]


@dataclass(frozen=True, slots=True)
class Cbp5Result:
    """What the championship framework reports per trace."""

    trace: str
    num_instructions: int
    num_branches: int
    num_conditional_branches: int
    mispredictions: int
    simulation_time: float

    @property
    def mpki(self) -> float:
        """Mispredictions per kilo-instruction."""
        return mpki(self.mispredictions, self.num_instructions)

    @property
    def accuracy(self) -> float:
        """Fraction of conditional branches predicted correctly."""
        return accuracy(self.mispredictions, self.num_conditional_branches)

    def report(self) -> str:
        """The championship-style text report."""
        return "\n".join([
            f"  TRACE            \t : {self.trace}",
            f"  NUM_INSTRUCTIONS \t : {self.num_instructions}",
            f"  NUM_BR           \t : {self.num_branches}",
            f"  NUM_CONDITIONAL_BR\t : {self.num_conditional_branches}",
            f"  NUM_MISPREDICTIONS\t : {self.mispredictions}",
            f"  MISPRED_PER_1K_INST\t : {self.mpki:.4f}",
        ])


class Cbp5Framework:
    """The framework object: constructed with a trace, runs a predictor.

    The separation from :func:`cbp5_main` mirrors the original's
    ``main.cc`` vs the simulation loop.
    """

    def __init__(self, trace_path: str | Path):
        self.trace_path = Path(trace_path)

    def run(self, predictor: Cbp5Predictor,
            instrumentation: Any = None) -> Cbp5Result:
        """Drive ``predictor`` over the whole trace (framework-style).

        ``instrumentation`` accepts :mod:`repro.telemetry` phase timers
        and records "header_read" and "simulate_loop" phases; because
        BT9 is a plain-text format parsed line by line, the loop phase
        here includes the parsing cost the paper's Section V attributes
        to the framework baseline.
        """
        instr = instrumentation
        start = time.perf_counter()
        header = read_bt9_header(self.trace_path)
        loop_start = 0.0
        if instr is not None:
            loop_start = time.perf_counter()
            instr.add_phase("header_read", loop_start - start)
        instructions = 0
        branches = 0
        conditional = 0
        mispredictions = 0
        for branch, gap in iter_bt9(self.trace_path):
            instructions += gap + 1
            branches += 1
            op_type = OpType.from_opcode(branch.opcode)
            if branch.opcode.is_conditional:
                conditional += 1
                prediction = predictor.get_prediction(branch.ip)
                if prediction != branch.taken:
                    mispredictions += 1
                predictor.update_predictor(
                    branch.ip, op_type, branch.taken, prediction,
                    branch.target,
                )
            else:
                predictor.track_other_inst(branch.ip, op_type, branch.target)
        # Trailing non-branch instructions recorded in the header.
        instructions = max(instructions, header.num_instructions)
        elapsed = time.perf_counter() - start
        if instr is not None:
            instr.add_phase("simulate_loop",
                            time.perf_counter() - loop_start)
        return Cbp5Result(
            trace=str(self.trace_path),
            num_instructions=instructions,
            num_branches=branches,
            num_conditional_branches=conditional,
            mispredictions=mispredictions,
            simulation_time=elapsed,
        )


def cbp5_main(predictor_factory: Callable[[], Cbp5Predictor],
              trace_paths: list[str | Path],
              emit: Callable[[str], None] | None = None) -> list[Cbp5Result]:
    """The framework's ``main``: it calls *your* code, then prints.

    This is exactly the inversion of control the paper criticizes — the
    entry point belongs to the framework, user code is a plug-in — kept
    here so the repository demonstrates both designs side by side.
    """
    results = []
    for path in trace_paths:
        framework = Cbp5Framework(path)
        result = framework.run(predictor_factory())
        if emit is not None:
            emit(result.report())
        results.append(result)
    return results
