"""The ``mbp serve`` wire protocol: newline-delimited JSON.

One connection carries a sequence of **frames**, each a single JSON
object on its own line (``\n``-terminated, UTF-8, no embedded
newlines — the encoder uses compact separators, so none can appear).
Requests and responses are correlated by an ``id`` field chosen by the
client and echoed verbatim; a client may pipeline several requests on
one connection and match replies by ``id`` (the server may answer out
of order once requests are in flight).

The full request/response schema — operations, fields, error codes —
is specified in ``docs/serve.md``; this module is the codec plus the
validation layer both the server and the client share, so a malformed
frame is rejected identically on either side of the socket.

Design rules:

* **framing is trivial** — ``readline`` is the whole parser, and a
  frame larger than ``max_bytes`` is a protocol error *before* any
  JSON work happens (the backpressure story starts at the codec);
* **errors are data** — every failure the server can express travels
  as an ``{"ok": false, "error": {"code", "message"}}`` frame with a
  code from :data:`ERROR_CODES`, never as a dropped connection
  (except ``too_large``, after which the line boundary is lost and
  the connection must close);
* **requests are validated once** — :func:`validate_request` fills
  defaults and type-checks every field, so the server's handlers only
  ever see well-formed requests.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "OPERATIONS",
    "ERROR_CODES",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "ok_response",
    "error_response",
    "validate_request",
]

#: Version stamped into every response; bump on incompatible changes.
PROTOCOL_VERSION = 1

#: Default cap on one frame's byte length (request or response line).
DEFAULT_MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Every operation a request may name.
OPERATIONS = ("ping", "stats", "simulate", "suite", "sweep", "shutdown")

#: Error code -> meaning.  Codes are part of the protocol contract
#: (documented in docs/serve.md); messages are human-readable detail.
ERROR_CODES = {
    "bad_request": "the frame is not a valid request object",
    "too_large": "the frame exceeds the server's frame size limit",
    "unknown_op": "the request names an operation the server lacks",
    "unknown_predictor": "the predictor name is not in the registry",
    "bad_trace": "a trace path could not be read or decoded",
    "simulation_failed": "the simulation raised instead of finishing",
    "timeout": "the request exceeded the server's time budget",
    "overloaded": "the client's queue is full; retry later",
    "shutting_down": "the server is draining and accepts no new work",
    "internal": "an unexpected server-side error",
}

#: Simulation-engine names accepted by the ``engine`` request field.
SIM_ENGINES = ("scalar", "vectorized", "auto")


class ProtocolError(Exception):
    """A frame violates the protocol.

    ``code`` is one of :data:`ERROR_CODES`; the message is safe to echo
    to the peer.
    """

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


# ----------------------------------------------------------------------
# Framing.
# ----------------------------------------------------------------------


def encode_frame(obj: dict[str, Any]) -> bytes:
    """One JSON object as a wire frame (compact, ASCII, newline-ended)."""
    return json.dumps(obj, separators=(",", ":"),
                      ensure_ascii=True).encode() + b"\n"


def decode_frame(line: bytes, *,
                 max_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> dict[str, Any]:
    """Parse one received line into a frame dict.

    Raises :class:`ProtocolError` (``too_large`` / ``bad_request``) on
    anything other than a JSON object within the size limit.
    """
    if len(line) > max_bytes:
        raise ProtocolError(
            "too_large",
            f"frame of {len(line)} bytes exceeds the {max_bytes}-byte limit")
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("bad_request", f"frame is not JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            "bad_request",
            f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


# ----------------------------------------------------------------------
# Response construction.
# ----------------------------------------------------------------------


def ok_response(request_id: Any, op: str,
                payload: dict[str, Any]) -> dict[str, Any]:
    """A success frame: id echo + ok + protocol stamp + the payload."""
    frame: dict[str, Any] = {
        "id": request_id,
        "ok": True,
        "op": op,
        "protocol": PROTOCOL_VERSION,
    }
    frame.update(payload)
    return frame


def error_response(request_id: Any, code: str,
                   message: str) -> dict[str, Any]:
    """An error frame carrying one of the :data:`ERROR_CODES`."""
    if code not in ERROR_CODES:
        code, message = "internal", f"[{code}] {message}"
    return {
        "id": request_id,
        "ok": False,
        "protocol": PROTOCOL_VERSION,
        "error": {"code": code, "message": message},
    }


# ----------------------------------------------------------------------
# Request validation.
# ----------------------------------------------------------------------


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError("bad_request", message)


def _check_common_sim_fields(request: dict[str, Any],
                             out: dict[str, Any]) -> None:
    """Validate the fields shared by simulate / suite / sweep."""
    predictor = request.get("predictor", "gshare")
    _require(isinstance(predictor, str) and bool(predictor),
             "'predictor' must be a non-empty string")
    out["predictor"] = predictor

    parameters = request.get("parameters", {})
    _require(isinstance(parameters, dict),
             "'parameters' must be an object of constructor arguments")
    _require(all(isinstance(key, str) for key in parameters),
             "'parameters' keys must be strings")
    out["parameters"] = parameters

    warmup = request.get("warmup", 0)
    _require(isinstance(warmup, int) and not isinstance(warmup, bool)
             and warmup >= 0, "'warmup' must be a non-negative integer")
    out["warmup"] = warmup

    max_instructions = request.get("max_instructions")
    _require(max_instructions is None
             or (isinstance(max_instructions, int)
                 and not isinstance(max_instructions, bool)
                 and max_instructions >= 0),
             "'max_instructions' must be a non-negative integer or null")
    out["max_instructions"] = max_instructions

    engine = request.get("engine")
    _require(engine is None or engine in SIM_ENGINES,
             f"'engine' must be one of {', '.join(SIM_ENGINES)}")
    out["engine"] = engine

    trace_id = request.get("trace_id")
    _require(trace_id is None
             or (isinstance(trace_id, str) and 0 < len(trace_id) <= 128),
             "'trace_id' must be a non-empty string of at most 128 "
             "characters or null")
    out["trace_id"] = trace_id


def _check_traces(request: dict[str, Any], out: dict[str, Any]) -> None:
    traces = request.get("traces")
    _require(isinstance(traces, list) and bool(traces),
             "'traces' must be a non-empty array of trace paths")
    _require(all(isinstance(path, str) and path for path in traces),
             "'traces' entries must be non-empty strings")
    out["traces"] = traces


def validate_request(frame: dict[str, Any]) -> dict[str, Any]:
    """Normalize one request frame, filling defaults.

    Returns a new dict with exactly the fields the named operation
    uses; raises :class:`ProtocolError` (``bad_request`` /
    ``unknown_op``) otherwise.  The ``id`` field passes through
    untouched (any JSON value, default ``None``).
    """
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad_request", "request needs a string 'op' field")
    if op not in OPERATIONS:
        raise ProtocolError(
            "unknown_op",
            f"unknown op {op!r}; expected one of {', '.join(OPERATIONS)}")
    out: dict[str, Any] = {"op": op, "id": frame.get("id")}

    if op in ("ping", "stats", "shutdown"):
        return out

    if op == "simulate":
        trace = frame.get("trace")
        _require(isinstance(trace, str) and bool(trace),
                 "'trace' must be a non-empty trace path string")
        out["trace"] = trace
        _check_common_sim_fields(frame, out)
        return out

    if op == "suite":
        _check_traces(frame, out)
        _check_common_sim_fields(frame, out)
        return out

    # sweep
    _check_traces(frame, out)
    _check_common_sim_fields(frame, out)
    parameter = frame.get("parameter")
    _require(isinstance(parameter, str) and bool(parameter),
             "'parameter' must be a non-empty constructor parameter name")
    out["parameter"] = parameter
    values = frame.get("values")
    _require(isinstance(values, list) and bool(values),
             "'values' must be a non-empty array of parameter values")
    _require(all(isinstance(value, (int, float, str))
                 and not isinstance(value, bool) for value in values),
             "'values' entries must be numbers or strings")
    out["values"] = values
    return out
