"""``repro.serve`` — simulation as a long-running service.

The service stack, bottom to top:

* :mod:`repro.serve.protocol` — the newline-delimited JSON codec and
  request validation shared by both sides of the socket;
* :mod:`repro.serve.server` — :class:`MbpServer`, the asyncio daemon
  composing the persistent :class:`~repro.core.engine.ExecutionEngine`
  (shared worker pool + resident traces), the content-addressed
  :class:`~repro.cache.SimulationCache` (multi-tenant result store)
  and request coalescing, behind per-client backpressure;
* :mod:`repro.serve.client` — :class:`MbpClient`, the blocking
  reference client behind ``mbp client``.

Start a daemon with ``mbp serve --socket mbp.sock``, or embed one with
:func:`start_in_thread`.  The full protocol reference and operational
guide live in ``docs/serve.md``.
"""

from .client import MbpClient, ServeError
from .protocol import (
    ERROR_CODES,
    OPERATIONS,
    PROTOCOL_VERSION,
    ProtocolError,
)
from .server import MbpServer, ServeConfig, ServerHandle, start_in_thread

__all__ = [
    "PROTOCOL_VERSION",
    "OPERATIONS",
    "ERROR_CODES",
    "ProtocolError",
    "ServeConfig",
    "MbpServer",
    "ServerHandle",
    "start_in_thread",
    "MbpClient",
    "ServeError",
]
