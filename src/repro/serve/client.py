"""A small synchronous client for the ``mbp serve`` daemon.

:class:`MbpClient` is the reference implementation of the protocol's
client side — stdlib sockets, blocking calls, one connection — used by
``mbp client``, the test suite and the load benchmark.  The protocol is
plain newline-delimited JSON, so any language with sockets and a JSON
parser can do what this module does in ~40 lines; ``docs/serve.md``
shows the equivalent raw exchange.

    >>> from repro.serve import MbpClient          # doctest: +SKIP
    >>> with MbpClient(socket_path="mbp.sock") as client:
    ...     client.ping()["version"]               # doctest: +SKIP
    'v1.0.0'
"""

from __future__ import annotations

import socket
from typing import Any, Iterable

from .protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
)

__all__ = ["ServeError", "MbpClient"]


class ServeError(Exception):
    """The server answered with an error frame.

    ``code`` is one of :data:`repro.serve.protocol.ERROR_CODES`;
    ``message`` is the server's human-readable detail.
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class MbpClient:
    """One blocking connection to an ``mbp serve`` daemon.

    Connects over the unix socket at ``socket_path`` (the default
    transport) or over TCP when ``host`` is given.  Each high-level
    method sends one request frame and blocks for its reply; the
    ``id`` field is assigned from a per-connection counter.  Error
    frames raise :class:`ServeError`.  Not thread-safe — use one
    client per thread (the server happily accepts many connections).
    """

    def __init__(self, socket_path: str | None = None, *,
                 host: str | None = None, port: int = 0,
                 timeout: float | None = 120.0,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
        if (socket_path is None) == (host is None):
            raise ValueError("pass exactly one of socket_path or host")
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(socket_path))
        else:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        self._max_frame_bytes = max_frame_bytes
        self._buffer = b""
        self._next_id = 0

    # ------------------------------------------------------------------
    # Wire plumbing.
    # ------------------------------------------------------------------

    def _read_line(self) -> bytes:
        while b"\n" not in self._buffer:
            if len(self._buffer) > self._max_frame_bytes:
                raise ProtocolError(
                    "too_large",
                    f"response frame exceeds {self._max_frame_bytes} bytes")
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError(
                    "server closed the connection mid-response")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line + b"\n"

    def request(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Send one raw request frame, block for its reply.

        Assigns ``id`` if the frame lacks one, raises
        :class:`ServeError` on an error reply, returns the success
        frame otherwise.  The escape hatch for operations the
        convenience methods don't cover.
        """
        frame = dict(frame)
        frame.setdefault("id", self._take_id())
        self._sock.sendall(encode_frame(frame))
        while True:
            reply = decode_frame(self._read_line(),
                                 max_bytes=self._max_frame_bytes)
            # Replies can interleave when requests are pipelined by
            # ``request_many``; a plain request just matches its id.
            if reply.get("id") == frame["id"] or reply.get("id") is None:
                break
        if not reply.get("ok"):
            error = reply.get("error") or {}
            raise ServeError(error.get("code", "internal"),
                             error.get("message", "unspecified error"))
        return reply

    def request_many(self,
                     frames: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
        """Pipeline several requests, return replies in request order.

        All frames are written before any reply is read, so the server
        can overlap and coalesce the work.  Error replies come back as
        :class:`ServeError` *instances* in the list (not raised), so
        one failed request doesn't hide the others' results.
        """
        frames = [dict(frame) for frame in frames]
        for frame in frames:
            frame.setdefault("id", self._take_id())
            self._sock.sendall(encode_frame(frame))
        pending = {frame["id"]: index for index, frame in enumerate(frames)}
        replies: list[Any] = [None] * len(frames)
        while pending:
            reply = decode_frame(self._read_line(),
                                 max_bytes=self._max_frame_bytes)
            index = pending.pop(reply.get("id"), None)
            if index is None:
                continue
            if reply.get("ok"):
                replies[index] = reply
            else:
                error = reply.get("error") or {}
                replies[index] = ServeError(
                    error.get("code", "internal"),
                    error.get("message", "unspecified error"))
        return replies

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "MbpClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Operations.
    # ------------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        """Round-trip liveness check; returns server name + version."""
        return self.request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        """The server's counters, queue gauges, engine + cache stats."""
        return self.request({"op": "stats"})

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to drain and stop."""
        return self.request({"op": "shutdown"})

    def simulate(self, trace: str, predictor: str = "gshare", *,
                 parameters: dict[str, Any] | None = None,
                 warmup: int = 0, max_instructions: int | None = None,
                 engine: str | None = None,
                 trace_id: str | None = None) -> dict[str, Any]:
        """Simulate one trace; the reply's ``result`` field is the full
        Listing-1 ``SimulationResult`` JSON.  ``trace_id`` tags the
        request's server-side spans (see ``docs/tracing.md``)."""
        return self.request({
            "op": "simulate", "trace": str(trace), "predictor": predictor,
            "parameters": parameters or {}, "warmup": warmup,
            "max_instructions": max_instructions, "engine": engine,
            "trace_id": trace_id})

    def suite(self, traces: list[str], predictor: str = "gshare", *,
              parameters: dict[str, Any] | None = None,
              warmup: int = 0, max_instructions: int | None = None,
              engine: str | None = None,
              trace_id: str | None = None) -> dict[str, Any]:
        """Simulate a predictor over several traces in one request."""
        return self.request({
            "op": "suite", "traces": [str(t) for t in traces],
            "predictor": predictor, "parameters": parameters or {},
            "warmup": warmup, "max_instructions": max_instructions,
            "engine": engine, "trace_id": trace_id})

    def sweep(self, traces: list[str], predictor: str, parameter: str,
              values: list[Any], *,
              parameters: dict[str, Any] | None = None,
              warmup: int = 0, max_instructions: int | None = None,
              engine: str | None = None,
              trace_id: str | None = None) -> dict[str, Any]:
        """Sweep one constructor parameter over a suite of traces."""
        return self.request({
            "op": "sweep", "traces": [str(t) for t in traces],
            "predictor": predictor, "parameter": parameter,
            "values": list(values), "parameters": parameters or {},
            "warmup": warmup, "max_instructions": max_instructions,
            "engine": engine, "trace_id": trace_id})


def _protocol_version() -> int:
    """The protocol version this client speaks (for ``mbp client``)."""
    return PROTOCOL_VERSION
