"""The ``mbp serve`` daemon: simulation as a long-running service.

The library already has every primitive a server needs — the
persistent :class:`~repro.core.engine.ExecutionEngine` (one worker
pool, traces resident in shared memory), the content-addressed
:class:`~repro.cache.SimulationCache` (deterministic results keyed by
*what* was simulated) and :func:`~repro.core.predictor.derive_spec`
cheap keying.  :class:`MbpServer` composes them behind an asyncio
front-end speaking the newline-delimited JSON protocol of
:mod:`repro.serve.protocol`:

* **one engine, many clients** — every connection shares the worker
  pool and the resident-trace registry, so the Nth client simulating a
  trace pays no decode and no ship;
* **request coalescing** — identical in-flight work, keyed by the same
  ``(trace digest, predictor spec, config)`` key the cache uses (plus
  the simulation engine), is computed **once**; later arrivals await
  the first computation's task and are counted as ``serve_coalesced``;
* **multi-tenant result store** — completed simulations land in the
  shared cache, so a result computed for one client serves every
  later client (and every later server over the same directory);
* **backpressure** — each client owns a bounded queue (an over-full
  client gets an immediate ``overloaded`` error, other clients are
  unaffected), queued work is drained **round-robin across clients**
  (one greedy client cannot starve the rest), concurrent dispatches
  are capped, and every request carries a server-side time budget
  that degrades into a clean ``timeout`` error frame — the underlying
  computation still completes and lands in the cache for the retry.

Observability rides :mod:`repro.telemetry`: the server keeps a
:class:`~repro.telemetry.PhaseTimers` whose counters
(``serve_requests``, ``serve_units``, ``serve_coalesced``,
``serve_cache_hits``, ``serve_cache_misses``, ``serve_timeouts``,
``serve_rejected``, ``serve_errors``) and phases
(``serve_cache_lookup``, ``serve_dispatch``) are reported — next to
the engine's own :class:`~repro.core.engine.EngineStats` and the
cache's :class:`~repro.cache.CacheStats` — by the ``stats`` operation
and by ``mbp client stats``.

Protocol reference, operational guide and examples: ``docs/serve.md``.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import os
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from ..cache import SimulationCache, resolve_cache_dir
from ..core.output import SIMULATOR_VERSION
from ..core.plan import WorkPlan, WorkUnit, _batch_groups, execute_plan
from ..core.predictor import derive_spec
from ..core.simulator import SimulationConfig
from ..sbbt.digest import trace_digest
from ..telemetry import PhaseTimers
from ..tracing import (
    NULL_TRACER,
    JsonlSpanSink,
    SpanRecorder,
    TraceContext,
    resolve_trace_dir,
)
from .protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    ProtocolError,
    error_response,
    ok_response,
    validate_request,
)

__all__ = ["ServeConfig", "MbpServer", "ServerHandle", "start_in_thread"]


@dataclass(slots=True)
class ServeConfig:
    """Everything that shapes one :class:`MbpServer`.

    Exactly one listener is opened: a unix socket at ``socket_path``
    (the default transport), or TCP when ``host`` is set.  ``workers``
    selects the execution backend — ``>= 1`` wraps a persistent
    :class:`~repro.core.engine.ExecutionEngine` with that many worker
    processes; ``0`` runs simulations on an in-process thread pool
    (no multiprocessing — handy for embedding, tests and doctests).

    ``cache_dir=None`` resolves through
    :func:`repro.cache.resolve_cache_dir` (``MBP_CACHE_DIR``) and, when
    that is unset too, falls back to a private temporary directory that
    lives exactly as long as the server — the service is *always*
    cache-backed, because coalescing alone cannot serve a repeat
    request that arrives after the first one finished.

    ``trace_dir`` resolves through
    :func:`repro.tracing.resolve_trace_dir` (``MBP_TRACE_DIR``); when
    it lands on a directory, every request grows a span tree (queueing,
    cache lookup, coalescing, dispatch, worker simulation, reply
    encode) streamed to ``serve-<pid>.jsonl`` there.  Unset (the
    default), tracing is the zero-overhead null object.
    """

    socket_path: str | None = None
    host: str | None = None
    port: int = 0
    workers: int = 1
    start_method: str | None = None
    cache_dir: str | None = None
    trace_dir: str | None = None
    sim_engine: str = "auto"
    batch: str = "auto"
    max_queue: int = 64
    max_inflight: int | None = None
    request_timeout: float | None = 60.0
    max_request_bytes: int = DEFAULT_MAX_FRAME_BYTES
    drain_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.batch not in ("auto", "off"):
            raise ValueError(
                f"batch must be 'auto' or 'off', got {self.batch!r}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.socket_path is not None and self.host is not None:
            raise ValueError("configure a unix socket or TCP, not both")


@dataclass(slots=True)
class _Client:
    """Per-connection state: the bounded queue and the reply writer."""

    client_id: int
    writer: asyncio.StreamWriter
    queue: deque = field(default_factory=deque)
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)


class _Failure(Exception):
    """An operation unit failed; carries the protocol error code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


def _predictor_factory(name: str,
                       parameters: dict[str, Any]) -> Callable[[], Any]:
    """A picklable zero-argument factory for ``name`` (+ overrides)."""
    from ..registry import UnknownPredictorError, predictor_factory

    try:
        return predictor_factory(name, parameters)
    except UnknownPredictorError as exc:
        raise ProtocolError("unknown_predictor", str(exc)) from None


class MbpServer:
    """The asyncio front-end over engine + cache (see module docstring).

    Lifecycle: ``await server.run()`` inside a fresh event loop (the
    CLI does this), or :func:`start_in_thread` for embedding.  A
    ``shutdown`` request, :meth:`request_shutdown` or cancelling
    ``run`` all drain cleanly: listeners close first, in-flight work
    is given ``drain_timeout`` seconds, then the engine is closed
    (unlinking every shared-memory segment) and the socket file is
    removed.
    """

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.telemetry = PhaseTimers()
        self.tracer = NULL_TRACER
        self._trace_sink: JsonlSpanSink | None = None
        #: coalesce key -> the leader's serve_compute context, so a
        #: coalesced request can record which span it piggybacked on.
        self._inflight_spans: dict[tuple, TraceContext] = {}
        self.cache: SimulationCache | None = None
        self.engine = None  # ExecutionEngine when workers >= 1
        self.bound: tuple | None = None  # ("unix", path) | ("tcp", host, port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._clients: dict[int, _Client] = {}
        self._next_client_id = 0
        self._rr_cursor = -1
        self._queued = 0
        self._queued_peak = 0
        self._work_available: asyncio.Event | None = None
        self._stop_event: asyncio.Event | None = None
        self._stopping = False
        self._scheduler_task: asyncio.Task | None = None
        self._job_slots: asyncio.Semaphore | None = None
        self._job_tasks: set[asyncio.Task] = set()
        #: coalesce key -> the single in-flight computation task.
        self._inflight: dict[tuple, asyncio.Task] = {}
        #: serializes batched prewarms (one engine.run_plan at a time).
        self._batch_lock: asyncio.Lock | None = None
        self._dispatch_sem: asyncio.Semaphore | None = None
        self._io: ThreadPoolExecutor | None = None
        self._thread_pool: ThreadPoolExecutor | None = None
        self._tmp_cache: tempfile.TemporaryDirectory | None = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Open the listener and start the scheduler."""
        cfg = self.config
        self._loop = asyncio.get_running_loop()
        self._work_available = asyncio.Event()
        self._stop_event = asyncio.Event()
        inflight = cfg.max_inflight
        if inflight is None:
            inflight = max(2, 2 * cfg.workers)
        self._dispatch_sem = asyncio.Semaphore(inflight)
        # Job slots make the queue bound real: work beyond `inflight`
        # concurrent requests *stays queued* (where round-robin picks
        # it and the overloaded bound can see it) instead of unrolling
        # into unbounded in-flight tasks.
        self._job_slots = asyncio.Semaphore(inflight)
        self._io = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="mbp-serve-io")

        cache_dir = resolve_cache_dir(cfg.cache_dir)
        if cache_dir is None:
            self._tmp_cache = tempfile.TemporaryDirectory(prefix="mbp-serve-")
            cache_dir = self._tmp_cache.name
        self.cache = SimulationCache(cache_dir)

        trace_dir = resolve_trace_dir(cfg.trace_dir)
        if trace_dir is not None:
            self._trace_sink = JsonlSpanSink(
                Path(trace_dir) / f"serve-{os.getpid()}.jsonl")
            self.tracer = SpanRecorder(sink=self._trace_sink)

        if cfg.workers >= 1:
            from ..core.engine import ExecutionEngine

            self.engine = ExecutionEngine(workers=cfg.workers,
                                          start_method=cfg.start_method)
        else:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="mbp-serve-sim")

        limit = cfg.max_request_bytes + 2
        if cfg.host is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, cfg.host, cfg.port, limit=limit)
            sockname = self._server.sockets[0].getsockname()
            self.bound = ("tcp", sockname[0], sockname[1])
        else:
            path = cfg.socket_path or "mbp-serve.sock"
            with contextlib.suppress(OSError):
                os.unlink(path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path, limit=limit)
            self.bound = ("unix", str(path))
        self._scheduler_task = asyncio.ensure_future(self._scheduler())

    async def run(self, *, ready: threading.Event | None = None) -> None:
        """Start, serve until shutdown is requested, then drain."""
        await self.start()
        try:
            if ready is not None:
                ready.set()
            await self._stop_event.wait()
        finally:
            await self._shutdown()

    def request_shutdown(self) -> None:
        """Ask a running server to stop (safe from any thread)."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        with contextlib.suppress(RuntimeError):
            # The loop may already be closed: stopping twice is a no-op.
            loop.call_soon_threadsafe(event.set)

    async def _shutdown(self) -> None:
        self._stopping = True
        self._stop_event.set()
        self._work_available.set()  # wake the scheduler so it can exit
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._scheduler_task
        # Unprocessed queue entries get a clean refusal, not silence.
        for client in list(self._clients.values()):
            while client.queue:
                request, _, _ = client.queue.popleft()
                self._queued -= 1
                await self._send(client, error_response(
                    request.get("id"), "shutting_down",
                    "server is shutting down"))
        pending = [task for task in (*self._job_tasks, *self._inflight.values())
                   if not task.done()]
        if pending:
            done, live = await asyncio.wait(
                pending, timeout=self.config.drain_timeout)
            for task in live:
                task.cancel()
            if live:
                await asyncio.wait(live, timeout=1.0)
        for client in list(self._clients.values()):
            client.writer.close()
            with contextlib.suppress(Exception):
                await client.writer.wait_closed()
        self._clients.clear()
        if self.engine is not None:
            self.engine.close()
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=False, cancel_futures=True)
        if self._io is not None:
            self._io.shutdown(wait=False, cancel_futures=True)
        if self.bound is not None and self.bound[0] == "unix":
            with contextlib.suppress(OSError):
                os.unlink(self.bound[1])
        if self._trace_sink is not None:
            self._trace_sink.close()
        if self._tmp_cache is not None:
            with contextlib.suppress(OSError):
                self._tmp_cache.cleanup()

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        client = _Client(self._next_client_id, writer)
        self._next_client_id += 1
        self._clients[client.client_id] = client
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # The stream limit tripped: the line boundary is
                    # lost, so reply and close this connection.
                    self.telemetry.count("serve_errors")
                    await self._send(client, error_response(
                        None, "too_large",
                        f"request frame exceeds "
                        f"{self.config.max_request_bytes} bytes"))
                    break
                if not line:
                    break
                await self._handle_frame(client, line)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._clients.pop(client.client_id, None)
            self._queued -= len(client.queue)
            client.queue.clear()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_frame(self, client: _Client, line: bytes) -> None:
        from .protocol import decode_frame

        request_id = None
        try:
            frame = decode_frame(
                line, max_bytes=self.config.max_request_bytes)
            request_id = frame.get("id")
            request = validate_request(frame)
        except ProtocolError as exc:
            self.telemetry.count("serve_errors")
            await self._send(client, error_response(
                request_id, exc.code, exc.message))
            return
        self.telemetry.count("serve_requests")
        op = request["op"]
        if self._stopping:
            await self._send(client, error_response(
                request_id, "shutting_down", "server is shutting down"))
            return
        # Control operations answer inline and never queue.
        if op == "ping":
            await self._send(client, ok_response(request_id, "ping", {
                "server": "mbp-serve", "version": SIMULATOR_VERSION}))
            return
        if op == "stats":
            await self._send(client, ok_response(
                request_id, "stats", await self._stats_payload()))
            return
        if op == "shutdown":
            await self._send(client, ok_response(
                request_id, "shutdown", {"stopping": True}))
            self._stop_event.set()
            return
        # Work operations: bounded per-client queue = the backpressure
        # edge.  A full queue refuses *this* client only.
        if len(client.queue) >= self.config.max_queue:
            self.telemetry.count("serve_rejected")
            await self._send(client, error_response(
                request_id, "overloaded",
                f"client queue is full ({self.config.max_queue} pending); "
                "retry after a response arrives"))
            return
        # Entries carry their enqueue stamps so the request's trace can
        # show queueing time as its own span.
        client.queue.append((request, time.time(), time.perf_counter()))
        self._queued += 1
        self._queued_peak = max(self._queued_peak, self._queued)
        self._work_available.set()

    async def _send(self, client: _Client, frame: dict[str, Any]) -> None:
        from .protocol import encode_frame

        data = encode_frame(frame)
        try:
            async with client.write_lock:
                client.writer.write(data)
                await client.writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # client went away; its result stays in the cache

    # ------------------------------------------------------------------
    # Scheduling: round-robin fairness across client queues.
    # ------------------------------------------------------------------

    def _pick_job(self) -> tuple[_Client, dict[str, Any],
                                 float, float] | None:
        """The next queued request, rotating across clients by id."""
        waiting = sorted(cid for cid, client in self._clients.items()
                         if client.queue)
        if not waiting:
            return None
        chosen = next((cid for cid in waiting if cid > self._rr_cursor),
                      waiting[0])
        self._rr_cursor = chosen
        client = self._clients[chosen]
        request, enqueued_wall, enqueued_perf = client.queue.popleft()
        self._queued -= 1
        return client, request, enqueued_wall, enqueued_perf

    async def _scheduler(self) -> None:
        while True:
            await self._job_slots.acquire()
            picked = self._pick_job()
            while picked is None:
                if self._stopping:
                    self._job_slots.release()
                    return
                self._work_available.clear()
                await self._work_available.wait()
                picked = self._pick_job()
            client, request, enqueued_wall, enqueued_perf = picked
            task = asyncio.ensure_future(
                self._run_job(client, request, enqueued_wall, enqueued_perf))
            self._job_tasks.add(task)
            task.add_done_callback(self._finish_job)

    def _finish_job(self, task: asyncio.Task) -> None:
        self._job_tasks.discard(task)
        self._job_slots.release()

    async def _run_job(self, client: _Client, request: dict[str, Any],
                       enqueued_wall: float, enqueued_perf: float) -> None:
        request_id = request["id"]
        op = request["op"]
        trace_id = request.get("trace_id")
        answer = {"simulate": self._answer_simulate,
                  "suite": self._answer_suite,
                  "sweep": self._answer_sweep}[op]
        trc = self.tracer
        # One root span per request; a client-chosen trace_id links the
        # server-side tree into the client's own trace.
        with trc.span("serve_request", trace_id=trace_id,
                      attributes={"op": op,
                                  "client": client.client_id}) as req_span:
            ctx = req_span.context
            trc.add_span("serve_queue",
                         time.perf_counter() - enqueued_perf,
                         parent=ctx, start=enqueued_wall,
                         attributes={"depth": self._queued})
            try:
                if self.config.request_timeout is not None:
                    payload = await asyncio.wait_for(
                        answer(request, ctx), self.config.request_timeout)
                else:
                    payload = await answer(request, ctx)
                frame = ok_response(request_id, op, payload)
            except asyncio.TimeoutError:
                self.telemetry.count("serve_timeouts")
                req_span.set_status("error")
                frame = error_response(
                    request_id, "timeout",
                    f"request exceeded the server's "
                    f"{self.config.request_timeout:g}s budget (the "
                    "computation continues and will serve a retry from "
                    "the cache)")
            except ProtocolError as exc:
                self.telemetry.count("serve_errors")
                req_span.set_status("error")
                frame = error_response(request_id, exc.code, exc.message)
            except _Failure as exc:
                self.telemetry.count("serve_errors")
                req_span.set_status("error")
                frame = error_response(request_id, exc.code, exc.message)
            except Exception as exc:  # noqa: BLE001 - never drop a reply
                self.telemetry.count("serve_errors")
                req_span.set_status("error")
                frame = error_response(
                    request_id, "internal", f"{type(exc).__name__}: {exc}")
            if trace_id is not None:
                frame["trace_id"] = trace_id
            with trc.span("serve_reply", parent=ctx,
                          attributes={"ok": bool(frame.get("ok"))}):
                await self._send(client, frame)

    # ------------------------------------------------------------------
    # The shared simulation unit: coalesce -> cache -> dispatch.
    # ------------------------------------------------------------------

    async def _simulate_unit(self, unit: WorkUnit,
                             ctx: TraceContext | None = None,
                             ) -> dict[str, Any]:
        """One :class:`~repro.core.plan.WorkUnit` through the full funnel.

        Returns the response entry
        ``{"trace", "result", "from_cache", "coalesced"}``; raises
        :class:`_Failure` with a protocol error code otherwise.
        ``ctx`` is the request's trace context; the unit's spans
        (``serve_unit`` → ``serve_cache_lookup`` / ``serve_compute``)
        nest under it.
        """
        loop = asyncio.get_running_loop()
        trc = self.tracer
        self.telemetry.count("serve_units")
        with trc.span("serve_unit", parent=ctx,
                      attributes={"unit": unit.name}) as unit_span:
            start = time.perf_counter()
            start_wall = time.time()
            try:
                key = await loop.run_in_executor(self._io, self._derive_key,
                                                 unit)
            except ProtocolError:
                unit_span.set_status("error")
                raise
            except TypeError as exc:
                unit_span.set_status("error")
                raise ProtocolError(
                    "bad_request",
                    f"cannot configure predictor: {exc}") from None
            except Exception as exc:  # noqa: BLE001 - unreadable trace etc.
                unit_span.set_status("error")
                raise _Failure(
                    "bad_trace", f"{type(exc).__name__}: {exc}") from None
            finally:
                elapsed = time.perf_counter() - start
                self.telemetry.add_phase("serve_cache_lookup", elapsed)
                trc.add_span("serve_cache_lookup", elapsed,
                             parent=unit_span.context, start=start_wall)
            coalesce_key = (key, unit.sim_engine)
            task = self._inflight.get(coalesce_key)
            coalesced = task is not None
            if coalesced:
                self.telemetry.count("serve_coalesced")
                unit_span.set_attribute("coalesced", True)
                leader = self._inflight_spans.get(coalesce_key)
                if leader is not None:
                    # The span link across requests: this request waited
                    # on another request's serve_compute span.
                    unit_span.set_attribute("leader_span", leader.span_id)
                    unit_span.set_attribute("leader_trace", leader.trace_id)
            else:
                # Pre-mint the compute span's context so coalesced
                # followers can link to it while it is still open.
                compute_ctx = trc.child(unit_span.context)
                task = asyncio.ensure_future(
                    self._compute(key, unit, compute_ctx))
                self._inflight[coalesce_key] = task
                if compute_ctx is not None:
                    self._inflight_spans[coalesce_key] = compute_ctx

                def _done(_t: asyncio.Task) -> None:
                    self._inflight.pop(coalesce_key, None)
                    self._inflight_spans.pop(coalesce_key, None)

                task.add_done_callback(_done)
            # Shielded: a timed-out or disconnected requester must not
            # cancel the computation other requesters are coalesced onto
            # (and whose result the cache wants either way).
            status, payload = await asyncio.shield(task)
            if status != "ok":
                unit_span.set_status("error")
                raise _Failure(payload["code"], payload["message"])
            return {"trace": unit.trace, "result": payload["result"],
                    "from_cache": payload["from_cache"],
                    "coalesced": coalesced}

    def _derive_key(self, unit: WorkUnit) -> str:
        """Blocking half of the keying (runs on the io executor)."""
        spec, _ = derive_spec(unit.factory)
        return SimulationCache.make_key(trace_digest(unit.trace), spec,
                                        unit.config)

    async def _compute(self, key: str, unit: WorkUnit,
                       ctx: TraceContext | None = None,
                       ) -> tuple[str, dict[str, Any]]:
        """The single computation behind one coalesce key.

        Never raises: resolves to ``("ok", {result, from_cache})`` or
        ``("failure", {code, message})`` so every coalesced awaiter
        sees the same outcome.  ``ctx`` is the pre-minted context of
        this computation's ``serve_compute`` span (pre-minted so
        coalesced followers can link to it while it is in flight).
        """
        loop = asyncio.get_running_loop()
        trc = self.tracer
        with trc.span("serve_compute", context=ctx) as comp_span:
            try:
                cached = await loop.run_in_executor(self._io,
                                                    self.cache.get, key)
                if cached is not None:
                    self.telemetry.count("serve_cache_hits")
                    comp_span.set_attribute("from_cache", True)
                    cached.trace_name = unit.name
                    return "ok", {"result": cached.to_json(),
                                  "from_cache": True}
                self.telemetry.count("serve_cache_misses")
                comp_span.set_attribute("from_cache", False)
                start = time.perf_counter()
                try:
                    async with self._dispatch_sem:
                        with trc.span("serve_dispatch",
                                      parent=comp_span.context) as disp:
                            outcome = await self._dispatch(unit,
                                                           disp.context)
                finally:
                    self.telemetry.add_phase(
                        "serve_dispatch", time.perf_counter() - start)
                from ..core.batch import TraceFailure

                if isinstance(outcome, TraceFailure):
                    comp_span.set_status("error")
                    return "failure", {"code": "simulation_failed",
                                       "message": outcome.error}
                await loop.run_in_executor(self._io, self.cache.put, key,
                                           outcome)
                return "ok", {"result": outcome.to_json(),
                              "from_cache": False}
            except Exception as exc:  # noqa: BLE001 - coalesced fan-out
                if (isinstance(exc, BrokenProcessPool)
                        and self.engine is not None):
                    self.engine.recover()
                comp_span.set_status("error")
                return "failure", {"code": "internal",
                                   "message": f"{type(exc).__name__}: {exc}"}

    async def _dispatch(self, unit: WorkUnit,
                        ctx: TraceContext | None = None):
        """Run one work unit on the configured backend.

        With tracing on, the engine path ships ``ctx`` into the worker
        on the chunk payload (its ``attach`` / ``simulate`` spans come
        back parented under it); the thread path records one
        ``simulate`` span in-process.
        """
        loop = asyncio.get_running_loop()
        trc = self.tracer
        if self.engine is not None:
            # submit_unit() publishes the trace (a decode on first touch)
            # — blocking work, so it runs on the io executor too.
            submit = functools.partial(
                self.engine.submit_unit, unit,
                trace_wire=ctx.to_wire() if ctx is not None else None,
                tracer=trc if trc.enabled else None)
            future = await loop.run_in_executor(self._io, submit)
            return await asyncio.wrap_future(future)
        from ..core.batch import TraceFailure, _run_one

        start_wall = time.time()
        start = time.perf_counter()
        outcome = await loop.run_in_executor(
            self._thread_pool, functools.partial(
                _run_one, unit.factory, unit.trace, unit.config, unit.name,
                sim_engine=unit.sim_engine))
        trc.add_span(
            "simulate", time.perf_counter() - start, parent=ctx,
            start=start_wall,
            status=("error" if isinstance(outcome, TraceFailure)
                    else "ok"),
            attributes={"unit": unit.name, "backend": "thread",
                        "sim_engine": unit.sim_engine})
        return outcome

    # ------------------------------------------------------------------
    # Operations.
    # ------------------------------------------------------------------

    @staticmethod
    def _sim_config(request: dict[str, Any]) -> SimulationConfig:
        return SimulationConfig(
            warmup_instructions=request["warmup"],
            max_instructions=request["max_instructions"])

    def _sim_engine(self, request: dict[str, Any]) -> str:
        return request["engine"] or self.config.sim_engine

    async def _answer_simulate(self, request: dict[str, Any],
                               ctx: TraceContext | None = None,
                               ) -> dict[str, Any]:
        factory = _predictor_factory(request["predictor"],
                                     request["parameters"])
        unit = WorkUnit(factory=factory, trace=request["trace"],
                        name=str(request["trace"]),
                        config=self._sim_config(request),
                        sim_engine=self._sim_engine(request))
        entry = await self._simulate_unit(unit, ctx)
        entry["predictor"] = request["predictor"]
        return entry

    async def _prewarm_batch(self, units: Sequence[WorkUnit],
                             ctx: TraceContext | None = None) -> None:
        """Warm the cache with one batched pass over a multi-unit request.

        Best-effort fast path for ``suite``/``sweep`` requests: the
        request's units go through :func:`execute_plan` with batching
        on, so cache-missed units sharing a trace are evaluated in one
        stacked pass per predictor family instead of one dispatch per
        unit.  Results land in the shared cache; the per-unit funnel
        that follows — coalescing, error frames, reply shapes — then
        answers from warm entries.  Any failure here is swallowed: the
        per-unit path re-runs (and properly reports) whatever the
        prewarm did not cover.  Prewarms are serialized so at most one
        ``engine.run_plan`` generator is live at a time.
        """
        if self.config.batch != "auto" or self.cache is None:
            return
        if len(units) < 2:
            return
        plan = WorkPlan(units=tuple(units))
        groups, _ = _batch_groups(plan, range(len(plan)))
        if not groups:
            return
        if self._batch_lock is None:
            self._batch_lock = asyncio.Lock()
        loop = asyncio.get_running_loop()
        trc = self.tracer
        timers = PhaseTimers()

        def _run(parent: TraceContext | None) -> None:
            execute_plan(plan, engine=self.engine, cache=self.cache,
                         instrumentation=timers,
                         tracer=trc if trc.enabled else None,
                         trace_parent=parent)

        async with self._batch_lock:
            with trc.span("serve_batch_prewarm", parent=ctx,
                          attributes={"units": len(plan),
                                      "groups": len(groups)}) as span:
                start = time.perf_counter()
                try:
                    await loop.run_in_executor(
                        self._io, _run,
                        span.context if trc.enabled else None)
                except Exception:  # noqa: BLE001 - best-effort fast path
                    span.set_status("error")
                    self.telemetry.count("serve_batch_errors")
                    return
                finally:
                    self.telemetry.add_phase(
                        "serve_batch_prewarm", time.perf_counter() - start)
        counters = timers.counters
        if counters.get("batch_groups"):
            self.telemetry.count("serve_batch_groups",
                                 counters["batch_groups"])
            self.telemetry.count("serve_batch_units",
                                 counters.get("batch_units", 0))
        if counters.get("context_reuse"):
            self.telemetry.count("serve_context_reuse",
                                 counters["context_reuse"])

    async def _gather_units(self, units: Sequence[WorkUnit],
                            ctx: TraceContext | None = None,
                            ) -> tuple[list[dict], list[dict]]:
        """Every unit through :meth:`_simulate_unit`, failures collected."""
        outcomes = await asyncio.gather(
            *(self._simulate_unit(unit, ctx) for unit in units),
            return_exceptions=True)
        results: list[dict] = []
        failures: list[dict] = []
        for unit, outcome in zip(units, outcomes):
            if isinstance(outcome, dict):
                results.append(outcome)
            elif isinstance(outcome, (_Failure, ProtocolError)):
                failures.append({"trace": unit.trace, "code": outcome.code,
                                 "error": outcome.message})
            else:  # pragma: no cover - unexpected exception type
                failures.append({"trace": unit.trace, "code": "internal",
                                 "error": repr(outcome)})
        return results, failures

    @staticmethod
    def _aggregate(results: list[dict]) -> dict[str, Any]:
        mpkis = [entry["result"]["metrics"]["mpki"] for entry in results]
        mispredictions = sum(entry["result"]["metrics"]["mispredictions"]
                             for entry in results)
        instructions = sum(entry["result"]["metadata"]["simulation_instr"]
                           for entry in results)
        return {
            "mean_mpki": sum(mpkis) / len(mpkis) if mpkis else None,
            "aggregate_mpki": (1000.0 * mispredictions / instructions
                               if instructions else 0.0),
            "total_mispredictions": mispredictions,
            "cache_hits": sum(entry["from_cache"] for entry in results),
            "coalesced": sum(entry["coalesced"] for entry in results),
        }

    async def _answer_suite(self, request: dict[str, Any],
                            ctx: TraceContext | None = None,
                            ) -> dict[str, Any]:
        factory = _predictor_factory(request["predictor"],
                                     request["parameters"])
        # Lower the request into the shared WorkPlan IR; the per-unit
        # funnel keeps coalescing and caching request-granular.
        plan = WorkPlan.for_suite(factory, request["traces"],
                                  self._sim_config(request),
                                  sim_engine=self._sim_engine(request))
        await self._prewarm_batch(plan.units, ctx)
        results, failures = await self._gather_units(plan.units, ctx)
        return {"predictor": request["predictor"], "results": results,
                "failures": failures, "aggregate": self._aggregate(results)}

    async def _answer_sweep(self, request: dict[str, Any],
                            ctx: TraceContext | None = None,
                            ) -> dict[str, Any]:
        config = self._sim_config(request)
        sim_engine = self._sim_engine(request)
        all_parameters: list[dict[str, Any]] = []
        factories: list[tuple[int, Callable[[], Any]]] = []
        for tag, value in enumerate(request["values"]):
            parameters = dict(request["parameters"])
            parameters[request["parameter"]] = value
            all_parameters.append(parameters)
            factories.append(
                (tag, _predictor_factory(request["predictor"], parameters)))
        plan = WorkPlan.for_points(factories, request["traces"], config,
                                   sim_engine=sim_engine)
        by_tag: dict[int, list[WorkUnit]] = {}
        for unit in plan:
            by_tag.setdefault(unit.tag, []).append(unit)
        # One prewarm over the whole sweep: the config axis across
        # points is exactly what the batched evaluator stacks.
        await self._prewarm_batch(plan.units, ctx)
        points: list[dict[str, Any]] = []
        # Points stay sequential (each one's traces fan out) so a sweep
        # request cannot monopolize the dispatch slots in one burst.
        for tag, parameters in enumerate(all_parameters):
            results, failures = await self._gather_units(
                by_tag.get(tag, []), ctx)
            point = {"parameters": parameters}
            point.update(self._aggregate(results))
            point["failures"] = failures
            points.append(point)
        scored = [point for point in points
                  if point["mean_mpki"] is not None]
        best = min(scored, key=lambda point: point["mean_mpki"],
                   default=None)
        return {
            "predictor": request["predictor"],
            "parameter": request["parameter"],
            "points": points,
            "best": None if best is None else {
                "parameters": best["parameters"],
                "mean_mpki": best["mean_mpki"],
            },
        }

    async def _stats_payload(self) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        cache_stats = await loop.run_in_executor(self._io, self.cache.stats)
        return {
            "counters": dict(self.telemetry.counters),
            "phases": dict(self.telemetry.phases),
            "queue": {"depth": self._queued, "peak": self._queued_peak,
                      "limit_per_client": self.config.max_queue},
            "inflight": len(self._inflight),
            "clients": len(self._clients),
            "engine": (self.engine.stats.to_json()
                       if self.engine is not None else None),
            "cache": cache_stats.to_json(),
            "tracing": {
                "enabled": self.tracer.enabled,
                "log": (str(self._trace_sink.path)
                        if self._trace_sink is not None else None),
            },
            "server": {
                "workers": self.config.workers,
                "sim_engine": self.config.sim_engine,
                "batch": self.config.batch,
                "address": list(self.bound) if self.bound else None,
                "request_timeout": self.config.request_timeout,
            },
        }


# ----------------------------------------------------------------------
# Embedding: run a server on a background thread.
# ----------------------------------------------------------------------


class ServerHandle:
    """A server running on its own thread (from :func:`start_in_thread`).

    ``socket_path`` / ``address`` locate the listener; :meth:`stop`
    drains and joins.  Usable as a context manager.
    """

    def __init__(self, server: MbpServer, thread: threading.Thread):
        self.server = server
        self._thread = thread

    @property
    def address(self) -> tuple:
        """``("unix", path)`` or ``("tcp", host, port)``."""
        return self.server.bound

    @property
    def socket_path(self) -> str | None:
        """The unix socket path, or ``None`` for a TCP server."""
        bound = self.server.bound
        return bound[1] if bound and bound[0] == "unix" else None

    def stop(self, timeout: float = 60.0) -> None:
        """Request shutdown and wait for the server thread to exit."""
        self.server.request_shutdown()
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_in_thread(config: ServeConfig | None = None,
                    *, timeout: float = 60.0) -> ServerHandle:
    """Start an :class:`MbpServer` on a daemon thread and wait until
    it is accepting connections.

    The embedding entry point used by tests, doctests and notebook
    sessions; the CLI daemon (`mbp serve`) runs the loop on the main
    thread instead.
    """
    server = MbpServer(config)
    ready = threading.Event()
    startup_error: list[BaseException] = []

    def _runner() -> None:
        try:
            asyncio.run(server.run(ready=ready))
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            startup_error.append(exc)
        finally:
            ready.set()

    thread = threading.Thread(target=_runner, name="mbp-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout):
        server.request_shutdown()
        raise TimeoutError("mbp serve did not start within the timeout")
    if startup_error:
        raise RuntimeError(
            f"mbp serve failed to start: {startup_error[0]!r}")
    return ServerHandle(server, thread)
