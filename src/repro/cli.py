"""Command-line interface: ``mbp <subcommand>``.

Small front doors over the library — the library itself stays the
primary interface (user code calls it), but the everyday chores are one
command away:

* ``mbp simulate``  — run a named predictor over an SBBT trace
  (``--cache-dir`` serves repeats from the simulation cache;
  ``--telemetry`` writes a run manifest, phase timings and an interval
  timeseries; ``--probe`` adds component attribution to it).
* ``mbp suite``     — run one predictor over a whole trace suite,
  optionally through a persistent multi-worker execution engine
  (``--workers``, ``--engine-stats``).
* ``mbp sweep``     — sweep one constructor parameter over a trace
  suite (paper Listing 3), sharing one engine across all points.
* ``mbp explain``   — attribute a run's predictions to predictor
  components and profile the worst-predicted branches (repro.probe).
* ``mbp compare``   — run two predictors in parallel (Section VI-C).
* ``mbp info``      — trace statistics (gap bounds, branch mix).
* ``mbp generate``  — synthesize a workload trace to a file.
* ``mbp translate`` — convert between BT9 / champsimtrace / SBBT.
* ``mbp championship`` — rank predictors CBP-style over trace suites.
* ``mbp cache``     — stats / clear / verify of a result cache directory.
* ``mbp report``    — render telemetry documents / manifests as tables.
* ``mbp serve``     — long-running simulation daemon (unix socket or
  TCP, newline-delimited JSON protocol, shared engine + cache).
* ``mbp client``    — talk to a running ``mbp serve`` daemon.
* ``mbp trace``     — export span logs (``--trace-dir`` tracing) to the
  Chrome trace-event format, or summarize per-phase latencies.

Cache directories resolve uniformly everywhere (``--cache-dir`` flag,
then the ``MBP_CACHE_DIR`` environment variable, then off) via
:func:`repro.cache.resolve_cache_dir`; span-log directories resolve the
same way (``--trace-dir``, then ``MBP_TRACE_DIR``, then off) via
:func:`repro.tracing.resolve_trace_dir`.

Every subcommand is documented in ``docs/cli.md``; a CI check
(``tools/check_docs.py``) keeps that page in sync with this parser.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from typing import Sequence

from .cache import resolve_cache_dir
from .core.comparison import compare
from .core.errors import EngineNotSupportedError
from .core.predictor import Predictor
from .core.simulator import SimulationConfig, simulate
# The predictor catalog lives in repro.registry (one table shared with
# the serve daemon and the championship driver); PREDICTOR_CHOICES and
# ENGINE_CHOICES are re-exported here for backwards compatibility.
from .registry import (
    ENGINE_CHOICES,
    PREDICTOR_CHOICES,
    UnknownPredictorError,
    resolve_predictor,
)
from .sbbt.reader import read_trace
from .sbbt.writer import write_trace
from .traces.inspect import analyze_trace
from .traces.synth import generate_trace
from .traces.translate import bt9_to_sbbt, champsim_to_sbbt, sbbt_to_bt9
from .traces.workloads import PROFILES

__all__ = ["main", "build_parser", "make_predictor", "PREDICTOR_CHOICES"]


def make_predictor(name: str) -> Predictor:
    """Instantiate a predictor by its CLI name."""
    try:
        return resolve_predictor(name)()
    except UnknownPredictorError as exc:
        raise SystemExit(str(exc)) from None


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for shell-completion tooling)."""
    parser = argparse.ArgumentParser(
        prog="mbp",
        description="Modular branch prediction toolkit (MBPlib reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate_parser = sub.add_parser(
        "simulate", help="run a predictor over an SBBT trace")
    simulate_parser.add_argument("trace", help="path to an SBBT trace")
    simulate_parser.add_argument(
        "--predictor", default="gshare", choices=sorted(PREDICTOR_CHOICES))
    simulate_parser.add_argument("--warmup", type=int, default=0,
                                 metavar="INSTRUCTIONS")
    simulate_parser.add_argument("--max-instructions", type=int, default=None)
    simulate_parser.add_argument(
        "--engine", default="scalar", choices=list(ENGINE_CHOICES),
        help="simulation engine: 'scalar' (default) is the per-branch "
             "loop, 'vectorized' evaluates the predictor's numpy vector "
             "kernel (bit-identical results; errors out for predictors "
             "without one), 'auto' picks vectorized when available")
    simulate_parser.add_argument("--compact", action="store_true",
                                 help="one-line summary instead of JSON")
    simulate_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache: identical (trace, predictor, "
             "config) runs are served from DIR instead of re-simulating")
    simulate_parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="write a telemetry document (run manifest + phase timings + "
             "interval timeseries) to PATH; a .csv suffix writes the "
             "interval series as CSV instead")
    simulate_parser.add_argument(
        "--interval", type=int, default=None, metavar="INSTRUCTIONS",
        help="interval-telemetry window size in instructions "
             "(default 100000; requires --telemetry)")
    simulate_parser.add_argument(
        "--probe", action="store_true",
        help="attach a prediction probe (component attribution, branch "
             "profile, table statistics) and record its report in the "
             "telemetry document; requires --telemetry")
    simulate_parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="span-tracing log directory (default: $MBP_TRACE_DIR, else "
             "off); the run's spans stream to trace-<id>.jsonl there "
             "for 'mbp trace export|summary'")

    suite_parser = sub.add_parser(
        "suite",
        help="run one predictor over a whole suite of SBBT traces")
    suite_parser.add_argument("traces", nargs="+",
                              help="paths to SBBT traces")
    suite_parser.add_argument(
        "--predictor", default="gshare", choices=sorted(PREDICTOR_CHOICES))
    suite_parser.add_argument("--warmup", type=int, default=0,
                              metavar="INSTRUCTIONS")
    suite_parser.add_argument("--max-instructions", type=int, default=None)
    suite_parser.add_argument(
        "--engine", default="scalar", choices=list(ENGINE_CHOICES),
        help="simulation engine used for every trace of the suite "
             "(see 'mbp simulate --engine')")
    suite_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes; > 1 dispatches through a persistent "
             "execution engine with the traces resident in shared memory "
             "(default: cpu-aware, min(4, cores-1), capped by the trace "
             "count; pass 1 to force serial)")
    suite_parser.add_argument(
        "--chunk", default="auto", metavar="{auto,N}",
        help="work units packed per engine round-trip: 'auto' (default) "
             "adapts to the measured per-trace cost, an integer forces "
             "that chunk size; only meaningful with --workers > 1")
    suite_parser.add_argument(
        "--batch", default="auto", choices=["auto", "off"],
        help="config-batched evaluation: 'auto' (default) runs units that "
             "share a trace and admit the vectorized engine in one stacked "
             "pass per predictor family, 'off' forces per-unit evaluation; "
             "results are bit-identical either way")
    suite_parser.add_argument(
        "--start-method", default=None,
        choices=["fork", "spawn", "forkserver"],
        help="multiprocessing start method for the engine workers "
             "(default: platform default)")
    suite_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache; hits skip dispatch entirely")
    suite_parser.add_argument(
        "--engine-stats", action="store_true",
        help="print engine counters (traces published / shipped / reused, "
             "tasks dispatched, phases) to stderr; requires --workers > 1")
    suite_parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="span-tracing log directory (default: $MBP_TRACE_DIR, else "
             "off); see 'mbp trace'")
    suite_parser.add_argument("--compact", action="store_true",
                              help="per-trace summary lines instead of JSON")

    sweep_parser = sub.add_parser(
        "sweep",
        help="sweep one predictor constructor parameter over a trace suite")
    sweep_parser.add_argument("traces", nargs="+",
                              help="paths to SBBT traces")
    sweep_parser.add_argument(
        "--predictor", default="gshare", choices=sorted(PREDICTOR_CHOICES))
    sweep_parser.add_argument(
        "--parameter", required=True, metavar="NAME",
        help="constructor parameter to sweep (e.g. history_length)")
    sweep_parser.add_argument(
        "--values", required=True, metavar="SPEC",
        help="comma-separated values and/or lo:hi[:step] ranges, "
             "e.g. '4,8,16' or '6:31' or '6:31:4'")
    sweep_parser.add_argument(
        "--fixed", action="append", default=[], metavar="NAME=VALUE",
        help="fix another constructor parameter (repeatable)")
    sweep_parser.add_argument("--warmup", type=int, default=0,
                              metavar="INSTRUCTIONS")
    sweep_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes; the whole sweep shares one engine, so the "
             "pool is forked once and each trace is shipped once "
             "(default: cpu-aware, min(4, cores-1), capped by the sweep's "
             "unit count; pass 1 to force serial)")
    sweep_parser.add_argument(
        "--engine", default="auto", choices=list(ENGINE_CHOICES),
        help="simulation engine for every sweep point (default 'auto': "
             "vectorized where the predictor supports it, with identical "
             "results; see 'mbp simulate --engine')")
    sweep_parser.add_argument(
        "--chunk", default="auto", metavar="{auto,N}",
        help="work units packed per engine round-trip ('auto' or a fixed "
             "size; see 'mbp suite --chunk')")
    sweep_parser.add_argument(
        "--batch", default="auto", choices=["auto", "off"],
        help="config-batched evaluation: 'auto' (default) evaluates all "
             "sweep points over one trace in a single stacked pass per "
             "predictor family, 'off' forces one dispatch per point; "
             "results are bit-identical either way")
    sweep_parser.add_argument(
        "--start-method", default=None,
        choices=["fork", "spawn", "forkserver"],
        help="multiprocessing start method for the engine workers")
    sweep_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache shared by every sweep point")
    sweep_parser.add_argument(
        "--engine-stats", action="store_true",
        help="print engine counters to stderr; requires --workers > 1")
    sweep_parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="span-tracing log directory (default: $MBP_TRACE_DIR, else "
             "off); see 'mbp trace'")
    sweep_parser.add_argument(
        "--json", action="store_true",
        help="print the sweep points as JSON instead of a table")

    explain_parser = sub.add_parser(
        "explain",
        help="attribute a run's predictions to predictor components and "
             "profile the worst-predicted branches")
    explain_parser.add_argument("trace", help="path to an SBBT trace")
    explain_parser.add_argument(
        "--predictor", default="tournament",
        choices=sorted(PREDICTOR_CHOICES))
    explain_parser.add_argument("--warmup", type=int, default=0,
                                metavar="INSTRUCTIONS")
    explain_parser.add_argument("--max-instructions", type=int, default=None)
    explain_parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="number of worst-predicted branches to list (default 10)")
    explain_parser.add_argument(
        "--json", action="store_true",
        help="print the raw probe report as JSON instead of tables")

    compare_parser = sub.add_parser(
        "compare", help="simulate two predictors in parallel")
    compare_parser.add_argument("trace")
    compare_parser.add_argument("predictor_a",
                                choices=sorted(PREDICTOR_CHOICES))
    compare_parser.add_argument("predictor_b",
                                choices=sorted(PREDICTOR_CHOICES))
    compare_parser.add_argument("--warmup", type=int, default=0)

    info_parser = sub.add_parser("info", help="print trace statistics")
    info_parser.add_argument("trace")
    info_parser.add_argument("--json", action="store_true")

    generate_parser = sub.add_parser(
        "generate", help="synthesize a workload trace")
    generate_parser.add_argument("output", help="output path (.sbbt[.xz|.gz])")
    generate_parser.add_argument("--category", default="short_server",
                                 choices=sorted(PROFILES))
    generate_parser.add_argument("--branches", type=int, default=100_000)
    generate_parser.add_argument("--seed", type=int, default=0)

    translate_parser = sub.add_parser(
        "translate", help="convert a trace between formats")
    translate_parser.add_argument("source")
    translate_parser.add_argument("destination")
    translate_parser.add_argument(
        "--direction", required=True,
        choices=["bt9-to-sbbt", "sbbt-to-bt9", "champsim-to-sbbt"])

    championship_parser = sub.add_parser(
        "championship",
        help="rank predictors CBP-style over a set of SBBT traces")
    championship_parser.add_argument("traces", nargs="+",
                                     help="paths to SBBT traces")
    championship_parser.add_argument(
        "--predictors", nargs="+", default=sorted(PREDICTOR_CHOICES),
        choices=sorted(PREDICTOR_CHOICES), metavar="NAME",
        help="contestants (default: the whole Table II set)")
    championship_parser.add_argument("--warmup", type=int, default=0)

    cache_parser = sub.add_parser(
        "cache", help="inspect or maintain a simulation result cache")
    cache_parser.add_argument(
        "action", choices=["stats", "clear", "verify"],
        help="stats: entry count and size as JSON; clear: delete every "
             "entry; verify: decode every entry and report corrupt ones")
    cache_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $MBP_CACHE_DIR)")
    cache_parser.add_argument(
        "--delete-invalid", action="store_true",
        help="with 'verify': also delete the entries that fail to decode")

    report_parser = sub.add_parser(
        "report",
        help="render telemetry documents, run manifests or interval "
             "series as paper-style tables")
    report_parser.add_argument(
        "files", nargs="+", metavar="FILE",
        help="JSON artifacts written by 'mbp simulate --telemetry', "
             "RunManifest.write() or suite_manifest()")
    report_parser.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="show at most N interval windows per file (default: all)")
    report_parser.add_argument(
        "--json", action="store_true",
        help="echo the merged telemetry documents as JSON instead of "
             "tables (same as --format json)")
    report_parser.add_argument(
        "--format", default=None, choices=["text", "json", "csv"],
        help="output format: text tables (default), merged JSON, or "
             "sectioned CSV")

    serve_parser = sub.add_parser(
        "serve",
        help="run a long-lived simulation daemon (newline-delimited JSON "
             "over a unix socket or TCP)")
    serve_parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="unix socket path to listen on (default mbp-serve.sock in "
             "the current directory; mutually exclusive with --host)")
    serve_parser.add_argument(
        "--host", default=None, metavar="HOST",
        help="listen on TCP instead of a unix socket")
    serve_parser.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="TCP port with --host (default 0 = pick a free port, "
             "printed on startup)")
    serve_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="execution-engine worker processes shared by every client "
             "(0 = simulate on in-process threads, no multiprocessing; "
             "default: cpu-aware, min(4, cores-1))")
    serve_parser.add_argument(
        "--start-method", default=None,
        choices=["fork", "spawn", "forkserver"],
        help="multiprocessing start method for the engine workers")
    serve_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared result cache (default: $MBP_CACHE_DIR, else a "
             "private temporary directory for the daemon's lifetime)")
    serve_parser.add_argument(
        "--engine", default="auto", choices=list(ENGINE_CHOICES),
        help="default simulation engine for requests that don't name one "
             "(default auto)")
    serve_parser.add_argument(
        "--batch", default="auto", choices=["auto", "off"],
        help="config-batched prewarm for suite/sweep requests: 'auto' "
             "(default) evaluates a request's cache-missed vectorized "
             "units in stacked per-trace passes before the per-unit "
             "fan-out, 'off' disables the prewarm")
    serve_parser.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="per-client pending-request bound; a full queue answers "
             "'overloaded' (default 64)")
    serve_parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="per-request time budget; exceeding it answers 'timeout' "
             "while the computation still finishes into the cache "
             "(default 60; 0 = unlimited)")
    serve_parser.add_argument(
        "--max-request-bytes", type=int, default=None, metavar="BYTES",
        help="frame size limit; larger requests answer 'too_large' "
             "(default 4 MiB)")
    serve_parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="span-tracing log directory (default: $MBP_TRACE_DIR, else "
             "off); every request's spans stream to serve-<pid>.jsonl "
             "there for 'mbp trace export|summary'")

    client_parser = sub.add_parser(
        "client", help="talk to a running 'mbp serve' daemon")
    client_parser.add_argument(
        "action",
        choices=["ping", "stats", "simulate", "suite", "sweep", "shutdown"],
        help="operation to request from the daemon")
    client_parser.add_argument(
        "traces", nargs="*",
        help="trace path(s): exactly one for simulate, one or more for "
             "suite/sweep")
    client_parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="unix socket the daemon listens on")
    client_parser.add_argument(
        "--host", default=None, metavar="HOST",
        help="connect over TCP instead of a unix socket")
    client_parser.add_argument("--port", type=int, default=0, metavar="PORT",
                               help="TCP port with --host")
    client_parser.add_argument(
        "--predictor", default="gshare", choices=sorted(PREDICTOR_CHOICES))
    client_parser.add_argument(
        "--parameter", default=None, metavar="NAME",
        help="constructor parameter to sweep (sweep action only)")
    client_parser.add_argument(
        "--values", default=None, metavar="SPEC",
        help="sweep values: comma-separated and/or lo:hi[:step] ranges "
             "(sweep action only)")
    client_parser.add_argument(
        "--fixed", action="append", default=[], metavar="NAME=VALUE",
        help="fix a constructor parameter (repeatable; simulate/suite/"
             "sweep)")
    client_parser.add_argument("--warmup", type=int, default=0,
                               metavar="INSTRUCTIONS")
    client_parser.add_argument("--max-instructions", type=int, default=None)
    client_parser.add_argument(
        "--engine", default=None, choices=list(ENGINE_CHOICES),
        help="simulation engine for this request (default: the "
             "daemon's --engine setting)")
    client_parser.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECONDS",
        help="client-side socket timeout (default 120)")
    client_parser.add_argument(
        "--result-only", action="store_true",
        help="with 'simulate': print only the SimulationResult JSON, "
             "byte-identical to 'mbp simulate' output")
    client_parser.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="tag this request's server-side spans with a trace id of "
             "your choosing, so 'mbp trace summary --trace-id ID' over "
             "the daemon's --trace-dir finds them (simulate/suite/sweep)")

    trace_parser = sub.add_parser(
        "trace",
        help="export or summarize span-tracing logs (--trace-dir runs)")
    trace_parser.add_argument(
        "action", choices=["export", "summary"],
        help="export: spans as a Chrome trace-event JSON file (load it "
             "in Perfetto or chrome://tracing); summary: per-span-name "
             "p50/p99 latencies and the critical path")
    trace_parser.add_argument(
        "paths", nargs="*",
        help="span logs: .jsonl files and/or directories of them "
             "(default: $MBP_TRACE_DIR)")
    trace_parser.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="restrict to one trace id (default: export keeps all, "
             "summary aggregates all and walks the first trace's "
             "critical path)")
    trace_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="with 'export': write the trace-event JSON to PATH instead "
             "of stdout")
    return parser


#: Default interval-telemetry window (instructions) for ``--telemetry``.
DEFAULT_TELEMETRY_INTERVAL = 100_000


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = SimulationConfig(warmup_instructions=args.warmup,
                              max_instructions=args.max_instructions)
    if args.interval is not None and args.telemetry is None:
        raise SystemExit("--interval requires --telemetry")
    if args.probe and args.telemetry is None:
        raise SystemExit("--probe requires --telemetry")
    instrumentation = recorder = probe = None
    if args.telemetry is not None:
        from .telemetry import IntervalRecorder, PhaseTimers

        instrumentation = PhaseTimers()
        recorder = IntervalRecorder(
            args.interval if args.interval is not None
            else DEFAULT_TELEMETRY_INTERVAL)
    if args.probe:
        from .probe import PredictionProbe

        probe = PredictionProbe()
    cache_dir = resolve_cache_dir(args.cache_dir)
    cache_used = cache_dir is not None
    with _tracing(args, "simulate") as (tracer, root_context):
        with tracer.span("simulate", parent=root_context,
                         attributes={"unit": args.trace,
                                     "predictor": args.predictor}) as span:
            try:
                if cache_used:
                    from .cache import SimulationCache

                    cache = SimulationCache(cache_dir)
                    result = cache.get_or_simulate(
                        lambda: make_predictor(args.predictor), args.trace,
                        config, engine=args.engine,
                        instrumentation=instrumentation,
                        telemetry=recorder, probe=probe)
                else:
                    result = simulate(make_predictor(args.predictor),
                                      args.trace, config, engine=args.engine,
                                      instrumentation=instrumentation,
                                      telemetry=recorder, probe=probe)
            except EngineNotSupportedError as exc:
                raise SystemExit(str(exc)) from None
            if tracer.enabled:
                span.set_attribute("from_cache", bool(result.from_cache))
    if args.telemetry is not None:
        from .telemetry import build_manifest, write_telemetry

        series = recorder.series  # None on a cache hit (nothing simulated)
        if series is None and args.telemetry.lower().endswith(".csv"):
            raise SystemExit(
                "cache hit produced no interval series; CSV telemetry "
                "needs a fresh simulation (use 'mbp cache clear' or a "
                "JSON telemetry path)")
        manifest = build_manifest(
            result, trace=args.trace,
            predictor=make_predictor(args.predictor), config=config,
            phases=instrumentation.phases,
            counters=instrumentation.counters or None,
            cache_used=cache_used)
        write_telemetry(args.telemetry, manifest=manifest,
                        phases=instrumentation.phases,
                        counters=instrumentation.counters or None,
                        intervals=series,
                        probe=result.probe_report)
    if args.compact:
        print(result.summary())
    else:
        print(result.to_json_string())
    return 0


def _scalar(token: str):
    """Parse a CLI scalar: int, then float, then bare string."""
    for parse in (int, float):
        try:
            return parse(token)
        except ValueError:
            continue
    return token


def _parse_values(spec: str) -> list:
    """Parse ``--values``: comma-separated scalars and lo:hi[:step] ranges.

    Ranges follow Python ``range`` semantics (``hi`` exclusive), matching
    the paper's Listing 3 ``for`` loop.
    """
    values: list = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if ":" in token:
            parts = token.split(":")
            if len(parts) not in (2, 3) or not all(parts):
                raise SystemExit(f"bad range {token!r}; expected lo:hi[:step]")
            try:
                bounds = [int(part) for part in parts]
            except ValueError:
                raise SystemExit(
                    f"bad range {token!r}; bounds must be integers") from None
            values.extend(range(*bounds))
        else:
            values.append(_scalar(token))
    if not values:
        raise SystemExit(f"--values {spec!r} names no values")
    return values


def _parse_fixed(pairs: Sequence[str]) -> dict:
    """Parse repeated ``--fixed NAME=VALUE`` arguments."""
    fixed = {}
    for pair in pairs:
        name, separator, value = pair.partition("=")
        if not separator or not name:
            raise SystemExit(f"bad --fixed {pair!r}; expected NAME=VALUE")
        fixed[name] = _scalar(value)
    return fixed


def _parse_chunk(value: str) -> "int | str":
    """Validate ``--chunk``: 'auto' or a positive integer."""
    from .core.plan import normalize_chunk

    try:
        normalize_chunk(value)
    except ValueError as exc:
        raise SystemExit(f"bad --chunk: {exc}") from None
    return value if value == "auto" else int(value)


def _resolve_workers(args: argparse.Namespace, units: int) -> int:
    """``--workers`` if given, else the cpu-aware default for ``units``."""
    if args.workers is not None:
        return args.workers
    from .core.engine import default_workers

    return default_workers(units)


def _make_engine(args: argparse.Namespace, units: int):
    """The ExecutionEngine for ``--workers``, or ``None`` when serial."""
    workers = _resolve_workers(args, units)
    if args.engine_stats and workers <= 1:
        raise SystemExit("--engine-stats requires --workers > 1")
    if workers <= 1:
        if args.start_method is not None:
            raise SystemExit("--start-method requires --workers > 1")
        return None
    from .core.engine import ExecutionEngine

    return ExecutionEngine(workers=workers,
                           start_method=args.start_method)


@contextmanager
def _tracing(args: argparse.Namespace, command: str):
    """Yield ``(tracer, root_context)`` for one traced CLI invocation.

    With no trace directory resolved (no ``--trace-dir``, no
    ``MBP_TRACE_DIR``) this yields the null tracer and ``None`` —
    the zero-overhead path.  Otherwise it mints a fresh trace id,
    streams spans to ``trace-<id>.jsonl`` under the directory, wraps
    the command in an ``mbp_<command>`` root span, and announces the
    trace id on stderr so the run's spans can be found afterwards.
    """
    from .tracing import (
        NULL_TRACER,
        JsonlSpanSink,
        SpanRecorder,
        TraceContext,
        new_trace_id,
        resolve_trace_dir,
    )

    trace_dir = resolve_trace_dir(getattr(args, "trace_dir", None))
    if trace_dir is None:
        yield NULL_TRACER, None
        return
    from pathlib import Path

    trace_id = new_trace_id()
    path = Path(trace_dir) / f"trace-{trace_id}.jsonl"
    sink = JsonlSpanSink(path)
    tracer = SpanRecorder(root=TraceContext.new_root(trace_id), sink=sink)
    print(f"mbp {command}: tracing as {trace_id} -> {path}",
          file=sys.stderr)
    try:
        with tracer.span(f"mbp_{command}") as root:
            yield tracer, root.context
    finally:
        sink.close()


def _emit_engine_stats(args: argparse.Namespace, engine) -> None:
    if args.engine_stats and engine is not None:
        print("engine stats: " + json.dumps(engine.stats.to_json()),
              file=sys.stderr)


def _cmd_suite(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from .core.batch import run_suite

    config = SimulationConfig(warmup_instructions=args.warmup,
                              max_instructions=args.max_instructions)
    factory = PREDICTOR_CHOICES[args.predictor]
    engine = _make_engine(args, len(args.traces))
    with _tracing(args, "suite") as (tracer, root_context):
        with engine if engine is not None else nullcontext():
            batch = run_suite(factory, args.traces, config, engine=engine,
                              cache=resolve_cache_dir(args.cache_dir),
                              on_error="collect", sim_engine=args.engine,
                              chunk=_parse_chunk(args.chunk),
                              batch=args.batch,
                              tracer=tracer, trace_parent=root_context)
            _emit_engine_stats(args, engine)
    timing = batch.timing
    num_traces = len(batch.results) + len(batch.failures)
    if args.compact:
        for result in batch.results:
            print(result.summary())
        for failure in batch.failures:
            print(f"FAILED {failure}")
        # Always printed — an all-failed suite must be distinguishable
        # from an empty-but-successful one.
        mean = (f"mean MPKI {batch.mean_mpki():.4f}"
                if batch.results else "mean MPKI n/a")
        print(f"suite: {len(batch.results)}/{num_traces} traces ok, "
              f"{len(batch.failures)} failed, {mean}, "
              f"total time {timing.total:.3f}s, "
              f"{batch.cache_hits} cache hits")
    else:
        document = {
            "predictor": args.predictor,
            "traces": [
                {
                    "trace": result.trace_name,
                    "mpki": result.mpki,
                    "mispredictions": result.mispredictions,
                    "accuracy": result.accuracy,
                    "simulation_time": result.simulation_time,
                    "from_cache": result.from_cache,
                }
                for result in batch.results
            ],
            "failures": [
                {"trace": failure.trace_name, "error": failure.error}
                for failure in batch.failures
            ],
            "aggregate": {
                "mean_mpki": batch.mean_mpki() if batch.results else None,
                "aggregate_mpki": batch.aggregate_mpki(),
                "num_traces": num_traces,
                "num_failures": len(batch.failures),
                "cache_hits": batch.cache_hits,
                "timing": {
                    "slowest": timing.slowest,
                    "average": timing.average,
                    "fastest": timing.fastest,
                    "total": timing.total,
                },
            },
        }
        print(json.dumps(document, indent=2))
    return 1 if batch.failures else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import math
    from contextlib import nullcontext

    from .analysis.sweep import sweep_parameter
    from .telemetry import PhaseTimers

    config = SimulationConfig(warmup_instructions=args.warmup)
    factory = PREDICTOR_CHOICES[args.predictor]
    values = _parse_values(args.values)
    fixed = _parse_fixed(args.fixed)
    engine = _make_engine(args, len(values) * len(args.traces))
    timers = PhaseTimers()
    with _tracing(args, "sweep") as (tracer, root_context):
        with engine if engine is not None else nullcontext():
            sweep = sweep_parameter(factory, args.parameter, values,
                                    args.traces, config, fixed,
                                    cache=resolve_cache_dir(args.cache_dir),
                                    engine=engine,
                                    chunk=_parse_chunk(args.chunk),
                                    batch=args.batch,
                                    sim_engine=args.engine,
                                    on_error="collect",
                                    instrumentation=timers,
                                    tracer=tracer, trace_parent=root_context)
            _emit_engine_stats(args, engine)
    scored = [p for p in sweep.points if not math.isnan(p.mean_mpki)]
    failed = [p for p in sweep.points if math.isnan(p.mean_mpki)]
    best = sweep.best() if scored else None
    cache_hits = sum(p.cache_hits for p in sweep.points)
    num_failures = sum(p.num_failures for p in sweep.points)
    batch_groups = timers.counters.get("batch_groups", 0)
    if args.json:
        print(json.dumps({
            "predictor": args.predictor,
            "parameter": args.parameter,
            "fixed": fixed,
            "points": [
                {
                    "parameters": point.parameters,
                    "mean_mpki": (None if math.isnan(point.mean_mpki)
                                  else point.mean_mpki),
                    "aggregate_mpki": point.aggregate_mpki,
                    "total_mispredictions": point.total_mispredictions,
                    "num_failures": point.num_failures,
                    "cache_hits": point.cache_hits,
                }
                for point in sweep.points
            ],
            "best": None if best is None else {
                "parameters": best.parameters,
                "mean_mpki": best.mean_mpki,
            },
            # batch_groups is deliberately absent here: the same sweep
            # legitimately forms different group counts on the inline
            # and chunked-engine backends, and the JSON document must
            # stay identical across --workers settings.  It is visible
            # in the table footer and in --engine-stats.
            "aggregate": {
                "points_ok": len(scored),
                "points_failed": len(failed),
                "num_failures": num_failures,
                "cache_hits": cache_hits,
            },
        }, indent=2))
    else:
        print(sweep.table())
        if best is not None:
            print(f"best: {best}")
        # Always printed — an all-failed sweep must be distinguishable
        # from a successful one at a glance.
        print(f"sweep: {len(scored)}/{len(sweep.points)} points ok, "
              f"{num_failures} trace failures, {cache_hits} cache hits, "
              f"{batch_groups} batch groups")
    return 1 if not scored else 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .analysis.reporting import (
        attribution_rows,
        attribution_table,
        structure_rows,
        structure_table,
        top_offenders_table,
    )
    from .probe import PredictionProbe

    config = SimulationConfig(warmup_instructions=args.warmup,
                              max_instructions=args.max_instructions)
    probe = PredictionProbe(top_branches=args.top)
    result = simulate(make_predictor(args.predictor), args.trace, config,
                      probe=probe)
    report = result.probe_report
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    # Deliberately no wall-clock figures: explain output is a function
    # of (trace, predictor, config) alone, so it can be golden-tested.
    print(f"trace: {result.trace_name}")
    print(f"predictor: {result.predictor_metadata.get('name', '?')}")
    print(f"branches: {result.num_conditional_branches} conditional, "
          f"{result.mispredictions} mispredicted, "
          f"MPKI {result.mpki:.4f}")
    if attribution_rows(report)[1]:
        print()
        print(attribution_table(report))
    print()
    print(top_offenders_table(report))
    if structure_rows(report)[1]:
        print()
        print(structure_table(report))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = SimulationConfig(warmup_instructions=args.warmup)
    result = compare(make_predictor(args.predictor_a),
                     make_predictor(args.predictor_b), args.trace, config)
    print(json.dumps(result.to_json(), indent=2))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    statistics = analyze_trace(read_trace(args.trace))
    if args.json:
        print(json.dumps(statistics.to_json(), indent=2))
    else:
        print(statistics.summary())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    trace = generate_trace(PROFILES[args.category], args.seed, args.branches)
    size = write_trace(args.output, trace)
    print(f"wrote {args.output}: {len(trace)} branches, "
          f"{trace.num_instructions} instructions, {size} bytes on disk")
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    translators = {
        "bt9-to-sbbt": bt9_to_sbbt,
        "sbbt-to-bt9": sbbt_to_bt9,
        "champsim-to-sbbt": champsim_to_sbbt,
    }
    report = translators[args.direction](args.source, args.destination)
    print(f"{report.source} ({report.source_bytes} B) -> "
          f"{report.destination} ({report.destination_bytes} B): "
          f"{report.size_ratio:.2f}x smaller, "
          f"{report.num_branches} branches")
    return 0


def _cmd_championship(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis.championship import Championship

    traces = {Path(path).name: path for path in args.traces}
    championship = Championship(
        traces,
        SimulationConfig(warmup_instructions=args.warmup,
                         collect_most_failed=False),
    )
    for name in args.predictors:
        championship.submit(name, PREDICTOR_CHOICES[name])
    print(championship.leaderboard_table())
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .cache import SimulationCache

    cache_dir = resolve_cache_dir(args.cache_dir)
    if cache_dir is None:
        raise SystemExit(
            "no cache directory: pass --cache-dir or set MBP_CACHE_DIR")
    cache = SimulationCache(cache_dir)
    if args.action == "stats":
        print(json.dumps(cache.stats().to_json(), indent=2))
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.directory}")
        return 0
    report = cache.verify(delete=args.delete_invalid)
    print(f"{report.valid} valid, {len(report.invalid)} invalid")
    for name, problem in report.invalid:
        verb = "deleted" if args.delete_invalid else "found"
        print(f"  {verb} {name}: {problem}")
    return 0 if report.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.reporting import (
        attribution_rows,
        attribution_table,
        interval_series_table,
        manifest_summary_table,
        phase_breakdown_table,
        structure_rows,
        structure_table,
        telemetry_csv,
        top_offenders_rows,
        top_offenders_table,
    )
    from .core.errors import TelemetryError
    from .telemetry import read_telemetry

    fmt = args.format or ("json" if args.json else "text")
    status = 0
    documents: list[tuple[str, dict]] = []
    for path in args.files:
        try:
            documents.append((path, read_telemetry(path)))
        except TelemetryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 1
    if fmt == "json":
        print(json.dumps([doc for _, doc in documents], indent=2))
        return status
    if fmt == "csv":
        first = True
        for path, doc in documents:
            if not first:
                print()
            first = False
            print(f"# file: {path}")
            rendered = telemetry_csv(doc, limit=args.limit)
            if rendered:
                print(rendered, end="")
        return status
    first = True
    for path, doc in documents:
        if not first:
            print()
        first = False
        print(f"== {path}")
        manifest = doc.get("manifest")
        rendered = False
        if manifest:
            if manifest.get("kind") == "repro-suite-manifest":
                print(manifest_summary_table(manifest.get("runs", []),
                                             title="Suite run manifests"))
                aggregate = manifest.get("aggregate")
                if aggregate:
                    timing = aggregate.get("timing", {})
                    print(
                        f"suite: {manifest.get('num_traces')} traces, "
                        f"{manifest.get('cache_hits', 0)} cache hits, "
                        f"{len(manifest.get('failures', []))} failures, "
                        f"mean MPKI {aggregate.get('mean_mpki', 0.0):.4f}, "
                        f"total time {timing.get('total', 0.0):.3f}s")
            else:
                print(manifest_summary_table([manifest]))
            rendered = True
        phases = doc.get("phases")
        if phases:
            print()
            print(phase_breakdown_table(phases))
            rendered = True
        counters = doc.get("counters")
        if counters:
            print()
            print("counters: " + ", ".join(
                f"{name}={counters[name]}" for name in sorted(counters)))
            rendered = True
        intervals = doc.get("intervals")
        if intervals:
            print()
            print(interval_series_table(intervals, limit=args.limit))
            rendered = True
        probe = doc.get("probe")
        if probe is None and manifest:
            probe = manifest.get("probe")
        if probe:
            if attribution_rows(probe)[1]:
                print()
                print(attribution_table(probe))
            if top_offenders_rows(probe)[1]:
                print()
                print(top_offenders_table(probe))
            if structure_rows(probe)[1]:
                print()
                print(structure_table(probe))
            rendered = True
        if not rendered:
            print("(empty telemetry document)")
    return status


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .serve import MbpServer, ServeConfig

    if args.socket is not None and args.host is not None:
        raise SystemExit("pass --socket or --host, not both")
    if args.workers is None:
        # A daemon serves many clients and cannot see its unit counts
        # up front, so the cpu-aware default is uncapped here.
        from .core.engine import default_workers

        args.workers = default_workers()
    config = ServeConfig(
        socket_path=args.socket if args.host is None else None,
        host=args.host,
        port=args.port,
        workers=args.workers,
        start_method=args.start_method,
        cache_dir=resolve_cache_dir(args.cache_dir),
        sim_engine=args.engine,
        batch=args.batch,
        max_queue=args.max_queue,
        request_timeout=args.timeout if args.timeout > 0 else None,
        trace_dir=args.trace_dir,
        **({} if args.max_request_bytes is None
           else {"max_request_bytes": args.max_request_bytes}),
    )
    server = MbpServer(config)

    class _Announce:
        """Duck-typed `ready` for MbpServer.run: prints the address."""

        @staticmethod
        def set() -> None:
            kind, *where = server.bound
            address = where[0] if kind == "unix" else f"{where[0]}:{where[1]}"
            print(f"mbp serve: listening on {kind} {address} "
                  f"(workers={config.workers}, cache={server.cache.directory})",
                  file=sys.stderr, flush=True)

    # SIGINT/SIGTERM drain gracefully: request_shutdown is threadsafe,
    # so plain signal handlers are enough (and work on every platform).
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: server.request_shutdown())
    asyncio.run(server.run(ready=_Announce()))
    print("mbp serve: stopped", file=sys.stderr)
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from .serve.client import MbpClient, ServeError

    if (args.socket is None) == (args.host is None):
        raise SystemExit("pass exactly one of --socket or --host")
    try:
        if args.socket is not None:
            client = MbpClient(socket_path=args.socket, timeout=args.timeout)
        else:
            client = MbpClient(host=args.host, port=args.port,
                               timeout=args.timeout)
    except OSError as exc:
        raise SystemExit(f"cannot connect to mbp serve: {exc}") from None
    parameters = _parse_fixed(args.fixed)
    common = {"parameters": parameters, "warmup": args.warmup,
              "max_instructions": args.max_instructions,
              "engine": args.engine, "trace_id": args.trace_id}
    try:
        with client:
            if args.action in ("ping", "stats", "shutdown"):
                if args.traces:
                    raise SystemExit(f"'{args.action}' takes no trace paths")
                reply = getattr(client, args.action)()
            elif args.action == "simulate":
                if len(args.traces) != 1:
                    raise SystemExit("'simulate' takes exactly one trace")
                reply = client.simulate(args.traces[0], args.predictor,
                                        **common)
            elif args.action == "suite":
                if not args.traces:
                    raise SystemExit("'suite' takes one or more traces")
                reply = client.suite(args.traces, args.predictor, **common)
            else:  # sweep
                if not args.traces:
                    raise SystemExit("'sweep' takes one or more traces")
                if args.parameter is None or args.values is None:
                    raise SystemExit("'sweep' needs --parameter and --values")
                reply = client.sweep(args.traces, args.predictor,
                                     args.parameter,
                                     _parse_values(args.values), **common)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (OSError, ConnectionError) as exc:
        raise SystemExit(f"connection to mbp serve failed: {exc}") from None
    if args.result_only:
        if "result" not in reply:
            raise SystemExit("--result-only needs the 'simulate' action")
        print(json.dumps(reply["result"], indent=2))
    else:
        print(json.dumps(reply, indent=2))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .tracing import (
        chrome_trace_events,
        critical_path_table,
        read_spans,
        resolve_trace_dir,
        summary_table,
    )

    if args.output is not None and args.action != "export":
        raise SystemExit("--output requires the 'export' action")
    paths = list(args.paths)
    if not paths:
        default_dir = resolve_trace_dir(None)
        if default_dir is None:
            raise SystemExit("no span logs: pass .jsonl files or "
                             "directories, or set MBP_TRACE_DIR")
        paths = [default_dir]
    spans = read_spans(paths, trace_id=args.trace_id)
    if not spans:
        scope = f" for trace id {args.trace_id}" if args.trace_id else ""
        raise SystemExit(f"no spans found{scope} in: {', '.join(paths)}")
    if args.action == "export":
        document = chrome_trace_events(spans)
        text = json.dumps(document, indent=2)
        if args.output is not None:
            Path(args.output).write_text(text + "\n", encoding="utf-8")
            print(f"wrote {args.output}: "
                  f"{len(document['traceEvents'])} events",
                  file=sys.stderr)
        else:
            print(text)
        return 0
    print(summary_table(spans))
    print()
    print(critical_path_table(spans, args.trace_id))
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "suite": _cmd_suite,
    "sweep": _cmd_sweep,
    "explain": _cmd_explain,
    "compare": _cmd_compare,
    "info": _cmd_info,
    "generate": _cmd_generate,
    "translate": _cmd_translate,
    "championship": _cmd_championship,
    "cache": _cmd_cache,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "client": _cmd_client,
    "trace": _cmd_trace,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by the ``mbp`` console script."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
