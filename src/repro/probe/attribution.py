"""The :class:`PredictionProbe` accumulator and its scoped views.

Attribution model
-----------------
Every *composed* predictor decides, per branch, which component's answer
becomes the final prediction.  During ``train`` — after the predict-time
state has been re-established but before any table is mutated — the
predictor calls::

    probe.record(ip, provider, correct, overrode=loser_or_None)

``provider`` is the component whose answer was returned, ``correct`` is
whether that final answer matched the outcome, and ``overrode`` names
the component whose *disagreeing* answer was discarded (``None`` when
there was no disagreement).  Counts land in per-scope matrices; a scope
is a ``/``-joined component path (the root scope is ``""``), so a
tournament whose arm is itself composed reports both levels.

Invariant: within every scope, ``sum(provided)`` over its components
equals that scope's ``predictions`` total, and the root scope's total
equals the simulator's measured conditional-branch count.

Branch profiling records ``(occurrences, taken, mispredictions)`` per
instruction pointer plus, for root-scope events, a provider histogram
used to label each branch with its *dominant component*.  Structural
snapshots are whatever ``predictor.probe_stats()`` returns (nested dicts
of table statistics from :func:`repro.utils.tables.distribution_stats`).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "PROBE_SCHEMA",
    "PredictionProbe",
    "ScopedProbe",
    "probe_consistent_with",
]

#: Version of the probe report layout (``report()["schema"]``).
PROBE_SCHEMA = 1

# Indices into a component's count cell.
_PROVIDED, _CORRECT, _OVERRIDES, _OVERRIDE_CORRECT, _OVERRIDDEN = range(5)


class PredictionProbe:
    """Accumulates component attribution, branch profiles and structure.

    One probe observes one run: call :meth:`start` before simulating
    (``warmup_active=True`` defers counting until :meth:`arm`), let the
    predictor's ``record``/``record_branch`` calls accumulate, then
    :meth:`finish` to snapshot structural statistics and :meth:`report`
    to obtain the JSON-ready result.

    ``top_branches`` bounds the rendered top-offenders table, not the
    tracking: every measured branch is profiled (the per-branch dict is
    the same bookkeeping the simulator already does for
    ``most_failed``).
    """

    def __init__(self, *, top_branches: int = 20):
        self.top_branches = top_branches
        self._armed = True
        # scope -> component -> [provided, correct, overrides,
        #                        override_correct, overridden]
        self._scopes: dict[str, dict[str, list[int]]] = {}
        self._scope_totals: dict[str, int] = {}
        # ip -> [occurrences, taken, mispredictions]
        self._branches: dict[int, list[int]] = {}
        # ip -> {component: root-scope provided count}
        self._branch_components: dict[int, dict[str, int]] = {}
        self._structure: dict[str, Any] = {}

    # -- lifecycle ----------------------------------------------------

    def start(self, *, warmup_active: bool = False) -> None:
        """Reset all counts; defer counting when a warmup phase runs."""
        self._armed = not warmup_active
        self._scopes.clear()
        self._scope_totals.clear()
        self._branches.clear()
        self._branch_components.clear()
        self._structure = {}

    def arm(self) -> None:
        """Begin counting (the simulator calls this when warmup ends)."""
        self._armed = True

    def finish(self, predictor: Any = None) -> None:
        """Snapshot end-of-run structural statistics from ``predictor``."""
        if predictor is not None:
            stats = predictor.probe_stats()
            if stats:
                self._structure = stats

    def set_structure(self, structure: dict[str, Any]) -> None:
        """Install structural statistics directly (vectorized engines)."""
        self._structure = dict(structure)

    # -- event hooks (called from predictors' train paths) ------------

    def record(self, ip: int, provider: str, correct: bool,
               overrode: str | None = None, scope: str = "") -> None:
        """One attributed prediction: ``provider`` supplied the answer.

        ``overrode`` names the component whose disagreeing answer lost;
        the provider's override counters and the loser's ``overridden``
        counter advance together.
        """
        if not self._armed:
            return
        components = self._scopes.get(scope)
        if components is None:
            components = self._scopes[scope] = {}
        self._scope_totals[scope] = self._scope_totals.get(scope, 0) + 1
        cell = components.get(provider)
        if cell is None:
            cell = components[provider] = [0, 0, 0, 0, 0]
        cell[_PROVIDED] += 1
        if correct:
            cell[_CORRECT] += 1
        if overrode is not None:
            cell[_OVERRIDES] += 1
            if correct:
                cell[_OVERRIDE_CORRECT] += 1
            loser = components.get(overrode)
            if loser is None:
                loser = components[overrode] = [0, 0, 0, 0, 0]
            loser[_OVERRIDDEN] += 1
        if scope == "":
            histogram = self._branch_components.get(ip)
            if histogram is None:
                histogram = self._branch_components[ip] = {}
            histogram[provider] = histogram.get(provider, 0) + 1

    def record_branch(self, ip: int, taken: bool, mispredicted: bool) -> None:
        """Profile one measured conditional branch (simulator hook)."""
        if not self._armed:
            return
        cell = self._branches.get(ip)
        if cell is None:
            cell = self._branches[ip] = [0, 0, 0]
        cell[0] += 1
        if taken:
            cell[1] += 1
        if mispredicted:
            cell[2] += 1

    # -- bulk hooks (vectorized engines) ------------------------------

    def record_bulk(self, provider: str, count: int, correct: int,
                    scope: str = "") -> None:
        """Attribute ``count`` predictions (``correct`` of them right)."""
        if not self._armed or count <= 0:
            return
        components = self._scopes.setdefault(scope, {})
        self._scope_totals[scope] = self._scope_totals.get(scope, 0) + count
        cell = components.setdefault(provider, [0, 0, 0, 0, 0])
        cell[_PROVIDED] += count
        cell[_CORRECT] += correct

    def record_component_bulk(self, provider: str, provided: int,
                              correct: int, *, overrides: int = 0,
                              override_correct: int = 0,
                              overridden: int = 0,
                              scope: str = "") -> None:
        """Attribute a component's aggregate counts, overrides included.

        The full-matrix counterpart of :meth:`record_bulk` for
        arbitrated predictors: ``overrides``/``override_correct`` count
        the provider's wins over a disagreeing loser, ``overridden`` its
        own losses.  Mirrors :meth:`record` cell semantics — a component
        that neither provided nor was overridden gets no cell, and only
        provided predictions advance the scope total.
        """
        if not self._armed or (provided <= 0 and overridden <= 0):
            return
        components = self._scopes.setdefault(scope, {})
        if provided > 0:
            self._scope_totals[scope] = (
                self._scope_totals.get(scope, 0) + provided)
        cell = components.setdefault(provider, [0, 0, 0, 0, 0])
        cell[_PROVIDED] += provided
        cell[_CORRECT] += correct
        cell[_OVERRIDES] += overrides
        cell[_OVERRIDE_CORRECT] += override_correct
        cell[_OVERRIDDEN] += overridden

    def record_histogram_bulk(self, ip: int, component: str,
                              count: int) -> None:
        """Count ``count`` root-scope provisions of ``component`` at ``ip``.

        Feeds the dominant-component labelling of the top-offenders
        table.  Deliberately absent from :class:`ScopedProbe`: only
        root-scope :meth:`record` events feed the histogram, so bulk
        fillers probing ``hasattr`` skip it inside scopes exactly like
        the scalar path does.
        """
        if not self._armed or count <= 0:
            return
        histogram = self._branch_components.setdefault(ip, {})
        histogram[component] = histogram.get(component, 0) + count

    def record_branch_bulk(self, ip: int, occurrences: int, taken: int,
                           mispredictions: int,
                           component: str | None = None) -> None:
        """Profile one branch's aggregate counts in a single call."""
        if not self._armed or occurrences <= 0:
            return
        cell = self._branches.setdefault(ip, [0, 0, 0])
        cell[0] += occurrences
        cell[1] += taken
        cell[2] += mispredictions
        if component is not None:
            histogram = self._branch_components.setdefault(ip, {})
            histogram[component] = histogram.get(component, 0) + occurrences

    # -- reporting ----------------------------------------------------

    def scoped(self, name: str) -> "ScopedProbe":
        """A view recording into the child scope ``name``."""
        return ScopedProbe(self, name)

    def report(self) -> dict[str, Any]:
        """The JSON-ready probe report (plain dicts and ints only)."""
        attribution: dict[str, Any] = {}
        for scope in sorted(self._scopes):
            components = {}
            for name in sorted(self._scopes[scope]):
                cell = self._scopes[scope][name]
                components[name] = {
                    "provided": cell[_PROVIDED],
                    "correct": cell[_CORRECT],
                    "overrides": cell[_OVERRIDES],
                    "override_correct": cell[_OVERRIDE_CORRECT],
                    "overridden": cell[_OVERRIDDEN],
                }
            attribution[scope] = {
                "predictions": self._scope_totals.get(scope, 0),
                "components": components,
            }
        offenders = []
        ranked = sorted(self._branches.items(),
                        key=lambda item: (-item[1][2], item[0]))
        for ip, (occurrences, taken, mispredictions) in ranked:
            if len(offenders) >= self.top_branches:
                break
            histogram = self._branch_components.get(ip)
            dominant = (max(sorted(histogram), key=histogram.get)
                        if histogram else None)
            offenders.append({
                "ip": ip,
                "occurrences": occurrences,
                "taken": taken,
                "taken_rate": taken / occurrences,
                "mispredictions": mispredictions,
                "misprediction_rate": mispredictions / occurrences,
                "dominant_component": dominant,
            })
        return {
            "schema": PROBE_SCHEMA,
            "attribution": attribution,
            "branches": {
                "tracked": len(self._branches),
                "top_offenders": offenders,
            },
            "structure": self._structure,
        }

    def __repr__(self) -> str:
        return (f"PredictionProbe(scopes={sorted(self._scopes)}, "
                f"branches={len(self._branches)}, armed={self._armed})")


class ScopedProbe:
    """A prefix-scoped view of a :class:`PredictionProbe`.

    Composed predictors hand each sub-component
    ``probe.scoped("role")`` in ``attach_probe``; the component records
    exactly as if it were the root, and its events land under the
    ``role`` scope.  Scoping nests: ``scoped("a").scoped("b")`` records
    into scope ``"a/b"``.
    """

    __slots__ = ("_probe", "_scope")

    def __init__(self, probe: PredictionProbe, scope: str):
        self._probe = probe
        self._scope = scope

    def record(self, ip: int, provider: str, correct: bool,
               overrode: str | None = None, scope: str = "") -> None:
        path = f"{self._scope}/{scope}" if scope else self._scope
        self._probe.record(ip, provider, correct, overrode, scope=path)

    def record_bulk(self, provider: str, count: int, correct: int,
                    scope: str = "") -> None:
        path = f"{self._scope}/{scope}" if scope else self._scope
        self._probe.record_bulk(provider, count, correct, scope=path)

    def record_component_bulk(self, provider: str, provided: int,
                              correct: int, *, overrides: int = 0,
                              override_correct: int = 0,
                              overridden: int = 0,
                              scope: str = "") -> None:
        path = f"{self._scope}/{scope}" if scope else self._scope
        self._probe.record_component_bulk(
            provider, provided, correct, overrides=overrides,
            override_correct=override_correct, overridden=overridden,
            scope=path)

    def scoped(self, name: str) -> "ScopedProbe":
        return ScopedProbe(self._probe, f"{self._scope}/{name}")

    def __repr__(self) -> str:
        return f"ScopedProbe({self._scope!r})"


def probe_consistent_with(report: dict[str, Any], result: Any) -> bool:
    """Check a probe report against its run's :class:`SimulationResult`.

    Verifies the accounting invariants: per scope, component
    ``provided`` counts sum to the scope's ``predictions``; the root
    scope (when it recorded attribution) saw exactly the measured
    conditional branches, with ``correct`` summing to the non-
    mispredicted count; and the branch profile totals match the run's
    branch and misprediction counts.
    """
    attribution = report.get("attribution", {})
    for scope in attribution.values():
        provided = sum(c["provided"] for c in scope["components"].values())
        if provided != scope["predictions"]:
            return False
    root = attribution.get("")
    if root is not None:
        if root["predictions"] != result.num_conditional_branches:
            return False
        correct = sum(c["correct"] for c in root["components"].values())
        if correct != (result.num_conditional_branches
                       - result.mispredictions):
            return False
    branches = report.get("branches", {})
    tracked = branches.get("tracked", 0)
    if tracked:
        # Offenders are a bounded slice, so totals can only be checked
        # when every tracked branch is listed.
        offenders = branches.get("top_offenders", [])
        if tracked == len(offenders):
            if (sum(o["occurrences"] for o in offenders)
                    != result.num_conditional_branches):
                return False
            if (sum(o["mispredictions"] for o in offenders)
                    != result.mispredictions):
                return False
    return True
