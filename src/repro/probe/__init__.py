"""Component-level prediction attribution and structural statistics.

Run-level telemetry (:mod:`repro.telemetry`) can say *that* a predictor
mispredicted; this package says *which component* was responsible.  A
:class:`PredictionProbe` attached to a composed predictor accumulates,
per component, how many final predictions that component *provided*, how
many of those were correct, and how often it *overrode* (or was
overridden by) a sibling — plus a per-branch top-offenders profile and
end-of-run structural snapshots of the underlying tables.

The contract mirrors the telemetry layer: **near-zero overhead when
disabled**.  Without a probe attached every hook collapses to a single
``is not None`` test on a local variable, the hot loop allocates
nothing, and ``SimulationResult`` JSON (and therefore cache keys and
goldens) is byte-identical to a probe-free build.

>>> probe = PredictionProbe(top_branches=2)
>>> probe.start()
>>> probe.record(0x40, "loop", True, overrode="main")
>>> probe.record(0x44, "main", False)
>>> report = probe.report()
>>> report["attribution"][""]["predictions"]
2
>>> report["attribution"][""]["components"]["loop"]["overrides"]
1
"""

from .attribution import (
    PROBE_SCHEMA,
    PredictionProbe,
    ScopedProbe,
    probe_consistent_with,
)

__all__ = [
    "PROBE_SCHEMA",
    "PredictionProbe",
    "ScopedProbe",
    "probe_consistent_with",
]
