"""Exception hierarchy for the repro library.

Everything raised on purpose by this package derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TraceError",
    "TraceFormatError",
    "TraceValidationError",
    "SimulationError",
    "EngineNotSupportedError",
    "CacheError",
    "ConfigurationError",
    "TelemetryError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TraceError(ReproError):
    """Base class for trace reading/writing problems."""


class TraceFormatError(TraceError):
    """The byte stream is not a well-formed trace of the expected format."""


class TraceValidationError(TraceError):
    """A structurally well-formed record violates a semantic rule.

    The SBBT specification has two such rules (Section IV-C): unconditional
    branches must be taken, and a not-taken conditional-indirect branch
    must have a null target.
    """


class SimulationError(ReproError):
    """A simulation could not be carried out as requested."""


class EngineNotSupportedError(SimulationError):
    """The vectorized engine was requested for a predictor without a
    vector kernel (``Predictor.vector_kernel()`` returned ``None``).

    Only raised for an *explicit* ``engine="vectorized"`` request; the
    ``"auto"`` engine falls back to the scalar loop instead.
    """


class CacheError(ReproError):
    """The simulation result cache could not honour a request.

    Only raised for *caller* mistakes (bad directory, invalid capacity).
    Corrupted or concurrently-clobbered entries never raise — they are
    treated as misses so a damaged cache can only cost recomputation,
    never return wrong results.
    """


class ConfigurationError(ReproError):
    """A component was configured with inconsistent parameters."""


class TelemetryError(ReproError):
    """The observability layer (:mod:`repro.telemetry`) was misused.

    Only raised for *caller* mistakes (non-positive interval, malformed
    manifest/telemetry documents).  The instrumentation hooks themselves
    never raise from inside a simulation — a simulation that succeeds
    without telemetry also succeeds with it.
    """
