"""The simulation library core (paper Sections III-IV).

Everything needed to run a user-defined branch predictor over a program
trace and obtain a JSON result object: the branch model, the
``predict``/``train``/``track`` predictor interface, the standard and
comparison simulators, batch running, and the metrics/output machinery.
"""

from .branch import (
    OPCODE_CALL,
    OPCODE_COND_JUMP,
    OPCODE_IND_CALL,
    OPCODE_IND_JUMP,
    OPCODE_JUMP,
    OPCODE_RET,
    Branch,
    BranchType,
    Opcode,
)
from .batch import BatchResult, SuiteError, TraceFailure, TraceSimulationError, run_suite
from .batch import TimingSummary
from .engine import EngineStats, ExecutionEngine, SharedTrace
from .comparison import (
    ComparisonEntry,
    ComparisonResult,
    MultiComparisonResult,
    compare,
    compare_many,
)
from .errors import (
    CacheError,
    ConfigurationError,
    ReproError,
    SimulationError,
    TelemetryError,
    TraceError,
    TraceFormatError,
    TraceValidationError,
)
from .metrics import BranchStats, MostFailedEntry, accuracy, most_failed_branches, mpki
from .output import SIMULATOR_NAME, SIMULATOR_VERSION, SimulationResult
from .plan import WorkPlan, WorkUnit, execute_plan
from .predictor import MetadataMixin, Predictor, canonical_spec, derive_spec
from .simulator import SimulationConfig, simulate, simulate_file

__all__ = [
    "Branch", "BranchType", "Opcode",
    "OPCODE_CALL", "OPCODE_COND_JUMP", "OPCODE_IND_CALL", "OPCODE_IND_JUMP",
    "OPCODE_JUMP", "OPCODE_RET",
    "BatchResult", "TimingSummary", "TraceFailure", "run_suite",
    "EngineStats", "ExecutionEngine", "SharedTrace",
    "WorkPlan", "WorkUnit", "execute_plan",
    "ComparisonEntry", "ComparisonResult", "MultiComparisonResult",
    "compare", "compare_many",
    "CacheError", "ConfigurationError", "ReproError",
    "SimulationError", "SuiteError", "TelemetryError",
    "TraceSimulationError", "TraceError",
    "TraceFormatError", "TraceValidationError",
    "BranchStats", "MostFailedEntry", "accuracy", "most_failed_branches",
    "mpki",
    "SIMULATOR_NAME", "SIMULATOR_VERSION", "SimulationResult",
    "MetadataMixin", "Predictor", "canonical_spec", "derive_spec",
    "SimulationConfig", "simulate", "simulate_file",
]
