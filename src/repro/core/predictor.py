"""The predictor interface (paper Section IV-A/B).

A branch predictor is a class that derives from :class:`Predictor` and
overrides three functions:

``predict(ip)``
    Return the outcome guess for the branch at ``ip``.  Must not change
    state in a way that affects future predictions (it may cache work for
    the matching ``train`` call — see the tournament example).

``train(branch)``
    Update the *prediction* structures given the resolved outcome.

``track(branch)``
    Update the *scenario* structures (recent-behaviour state such as
    global history) given the resolved outcome.

The split between ``train`` and ``track`` is the library's composability
mechanism: a meta-predictor may train a sub-component selectively (partial
update) while still tracking every branch through it, something that is
impossible when one ``update`` function does both jobs (Section VI-D).

When driven by the standard simulator, ``train`` is invoked for
conditional branches only, and ``track`` is invoked for every branch,
after ``train``.
"""

from __future__ import annotations

import abc
import numbers
from typing import Any

from .branch import Branch

__all__ = ["Predictor", "MetadataMixin", "canonical_spec", "derive_spec"]


def canonical_spec(value: Any) -> Any:
    """Recursively normalize a spec fragment into canonical JSON form.

    Dict keys are sorted, tuples/lists become lists, enums and numpy
    scalars collapse to plain Python scalars.  Anything that cannot be
    represented as deterministic JSON raises ``TypeError`` — a spec that
    silently varied between runs would poison content-addressed caches.
    """
    if isinstance(value, dict):
        return {str(k): canonical_spec(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [canonical_spec(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)  # plain ints, IntEnums, numpy integer scalars
    if isinstance(value, numbers.Real):
        return float(value)  # floats and numpy float scalars
    raise TypeError(
        f"spec value {value!r} of type {type(value).__name__} is not "
        "canonically JSON-representable"
    )


def derive_spec(factory: Any) -> tuple[dict[str, Any], "Predictor | None"]:
    """Derive a factory's predictor spec as cheaply as possible.

    Content-addressed cache keys need the :meth:`Predictor.spec` of the
    configuration a factory builds, but constructing a table-heavy
    predictor (TAGE, BATAGE) just to read its parameters allocates every
    prediction table.  This helper supports a **cheap-spec path**: when
    the factory itself exposes a zero-argument ``spec`` callable (for
    example a small wrapper class, or a ``functools.partial`` whose
    ``spec`` attribute was assigned), that is used and **no predictor is
    constructed**.

    Returns ``(spec, instance)`` where ``instance`` is the predictor
    that had to be built to obtain the spec — or ``None`` on the cheap
    path.  The instance is cold (never trained), so callers may reuse it
    for the first real simulation instead of constructing again; it must
    be used for nothing else.
    """
    # A predictor *class* used directly as the factory exposes the
    # unbound ``Predictor.spec`` method — not a cheap-spec hook.
    hook = None if isinstance(factory, type) else getattr(factory, "spec", None)
    if callable(hook):
        return canonical_spec(hook()), None
    instance = factory()
    return instance.spec(), instance


class Predictor(abc.ABC):
    """Abstract base class of every branch predictor.

    Subclasses must implement :meth:`predict`, :meth:`train` and
    :meth:`track`; the remaining hooks are optional and feed the
    simulator's JSON output (Section IV-E).
    """

    @abc.abstractmethod
    def predict(self, ip: int) -> bool:
        """Guess the outcome of the branch at address ``ip``.

        Must be observably pure with respect to future predictions.
        """

    @abc.abstractmethod
    def train(self, branch: Branch) -> None:
        """Update prediction structures with the resolved ``branch``."""

    @abc.abstractmethod
    def track(self, branch: Branch) -> None:
        """Update scenario structures with the resolved ``branch``."""

    # ------------------------------------------------------------------
    # Optional hooks (the "other functions" of Section IV-A).
    # ------------------------------------------------------------------

    def metadata_stats(self) -> dict[str, Any]:
        """Static configuration for the output's ``metadata.predictor``.

        Conventionally includes a ``"name"`` key plus the parameter
        selection, so a results file is self-describing.
        """
        return {"name": type(self).__name__}

    def execution_stats(self) -> dict[str, Any]:
        """Dynamic statistics for the output's ``predictor_statistics``.

        Populated by designs that count internal events (table conflicts,
        allocation failures, provider distribution, ...).
        """
        return {}

    def on_warmup_end(self) -> None:
        """Called by the simulator when warm-up instructions are over.

        Predictors that keep their own statistics can reset them here so
        that ``execution_stats`` only reflects the measured region.
        """

    # ------------------------------------------------------------------
    # Probe hooks (component attribution, :mod:`repro.probe`).
    # ------------------------------------------------------------------

    #: The attached :class:`repro.probe.PredictionProbe` (or a scoped
    #: view of one), ``None`` when attribution is disabled.  A class
    #: attribute so probe-unaware predictors pay nothing: the instance
    #: never grows the slot and ``self._probe`` reads the shared None.
    _probe: Any = None

    def attach_probe(self, probe: Any) -> None:
        """Attach an attribution probe (``None`` detaches).

        Composed predictors override this to forward scoped views —
        ``probe.scoped("role")`` — to their sub-components, so nested
        compositions report attribution at every level.
        """
        self._probe = probe

    def probe_stats(self) -> dict[str, Any]:
        """End-of-run structural statistics for the probe report.

        Conventionally a dict of component name to the output of
        :func:`repro.utils.tables.distribution_stats` (occupancy,
        saturation, entropy); composed predictors nest their
        components' dicts.  Empty by default.
        """
        return {}

    def vector_kernel(self) -> Any:
        """The predictor's vectorized evaluation kernel, or ``None``.

        Table-indexed predictors whose update rules are expressible as
        the batched passes of :mod:`repro.core.vectorized` return a
        kernel object (an instance with a ``run(ctx)`` method, e.g.
        :class:`~repro.core.vectorized.SaturatingTableKernel`) built
        from their *configuration* — the live tables are never read, so
        a kernel can be requested from a cold instance.  Predictors
        without a kernel return ``None``: the ``"auto"`` engine then
        falls back to the scalar loop silently, while an explicit
        ``engine="vectorized"`` request raises
        :class:`~repro.core.errors.EngineNotSupportedError`.
        """
        return None

    def spec(self) -> dict[str, Any]:
        """Canonical (name + parameters) identity of this configuration.

        The simulation cache (:mod:`repro.cache`) keys results by this
        dict, so it must be **deterministic across runs and processes**
        and must change whenever a constructor parameter that affects
        predictions changes.  The default derives it from
        :meth:`metadata_stats` — which by library convention lists the
        name and every parameter — normalized through
        :func:`canonical_spec`.

        Composed predictors override this to build their spec from their
        components' ``spec()`` (not ``metadata_stats``), so a component
        with a customized spec stays correctly keyed when nested.

        Raises ``TypeError`` if the metadata contains values with no
        canonical JSON form; such predictors must override ``spec()``.
        """
        return canonical_spec(self.metadata_stats())

    # ------------------------------------------------------------------
    # Convenience.
    # ------------------------------------------------------------------

    def update(self, branch: Branch) -> None:
        """``train`` then ``track`` in one call.

        This is the single-function update style of ChampSim and the CBP5
        framework; provided so predictors written against this library are
        easy to drive from the baseline simulators.
        """
        if branch.is_conditional:
            self.train(branch)
        self.track(branch)

    def name(self) -> str:
        """The predictor's display name (from :meth:`metadata_stats`)."""
        return str(self.metadata_stats().get("name", type(self).__name__))


class MetadataMixin:
    """Mixin that assembles ``metadata_stats`` from declared parameters.

    Subclasses set ``_metadata_name`` and list parameter attribute names in
    ``_metadata_params``; the mixin reflects them into the JSON dict.  This
    keeps the "every example is parameterizable and self-describing"
    property of the paper's examples library without repeating dict
    literals in every predictor.
    """

    _metadata_name: str = ""
    _metadata_params: tuple[str, ...] = ()

    def metadata_stats(self) -> dict[str, Any]:
        """Reflect the declared parameters into the metadata dict."""
        stats: dict[str, Any] = {
            "name": self._metadata_name or type(self).__name__
        }
        for param in self._metadata_params:
            stats[param] = getattr(self, param)
        return stats
