"""The comparison simulator (paper Section VI-C).

Apart from the standard simulator, MBPlib offers a simulator that runs
*two* predictors in parallel over the same trace, to determine which
occurrences are mispredicted by only one of them.  Its ``most_failed``
section contains the branches that account for the biggest difference in
MPKI — which tells you which branches your new component predicts better
and whether any branch's predictability worsened.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Union

from pathlib import Path

from ..sbbt.trace import TraceData
from .metrics import accuracy, mpki
from .output import SIMULATOR_VERSION
from .predictor import Predictor
from .simulator import SimulationConfig, _resolve_trace

__all__ = ["ComparisonEntry", "ComparisonResult", "compare"]

TraceLike = Union[TraceData, str, Path]


@dataclass(frozen=True, slots=True)
class ComparisonEntry:
    """Per-branch divergence row of the comparison output.

    ``mpki_delta`` is ``mpki_b - mpki_a`` restricted to this branch:
    positive means predictor B mispredicts this branch more.
    """

    ip: int
    occurrences: int
    mispredictions_a: int
    mispredictions_b: int
    mpki_delta: float
    only_a: int
    only_b: int


@dataclass(slots=True)
class ComparisonResult:
    """Everything a comparison simulation produces."""

    trace_name: str
    simulation_instructions: int
    num_conditional_branches: int
    mispredictions_a: int
    mispredictions_b: int
    both_wrong: int
    only_a_wrong: int
    only_b_wrong: int
    simulation_time: float
    predictor_a_metadata: dict[str, Any]
    predictor_b_metadata: dict[str, Any]
    most_failed: list[ComparisonEntry] = field(default_factory=list)

    @property
    def mpki_a(self) -> float:
        """MPKI of the first predictor."""
        return mpki(self.mispredictions_a, self.simulation_instructions)

    @property
    def mpki_b(self) -> float:
        """MPKI of the second predictor."""
        return mpki(self.mispredictions_b, self.simulation_instructions)

    @property
    def mpki_delta(self) -> float:
        """``mpki_b - mpki_a`` (negative = B is the better predictor)."""
        return self.mpki_b - self.mpki_a

    def to_json(self) -> dict[str, Any]:
        """JSON object following the standard simulator's section layout."""
        return {
            "metadata": {
                "simulator": "repro MBPlib-style comparison simulator",
                "version": SIMULATOR_VERSION,
                "trace": self.trace_name,
                "simulation_instr": self.simulation_instructions,
                "num_conditional_branches": self.num_conditional_branches,
                "predictor_a": self.predictor_a_metadata,
                "predictor_b": self.predictor_b_metadata,
            },
            "metrics": {
                "mpki_a": self.mpki_a,
                "mpki_b": self.mpki_b,
                "mpki_delta": self.mpki_delta,
                "mispredictions_a": self.mispredictions_a,
                "mispredictions_b": self.mispredictions_b,
                "accuracy_a": accuracy(self.mispredictions_a,
                                       self.num_conditional_branches),
                "accuracy_b": accuracy(self.mispredictions_b,
                                       self.num_conditional_branches),
                "both_wrong": self.both_wrong,
                "only_a_wrong": self.only_a_wrong,
                "only_b_wrong": self.only_b_wrong,
                "simulation_time": self.simulation_time,
            },
            "most_failed": [
                {
                    "ip": e.ip,
                    "occurrences": e.occurrences,
                    "mispredictions_a": e.mispredictions_a,
                    "mispredictions_b": e.mispredictions_b,
                    "mpki_delta": e.mpki_delta,
                    "only_a": e.only_a,
                    "only_b": e.only_b,
                }
                for e in self.most_failed
            ],
        }


def compare(predictor_a: Predictor, predictor_b: Predictor, trace: TraceLike,
            config: SimulationConfig | None = None, *,
            max_entries: int = 32,
            trace_name: str | None = None) -> ComparisonResult:
    """Simulate two predictors in parallel over the same trace.

    Both predictors see the identical predict/train/track sequence, so the
    result isolates the effect of the design difference.  ``most_failed``
    is sorted by absolute per-branch MPKI difference.
    """
    config = config or SimulationConfig()
    data, default_name = _resolve_trace(trace)
    name = trace_name if trace_name is not None else default_name

    start = time.perf_counter()
    warmup = config.warmup_instructions
    track_all = not config.track_only_conditional

    instructions = 0
    conditional = 0
    wrong_a = wrong_b = both = only_a = only_b = 0
    # ip -> [occurrences, mispredictions_a, mispredictions_b, only_a, only_b]
    per_branch: dict[int, list[int]] = {}

    for branch, gap in data.iter_branches():
        instructions += gap + 1
        if (config.max_instructions is not None
                and instructions > config.max_instructions):
            instructions -= gap + 1
            break
        in_measurement = instructions > warmup
        if branch.opcode.is_conditional:
            miss_a = predictor_a.predict(branch.ip) != branch.taken
            miss_b = predictor_b.predict(branch.ip) != branch.taken
            if in_measurement:
                conditional += 1
                wrong_a += miss_a
                wrong_b += miss_b
                both += miss_a and miss_b
                only_a += miss_a and not miss_b
                only_b += miss_b and not miss_a
                cell = per_branch.get(branch.ip)
                if cell is None:
                    cell = per_branch[branch.ip] = [0, 0, 0, 0, 0]
                cell[0] += 1
                cell[1] += miss_a
                cell[2] += miss_b
                cell[3] += miss_a and not miss_b
                cell[4] += miss_b and not miss_a
            predictor_a.train(branch)
            predictor_b.train(branch)
            predictor_a.track(branch)
            predictor_b.track(branch)
        elif track_all:
            predictor_a.track(branch)
            predictor_b.track(branch)

    elapsed = time.perf_counter() - start
    measured = max(0, instructions - warmup)

    ranked = sorted(
        per_branch.items(),
        key=lambda item: (-abs(item[1][2] - item[1][1]), item[0]),
    )
    entries = [
        ComparisonEntry(
            ip=ip,
            occurrences=cell[0],
            mispredictions_a=cell[1],
            mispredictions_b=cell[2],
            mpki_delta=mpki(cell[2], measured) - mpki(cell[1], measured),
            only_a=cell[3],
            only_b=cell[4],
        )
        for ip, cell in ranked[:max_entries]
        if cell[1] != cell[2]
    ]
    return ComparisonResult(
        trace_name=name,
        simulation_instructions=measured,
        num_conditional_branches=conditional,
        mispredictions_a=wrong_a,
        mispredictions_b=wrong_b,
        both_wrong=both,
        only_a_wrong=only_a,
        only_b_wrong=only_b,
        simulation_time=elapsed,
        predictor_a_metadata=predictor_a.metadata_stats(),
        predictor_b_metadata=predictor_b.metadata_stats(),
        most_failed=entries,
    )


@dataclass(slots=True)
class MultiComparisonResult:
    """Results of N predictors over one trace, plus the agreement matrix."""

    trace_name: str
    simulation_instructions: int
    num_conditional_branches: int
    names: list[str]
    mispredictions: list[int]
    #: ``both_wrong[i][j]`` = branches mispredicted by both i and j.
    both_wrong: list[list[int]]
    simulation_time: float

    def mpki_of(self, index: int) -> float:
        """MPKI of predictor ``index``."""
        return mpki(self.mispredictions[index], self.simulation_instructions)

    def ranking(self) -> list[tuple[str, float]]:
        """(name, mpki) pairs sorted best first."""
        pairs = [(self.names[i], self.mpki_of(i))
                 for i in range(len(self.names))]
        return sorted(pairs, key=lambda pair: pair[1])

    def overlap(self, i: int, j: int) -> float:
        """Jaccard overlap of two predictors' misprediction sets.

        High overlap means the designs fail on the same branches (little
        to gain from combining them); low overlap is hybridization food.
        """
        union = (self.mispredictions[i] + self.mispredictions[j]
                 - self.both_wrong[i][j])
        if union == 0:
            return 1.0
        return self.both_wrong[i][j] / union

    def to_json(self) -> dict[str, Any]:
        """JSON report with the full agreement matrix."""
        return {
            "metadata": {
                "simulator": "repro MBPlib-style multi-comparison simulator",
                "trace": self.trace_name,
                "simulation_instr": self.simulation_instructions,
                "num_conditional_branches": self.num_conditional_branches,
                "predictors": self.names,
            },
            "metrics": {
                "mpki": {self.names[i]: self.mpki_of(i)
                         for i in range(len(self.names))},
                "mispredictions": dict(zip(self.names, self.mispredictions)),
                "both_wrong": self.both_wrong,
                "simulation_time": self.simulation_time,
            },
        }


def compare_many(predictors: "dict[str, Predictor]", trace: TraceLike,
                 config: SimulationConfig | None = None, *,
                 trace_name: str | None = None) -> MultiComparisonResult:
    """Simulate any number of predictors in parallel over one trace.

    Generalizes :func:`compare`: every predictor sees the identical
    predict/train/track sequence in a single pass over the trace, and the
    result carries the pairwise both-wrong matrix, from which per-pair
    misprediction overlaps (and hybridization potential) can be read.
    """
    if not predictors:
        raise ValueError("compare_many needs at least one predictor")
    config = config or SimulationConfig()
    data, default_name = _resolve_trace(trace)
    name = trace_name if trace_name is not None else default_name
    names = list(predictors)
    instances = [predictors[n] for n in names]
    count = len(instances)

    start = time.perf_counter()
    warmup = config.warmup_instructions
    track_all = not config.track_only_conditional

    instructions = 0
    conditional = 0
    wrong_totals = [0] * count
    both = [[0] * count for _ in range(count)]

    for branch, gap in data.iter_branches():
        instructions += gap + 1
        if (config.max_instructions is not None
                and instructions > config.max_instructions):
            instructions -= gap + 1
            break
        if branch.opcode & 1:
            wrong = [p.predict(branch.ip) != branch.taken
                     for p in instances]
            if instructions > warmup:
                conditional += 1
                for i in range(count):
                    if wrong[i]:
                        wrong_totals[i] += 1
                        row = both[i]
                        for j in range(i, count):
                            if wrong[j]:
                                row[j] += 1
            for p in instances:
                p.train(branch)
            for p in instances:
                p.track(branch)
        elif track_all:
            for p in instances:
                p.track(branch)

    # Mirror the upper triangle.
    for i in range(count):
        for j in range(i):
            both[i][j] = both[j][i]

    return MultiComparisonResult(
        trace_name=name,
        simulation_instructions=max(0, instructions - warmup),
        num_conditional_branches=conditional,
        names=names,
        mispredictions=wrong_totals,
        both_wrong=both,
        simulation_time=time.perf_counter() - start,
    )


__all__ += ["MultiComparisonResult", "compare_many"]
