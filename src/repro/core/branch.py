"""The branch model shared by every simulator and trace format.

A branch is its instruction address (``ip``), its target, a 4-bit
:class:`Opcode` and an outcome.  The opcode encoding follows the SBBT
specification (paper Section IV-C), which itself follows the BT9 notion of
opcode:

* bit 0 — the branch is **conditional**
* bit 1 — the branch is **indirect**
* bits 2–3 — the base type: ``JUMP`` (``00``), ``RET`` (``01``),
  ``CALL`` (``10``)

Branches that push to or pop from the return-address stack are labelled
CALL and RET respectively; everything else is a JUMP.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["BranchType", "Opcode", "Branch"]


class BranchType(enum.IntEnum):
    """Base type of a branch, as stored in opcode bits 2-3."""

    JUMP = 0b00
    RET = 0b01
    CALL = 0b10


class Opcode(int):
    """A 4-bit branch opcode with named accessors.

    ``Opcode`` is an ``int`` subclass so it packs directly into SBBT
    packets while still reading naturally in predictor code
    (``b.opcode.is_conditional``).

    >>> op = Opcode.encode(conditional=True, indirect=False,
    ...                    branch_type=BranchType.JUMP)
    >>> op.is_conditional, op.is_indirect, op.branch_type
    (True, False, <BranchType.JUMP: 0>)
    """

    __slots__ = ()

    _CONDITIONAL_BIT = 1 << 0
    _INDIRECT_BIT = 1 << 1
    _TYPE_SHIFT = 2

    def __new__(cls, value: int = 0) -> "Opcode":
        value = int(value)
        if not 0 <= value < 16:
            raise ValueError(f"opcode must fit in 4 bits, got {value}")
        if (value >> cls._TYPE_SHIFT) == 0b11:
            raise ValueError(f"opcode {value:#x} uses the reserved base type 0b11")
        return super().__new__(cls, value)

    @classmethod
    def encode(cls, *, conditional: bool, indirect: bool,
               branch_type: BranchType) -> "Opcode":
        """Build an opcode from its three fields."""
        value = (int(BranchType(branch_type)) << cls._TYPE_SHIFT)
        if conditional:
            value |= cls._CONDITIONAL_BIT
        if indirect:
            value |= cls._INDIRECT_BIT
        return cls(value)

    @property
    def is_conditional(self) -> bool:
        """Whether the branch outcome depends on a condition."""
        return bool(self & self._CONDITIONAL_BIT)

    @property
    def is_indirect(self) -> bool:
        """Whether the target comes from a register/memory value."""
        return bool(self & self._INDIRECT_BIT)

    @property
    def branch_type(self) -> BranchType:
        """The JUMP/CALL/RET base type."""
        return BranchType(int(self) >> self._TYPE_SHIFT)

    @property
    def is_call(self) -> bool:
        """Whether the branch pushes to the return-address stack."""
        return self.branch_type is BranchType.CALL

    @property
    def is_return(self) -> bool:
        """Whether the branch pops from the return-address stack."""
        return self.branch_type is BranchType.RET

    def mnemonic(self) -> str:
        """A short human-readable opcode name, e.g. ``"cond jump"``."""
        parts = []
        if self.is_conditional:
            parts.append("cond")
        if self.is_indirect:
            parts.append("ind")
        parts.append(self.branch_type.name.lower())
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"Opcode({int(self):#06b})"


# Frequently used opcodes, named for convenience in tests and generators.
OPCODE_COND_JUMP = Opcode.encode(conditional=True, indirect=False,
                                 branch_type=BranchType.JUMP)
OPCODE_JUMP = Opcode.encode(conditional=False, indirect=False,
                            branch_type=BranchType.JUMP)
OPCODE_IND_JUMP = Opcode.encode(conditional=False, indirect=True,
                                branch_type=BranchType.JUMP)
OPCODE_CALL = Opcode.encode(conditional=False, indirect=False,
                            branch_type=BranchType.CALL)
OPCODE_IND_CALL = Opcode.encode(conditional=False, indirect=True,
                                branch_type=BranchType.CALL)
OPCODE_RET = Opcode.encode(conditional=False, indirect=True,
                           branch_type=BranchType.RET)

__all__ += [
    "OPCODE_COND_JUMP", "OPCODE_JUMP", "OPCODE_IND_JUMP",
    "OPCODE_CALL", "OPCODE_IND_CALL", "OPCODE_RET",
]


@dataclass(frozen=True, slots=True)
class Branch:
    """One executed branch: the unit the predictor interface consumes.

    This mirrors ``mbp::Branch``: the simulator hands it to
    :meth:`repro.core.predictor.Predictor.train` and ``track``.  Meta-
    predictors are free to construct synthetic ``Branch`` values (the
    generalized tournament in Listing 4 trains its chooser with a branch
    whose *outcome* encodes which sub-predictor was right).

    Attributes
    ----------
    ip:
        Virtual address of the branch instruction.
    target:
        Virtual address the branch goes to when taken (0 for a not-taken
        conditional-indirect branch, per the SBBT validity rules).
    opcode:
        The 4-bit :class:`Opcode`.
    taken:
        The resolved outcome.
    """

    ip: int
    target: int
    opcode: Opcode
    taken: bool

    def is_taken(self) -> bool:
        """The resolved outcome (method form, matching ``mbp::Branch``)."""
        return self.taken

    @property
    def is_conditional(self) -> bool:
        """Shorthand for ``opcode.is_conditional``."""
        return self.opcode.is_conditional

    @property
    def is_indirect(self) -> bool:
        """Shorthand for ``opcode.is_indirect``."""
        return self.opcode.is_indirect

    def with_outcome(self, taken: bool) -> "Branch":
        """A copy of this branch with a different outcome.

        The idiom used by meta-predictors to train a chooser component.
        """
        return Branch(self.ip, self.target, self.opcode, taken)
