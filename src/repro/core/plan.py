"""Work-plan intermediate representation for the execution pipeline.

Every multi-run driver in the library — :func:`repro.core.batch.run_suite`,
the sweeps and searches in :mod:`repro.analysis`, the serve daemon's
suite/sweep operations and the ``mbp suite|sweep`` CLI — ultimately wants
the same thing: *simulate this set of (predictor configuration, trace)
pairs and give me the outcomes in a known order*.  Historically each
caller assembled that task list itself, with four slightly different
code paths around caching, worker pools and failure isolation.

This module is the single funnel they all lower into:

* :class:`WorkUnit` — one schedulable simulation: a predictor factory, a
  trace, a display name, the simulation config, the probe flag, the
  simulation engine, and an opaque integer ``tag`` callers use to group
  units back into higher-level results (the sweep point index, the
  search candidate index, ...).
* :class:`WorkPlan` — an ordered, immutable sequence of work units with
  lowering constructors (:meth:`WorkPlan.for_suite`,
  :meth:`WorkPlan.for_points`) and grouping helpers.
* :func:`execute_plan` — runs a plan through the cache, then through one
  of the three execution backends (inline, throwaway process pool, or a
  persistent :class:`~repro.core.engine.ExecutionEngine` with adaptive
  chunked dispatch), preserving per-unit failure isolation and returning
  outcomes in plan order.

The IR deliberately carries *no* scheduling policy: chunking, windowing
and worker counts live in the backends, so the same plan is byte-for-byte
reproducible serially and in parallel (the differential property the
test suite pins).
"""

from __future__ import annotations

import math
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence, Union

from ..sbbt.trace import TraceData
from ..tracing import NULL_TRACER
from .output import SimulationResult
from .predictor import Predictor, derive_spec
from .simulator import SimulationConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.instrumentation import Instrumentation
    from .batch import CacheLike, TraceFailure
    from .engine import ExecutionEngine

__all__ = [
    "WorkUnit",
    "WorkPlan",
    "execute_plan",
    "default_trace_names",
    "normalize_batch",
    "normalize_chunk",
]

PredictorFactory = Callable[[], Predictor]
TraceLike = Union[TraceData, str, Path]

#: Outcome of one work unit: a result or a per-unit failure record.
Outcome = Any


def default_trace_names(traces: Sequence[TraceLike]) -> list[str]:
    """The display names :func:`run_suite` has always defaulted to:
    the path string for file traces, ``trace[i]`` for in-memory data."""
    return [
        str(t) if not isinstance(t, TraceData) else f"trace[{i}]"
        for i, t in enumerate(traces)
    ]


def normalize_chunk(chunk: int | str) -> int | None:
    """Validate a chunk spec: ``"auto"`` -> ``None`` (adaptive sizing),
    an integer (or integer string) >= 1 -> that fixed size."""
    if chunk == "auto":
        return None
    try:
        size = int(chunk)
        if size != float(chunk):  # reject silent truncation (2.5 -> 2)
            raise ValueError
    except (TypeError, ValueError):
        raise ValueError(
            f"chunk must be 'auto' or a positive integer, got {chunk!r}"
        ) from None
    if size < 1:
        raise ValueError(f"chunk must be >= 1, got {size}")
    return size


def normalize_batch(batch: str | bool) -> bool:
    """Validate a batch spec: ``"auto"`` (group batchable units per
    trace) -> True, ``"off"`` (always per-unit) -> False."""
    if batch in ("auto", True):
        return True
    if batch in ("off", False):
        return False
    raise ValueError(f"batch must be 'auto' or 'off', got {batch!r}")


@dataclass(frozen=True, slots=True)
class WorkUnit:
    """One schedulable simulation of the pipeline IR.

    ``tag`` is an opaque grouping key owned by the caller that lowered
    the plan — sweep point index, search candidate index, request slot —
    and travels untouched through every backend.
    """

    factory: PredictorFactory
    trace: TraceLike
    name: str
    config: SimulationConfig
    probe: bool = False
    sim_engine: str = "scalar"
    tag: int = 0


@dataclass(frozen=True, slots=True)
class WorkPlan:
    """An ordered, immutable batch of :class:`WorkUnit`.

    Plan order *is* result order: every backend returns (or yields
    indices into) outcomes positionally aligned with ``units``.
    """

    units: tuple[WorkUnit, ...]

    def __len__(self) -> int:
        return len(self.units)

    def __iter__(self) -> Iterator[WorkUnit]:
        return iter(self.units)

    def __getitem__(self, index: int) -> WorkUnit:
        return self.units[index]

    # ------------------------------------------------------------------
    # Lowering constructors.
    # ------------------------------------------------------------------

    @classmethod
    def for_suite(cls, factory: PredictorFactory,
                  traces: Sequence[TraceLike],
                  config: SimulationConfig | None = None, *,
                  names: Sequence[str] | None = None,
                  probe: bool = False,
                  sim_engine: str = "scalar",
                  tag: int = 0) -> "WorkPlan":
        """Lower one predictor over a trace suite (``run_suite`` shape)."""
        config = config or SimulationConfig()
        if names is not None and len(names) != len(traces):
            raise ValueError("names and traces must have the same length")
        resolved = list(names) if names is not None else \
            default_trace_names(traces)
        return cls(units=tuple(
            WorkUnit(factory=factory, trace=trace, name=name, config=config,
                     probe=probe, sim_engine=sim_engine, tag=tag)
            for trace, name in zip(traces, resolved)
        ))

    @classmethod
    def for_points(cls, factories: Sequence[tuple[int, PredictorFactory]],
                   traces: Sequence[TraceLike],
                   config: SimulationConfig | None = None, *,
                   names: Sequence[str] | None = None,
                   probe: bool = False,
                   sim_engine: str = "scalar") -> "WorkPlan":
        """Lower many configurations over one trace set (sweep/search
        shape): the full cross product, grouped by the given tags, trace
        order preserved within each tag."""
        config = config or SimulationConfig()
        if names is not None and len(names) != len(traces):
            raise ValueError("names and traces must have the same length")
        resolved = list(names) if names is not None else \
            default_trace_names(traces)
        return cls(units=tuple(
            WorkUnit(factory=factory, trace=trace, name=name, config=config,
                     probe=probe, sim_engine=sim_engine, tag=tag)
            for tag, factory in factories
            for trace, name in zip(traces, resolved)
        ))

    # ------------------------------------------------------------------
    # Structure helpers.
    # ------------------------------------------------------------------

    def subset(self, indices: Sequence[int]) -> "WorkPlan":
        """A new plan of the units at ``indices``, in that order."""
        return WorkPlan(units=tuple(self.units[i] for i in indices))

    def tags(self) -> list[int]:
        """Distinct tags in first-appearance order."""
        seen: dict[int, None] = {}
        for unit in self.units:
            seen.setdefault(unit.tag, None)
        return list(seen)

    def group_outcomes(self, outcomes: Sequence[Outcome],
                       ) -> dict[int, list[Outcome]]:
        """Outcomes regrouped per tag (plan order within each tag)."""
        if len(outcomes) != len(self.units):
            raise ValueError(
                f"expected {len(self.units)} outcomes, got {len(outcomes)}")
        grouped: dict[int, list[Outcome]] = {}
        for unit, outcome in zip(self.units, outcomes):
            grouped.setdefault(unit.tag, []).append(outcome)
        return grouped


# ----------------------------------------------------------------------
# Plan execution: the single cache + dispatch funnel.
# ----------------------------------------------------------------------


def _batch_groups(plan: WorkPlan, indices: Sequence[int],
                  ) -> tuple[list[list[int]], list[int]]:
    """Partition cache-missed unit indices into per-trace batch groups.

    A unit is *batchable* when its ``sim_engine`` admits the vectorized
    engine (``"vectorized"`` or ``"auto"``).  Batchable units sharing a
    trace — same :class:`~repro.sbbt.trace.TraceData` object, or the
    same path string — form one group; groups of at least two units are
    worth a batched pass (the whole point is amortizing the trace
    context across configs), singletons and non-batchable units stay on
    the per-unit path.  Returns ``(groups, loose)`` with ``loose``
    sorted back into plan order.
    """
    buckets: dict[Any, list[int]] = {}
    loose: list[int] = []
    for i in indices:
        unit = plan[i]
        if unit.sim_engine not in ("vectorized", "auto"):
            loose.append(i)
            continue
        trace = unit.trace
        key = (("data", id(trace)) if isinstance(trace, TraceData)
               else ("path", str(trace)))
        buckets.setdefault(key, []).append(i)
    groups: list[list[int]] = []
    for members in buckets.values():
        if len(members) >= 2:
            groups.append(members)
        else:
            loose.extend(members)
    loose.sort()
    return groups, loose


def execute_plan(plan: WorkPlan, *,
                 workers: int = 1,
                 engine: "ExecutionEngine | None" = None,
                 cache: "CacheLike" = None,
                 instrumentation: "Instrumentation | None" = None,
                 chunk: int | str = "auto",
                 batch: str | bool = "auto",
                 tracer: "Any" = None,
                 trace_parent: "Any" = None,
                 ) -> list[Outcome]:
    """Execute every unit of ``plan``; return outcomes in plan order.

    Each outcome is a :class:`~repro.core.output.SimulationResult` or a
    :class:`~repro.core.batch.TraceFailure` — per-unit failure isolation
    holds on every backend, so one bad trace or predictor bug never
    aborts the rest of the plan.

    Backend selection mirrors the historical ``run_suite`` contract:
    a caller-owned ``engine`` wins (persistent pool, resident traces,
    adaptive chunked dispatch — see
    :meth:`~repro.core.engine.ExecutionEngine.run_plan`); otherwise
    ``workers > 1`` fans out over a throwaway process pool; otherwise
    units run inline.  ``chunk`` (``"auto"`` or a fixed size >= 1) is
    forwarded to the engine backend and ignored elsewhere.

    With ``batch="auto"`` (the default), cache-missed units that share
    a trace and admit the vectorized engine are evaluated in *batched
    groups*: the trace is resolved once per group and
    :func:`repro.core.vectorized.run_unit_group` runs every config over
    the shared trace context in stacked numpy passes.  Each unit still
    produces its own outcome and cache entry, byte-identical (up to
    wall clock) to the per-unit path.  Batching applies to the inline
    backend here and is forwarded to the engine backend (whose workers
    batch within each chunk); the throwaway pool ignores it.
    ``batch="off"`` forces the per-unit path everywhere.
    ``instrumentation`` gains a ``batch_eval`` phase plus
    ``batch_groups`` / ``batch_units`` / ``context_reuse`` counters
    when groups actually form, and the tracer emits one
    ``batch_group`` span per group.

    With ``cache=`` (a :class:`repro.cache.SimulationCache` or directory
    path) cached units are answered without simulating and fresh results
    are stored.  Specs are derived once per distinct factory object, and
    the derivation's cold predictor instance is reused for that factory's
    first inline simulation (the ``derive_spec`` cheap-keying contract).

    ``instrumentation`` receives the suite-level phases and counters the
    batch layer has always reported: a ``cache_lookup`` phase with
    ``cache_hit`` / ``cache_miss`` counts, a ``simulate`` phase, and a
    ``trace_failure`` count — plus whatever the engine backend records.

    ``tracer`` (a :mod:`repro.tracing` object; the default is the
    zero-overhead null tracer) receives the same structure as spans: an
    ``execute_plan`` root (nested under ``trace_parent`` when given), a
    ``cache_lookup`` child carrying the hit/miss counts as attributes,
    and a ``simulate`` child under which the inline backend emits one
    ``unit`` span per simulation and the engine backend emits its
    dispatch/worker span tree (contexts cross the process boundary on
    the chunk payloads).
    """
    from .batch import TraceFailure, _resolve_cache, _run_one

    normalize_chunk(chunk)  # validate early, uniformly for all backends
    use_batch = normalize_batch(batch)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    instr = instrumentation
    trc = tracer if tracer is not None else NULL_TRACER
    store = _resolve_cache(cache)

    slots: list[Outcome | None] = [None] * len(plan)
    keys: list[str | None] = [None] * len(plan)
    pending: list[int] = []
    # Per-factory derivation artifacts: id(factory) -> (spec, cold
    # instance or None).  Factories are kept alive by the plan, so ids
    # are stable for the duration of this call.
    derived: dict[int, tuple[dict[str, Any], Predictor | None]] = {}

    def _derive(factory: PredictorFactory,
                ) -> tuple[dict[str, Any], Predictor | None]:
        entry = derived.get(id(factory))
        if entry is None:
            entry = derive_spec(factory)
            derived[id(factory)] = entry
        return entry

    def _take_prebuilt(factory: PredictorFactory) -> Predictor | None:
        """The derivation instance, at most once per factory (it is cold
        exactly once — reusing a trained predictor would corrupt runs)."""
        entry = derived.get(id(factory))
        if entry is None or entry[1] is None:
            return None
        derived[id(factory)] = (entry[0], None)
        return entry[1]

    with trc.span("execute_plan", parent=trace_parent,
                  attributes={"units": len(plan),
                              "workers": workers}) as plan_span:
        if store is not None:
            lookup_start = (time.perf_counter()
                            if instr is not None else 0.0)
            with trc.span("cache_lookup",
                          parent=plan_span.context) as lookup_span:
                for i, unit in enumerate(plan):
                    spec, _ = _derive(unit.factory)
                    try:
                        key = store.key_for(unit.trace, spec, unit.config)
                    except Exception as exc:  # noqa: BLE001 - bad trace
                        slots[i] = TraceFailure(
                            trace_name=unit.name,
                            error=f"{type(exc).__name__}: {exc}",
                            details=traceback.format_exc(),
                        )
                        continue
                    keys[i] = key
                    hit = store.get(key)
                    if hit is not None:
                        hit.trace_name = unit.name
                        slots[i] = hit
                    else:
                        pending.append(i)
                if instr is not None or trc.enabled:
                    hits = sum(1 for s in slots
                               if isinstance(s, SimulationResult))
                    lookup_span.set_attribute("cache_hit", hits)
                    lookup_span.set_attribute("cache_miss", len(pending))
                    if instr is not None:
                        instr.add_phase(
                            "cache_lookup",
                            time.perf_counter() - lookup_start)
                        instr.count("cache_hit", hits)
                        instr.count("cache_miss", len(pending))
        else:
            pending = list(range(len(plan)))

        simulate_start = time.perf_counter() if instr is not None else 0.0
        if pending:
            with trc.span("simulate", parent=plan_span.context,
                          attributes={"pending": len(pending)}) as sim:
                if engine is not None:
                    for position, outcome in engine.run_plan(
                            plan.subset(pending), chunk=chunk,
                            batch=batch,
                            instrumentation=instr, tracer=trc,
                            trace_parent=sim.context):
                        slots[pending[position]] = outcome
                elif workers == 1 or len(pending) <= 1:
                    groups, loose = (_batch_groups(plan, pending)
                                     if use_batch else ([], list(pending)))
                    if groups:
                        batch_start = (time.perf_counter()
                                       if instr is not None else 0.0)
                        context_reuse = 0
                        for members in groups:
                            context_reuse += _run_group_inline(
                                plan, members, slots, _take_prebuilt,
                                trc, sim.context)
                        if instr is not None:
                            instr.add_phase(
                                "batch_eval",
                                time.perf_counter() - batch_start)
                            instr.count("batch_groups", len(groups))
                            instr.count("batch_units",
                                        sum(len(m) for m in groups))
                            if context_reuse:
                                instr.count("context_reuse",
                                            context_reuse)
                    for i in loose:
                        unit = plan[i]
                        with trc.span(
                                "unit", parent=sim.context,
                                attributes={"unit": unit.name}) as unit_span:
                            outcome = _run_one(
                                unit.factory, unit.trace, unit.config,
                                unit.name, unit.probe,
                                predictor=_take_prebuilt(unit.factory),
                                sim_engine=unit.sim_engine)
                            if not isinstance(outcome, SimulationResult):
                                unit_span.set_status("error")
                            slots[i] = outcome
                else:
                    _execute_pool(plan, pending, slots, workers)
            if store is not None:
                for i in pending:
                    outcome = slots[i]
                    if isinstance(outcome, SimulationResult) and keys[i]:
                        store.put(keys[i], outcome)
        if instr is not None or trc.enabled:
            failed = sum(1 for s in slots
                         if not isinstance(s, SimulationResult))
            if failed:
                plan_span.set_attribute("trace_failure", failed)
            if instr is not None:
                instr.add_phase("simulate",
                                time.perf_counter() - simulate_start)
                if failed:
                    instr.count("trace_failure", failed)
    return list(slots)


def _execute_pool(plan: WorkPlan, pending: Sequence[int],
                  slots: list[Outcome | None], workers: int) -> None:
    """Throwaway-pool backend: one worker task per unit, results consumed
    in completion order so one slow unit never delays the others."""
    from concurrent.futures import ProcessPoolExecutor, as_completed

    from .batch import TraceFailure, _run_one

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {}
        for i in pending:
            unit = plan[i]
            futures[pool.submit(_run_one, unit.factory, unit.trace,
                                unit.config, unit.name, unit.probe,
                                sim_engine=unit.sim_engine)] = i
        for future in as_completed(futures):
            i = futures[future]
            try:
                slots[i] = future.result()
            except Exception as exc:  # noqa: BLE001 - broken pool
                slots[i] = TraceFailure(
                    trace_name=plan[i].name,
                    error=f"{type(exc).__name__}: {exc}",
                    details=traceback.format_exc(),
                )


def _run_group_inline(plan: WorkPlan, members: Sequence[int],
                      slots: list[Outcome | None],
                      take_prebuilt: Callable[[PredictorFactory],
                                              Predictor | None],
                      trc: Any, sim_context: Any) -> int:
    """Run one batch group inline; fill ``slots`` for every member.

    The trace is resolved once; a resolve failure becomes a
    :class:`~repro.core.batch.TraceFailure` for every member (the same
    record each would have produced alone).  Returns the group's
    ``context_reuse`` count for the caller's counter.
    """
    from .batch import TraceFailure
    from .simulator import _resolve_trace
    from .vectorized import run_unit_group

    first = plan[members[0]]
    with trc.span("batch_group", parent=sim_context,
                  attributes={"units": len(members),
                              "trace": first.name}) as group_span:
        try:
            data, _ = _resolve_trace(first.trace)
        except Exception as exc:  # noqa: BLE001 - per-unit isolation
            group_span.set_status("error")
            for i in members:
                slots[i] = TraceFailure(
                    trace_name=plan[i].name,
                    error=f"{type(exc).__name__}: {exc}",
                    details=traceback.format_exc(),
                )
            return 0
        units = [
            (plan[i].factory, plan[i].config, plan[i].name, plan[i].probe,
             plan[i].sim_engine, take_prebuilt(plan[i].factory))
            for i in members
        ]
        outcomes, info = run_unit_group(data, units)
        failed = 0
        for i, outcome in zip(members, outcomes):
            if not isinstance(outcome, SimulationResult):
                failed += 1
            slots[i] = outcome
        if failed:
            group_span.set_attribute("failures", failed)
        reuse = int(info.get("context_reuse", 0))
        if reuse:
            group_span.set_attribute("context_reuse", reuse)
        return reuse


def chunk_cost_size(ema_seconds: float | None, remaining: int,
                    workers: int, *, target_seconds: float,
                    max_chunk: int) -> int:
    """Adaptive chunk size from the measured per-unit cost.

    Cold (no measurement yet) -> 1: the first wave runs as singleton
    probe chunks whose timings seed the estimate.  Warm -> enough units
    to keep a worker busy for ~``target_seconds`` per round-trip, capped
    by ``max_chunk`` and by an even split of the remaining units across
    the workers (so the tail of a plan still parallelizes instead of
    landing on one worker as a single giant chunk).
    """
    if remaining <= 0:
        return 0
    if ema_seconds is None:
        return 1
    size = max(1, round(target_seconds / max(ema_seconds, 1e-9)))
    size = min(size, max_chunk, math.ceil(remaining / max(workers, 1)))
    return max(1, size)
