"""The standard simulator (paper Section IV).

What the simulator does, in the paper's words: read a program trace with
the branches seen during execution, ask the predictor to anticipate the
outcome of those branches, and record how many times the predictor was
incorrect.

Driving rules (Section IV-B):

* ``predict`` and ``train`` are invoked for **conditional** branches only;
* ``track`` is invoked for **every** branch (unless the user asks for
  ``track_only_conditional``), after ``train``;
* mispredictions inside the warm-up instruction window are not counted.

Observability (:mod:`repro.telemetry`, :mod:`repro.probe`): the
simulator accepts an optional ``instrumentation`` object — phase timers
bracketing trace decode ("trace_read"), the predict/train/track loop
("simulate_loop") and result finalization ("finalize") — an optional
``telemetry`` interval recorder sampling the running counters every N
instructions, and an optional ``probe`` accumulating component
attribution and per-branch profiles.  All default to off, and the off
path adds **no hook calls**: phases are per-run brackets behind
``is not None`` guards, interval sampling is a single integer
comparison against an unreachable sentinel, and the probe's entire
disabled cost is one ``is not None`` test of a local variable per
measured conditional branch, so Table III-style timing measurements
are unaffected.

All durations are measured with the monotonic ``time.perf_counter``;
wall-clock ``time.time`` (which can jump under NTP adjustment) is never
used for timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Union

from ..sbbt.reader import read_trace
from ..sbbt.trace import TraceData
from .errors import SimulationError
from .metrics import BranchStats, most_failed_branches
from .output import SimulationResult
from .predictor import Predictor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..probe import PredictionProbe
    from ..telemetry.instrumentation import Instrumentation
    from ..telemetry.interval import IntervalRecorder

__all__ = ["SimulationConfig", "simulate", "simulate_file"]

TraceLike = Union[TraceData, str, Path]

#: Sentinel window mark no instruction counter ever reaches; comparing
#: against it is the entire cost of disabled interval telemetry.
_NEVER = float("inf")


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Knobs of the standard simulator.

    Attributes
    ----------
    warmup_instructions:
        Mispredictions of branches within the first ``n`` instructions are
        not counted (the predictor still predicts/trains/tracks).
    max_instructions:
        Stop the simulation once this many instructions have executed
        (``None`` = run the whole trace).  The output's
        ``exhausted_trace`` flag records whether the trace ran out first.
    track_only_conditional:
        When true, ``track`` is only called for conditional branches —
        the option surfaced in the Listing-1 metadata.
    collect_most_failed:
        Per-branch statistics cost memory and time; disable them for pure
        speed measurements (the Table III benchmarks keep them on, as
        MBPlib's standard simulator always collects them).
    """

    warmup_instructions: int = 0
    max_instructions: int | None = None
    track_only_conditional: bool = False
    collect_most_failed: bool = True

    def __post_init__(self) -> None:
        if self.warmup_instructions < 0:
            raise SimulationError("warmup_instructions must be non-negative")
        if self.max_instructions is not None and self.max_instructions < 0:
            raise SimulationError("max_instructions must be non-negative")


def _resolve_trace(trace: TraceLike) -> tuple[TraceData, str]:
    """Accept in-memory data or a path; return (data, display name)."""
    if isinstance(trace, TraceData):
        return trace, "<memory>"
    return read_trace(trace), str(trace)


def simulate(predictor: Predictor, trace: TraceLike,
             config: SimulationConfig | None = None, *,
             trace_name: str | None = None,
             engine: str = "scalar",
             instrumentation: "Instrumentation | None" = None,
             telemetry: "IntervalRecorder | None" = None,
             probe: "PredictionProbe | None" = None
             ) -> SimulationResult:
    """Run ``predictor`` over ``trace`` and return the full result object.

    This is the library's main entry point — the user code calls it (the
    library never owns ``main``), which is the design inversion the paper
    argues for against framework-style simulators.

    ``engine`` selects the evaluation strategy: ``"scalar"`` (default)
    is the per-branch predict/train/track loop below; ``"vectorized"``
    evaluates the predictor's vector kernel
    (:func:`repro.core.vectorized.simulate_vectorized`, bit-identical
    results, raising
    :class:`~repro.core.errors.EngineNotSupportedError` when
    ``predictor.vector_kernel()`` is ``None``); ``"auto"`` uses the
    vectorized engine when a kernel exists and this loop otherwise.

    ``instrumentation`` (phase timers / counters), ``telemetry`` (an
    :class:`~repro.telemetry.interval.IntervalRecorder`) and ``probe``
    (a :class:`~repro.probe.PredictionProbe` attached to the predictor
    for the run, with its report landing in the result's non-serialized
    ``probe_report`` field) are optional observability hooks; when
    instrumentation records phase timings (exposes a ``phases`` dict), a
    snapshot is attached to the result's non-serialized ``phases``
    field.  None of them changes the metrics: a run with hooks produces
    the same :class:`SimulationResult` as one without.
    """
    if engine not in ("scalar", "vectorized", "auto"):
        raise SimulationError(
            f"unknown engine {engine!r}; expected 'scalar', 'vectorized' "
            "or 'auto'")
    if engine != "scalar":
        from .vectorized import simulate_vectorized

        if predictor.vector_kernel() is not None:
            return simulate_vectorized(
                predictor, trace, config, trace_name=trace_name,
                instrumentation=instrumentation, telemetry=telemetry,
                probe=probe)
        if engine == "vectorized":
            from .errors import EngineNotSupportedError

            raise EngineNotSupportedError(
                f"predictor {predictor.name()!r} does not provide a "
                "vector kernel; run it with --engine scalar (or auto to "
                "fall back automatically)")
    config = config or SimulationConfig()
    instr = instrumentation

    read_start = time.perf_counter() if instr is not None else 0.0
    data, default_name = _resolve_trace(trace)
    if instr is not None:
        instr.add_phase("trace_read", time.perf_counter() - read_start)
    name = trace_name if trace_name is not None else default_name

    start = time.perf_counter()

    warmup = config.warmup_instructions
    limit = config.max_instructions
    track_all = not config.track_only_conditional
    collect = config.collect_most_failed

    predict = predictor.predict
    train = predictor.train
    track = predictor.track

    if probe is not None:
        predictor.attach_probe(probe)
        probe.start(warmup_active=warmup > 0)
    probe_branch = probe.record_branch if probe is not None else None

    recorder = telemetry
    if recorder is not None:
        recorder.start(warmup)
        mark_step = recorder.interval
        next_mark: float = mark_step
    else:
        next_mark = _NEVER

    instructions = 0
    branch_instructions = 0
    conditional_branches = 0
    mispredictions = 0
    exhausted = True
    warmup_pending = warmup > 0
    # ip -> [occurrences, mispredictions]; plain lists keep the hot loop
    # free of method-call overhead, wrapped into BranchStats at the end.
    per_branch: dict[int, list[int]] = {}
    per_branch_get = per_branch.get

    for branch, gap in data.iter_branches():
        instructions += gap + 1
        if limit is not None and instructions > limit:
            instructions -= gap + 1
            exhausted = False
            break
        branch_instructions += 1
        if warmup_pending and instructions > warmup:
            warmup_pending = False
            predictor.on_warmup_end()
            if probe is not None:
                probe.arm()
        if branch.opcode & 1:  # conditional (opcode bit 0)
            prediction = predict(branch.ip)
            mispredicted = prediction != branch.taken
            if instructions > warmup:
                conditional_branches += 1
                if mispredicted:
                    mispredictions += 1
                if collect:
                    cell = per_branch_get(branch.ip)
                    if cell is None:
                        per_branch[branch.ip] = [1, 1 if mispredicted else 0]
                    else:
                        cell[0] += 1
                        if mispredicted:
                            cell[1] += 1
                if probe_branch is not None:
                    probe_branch(branch.ip, branch.taken, mispredicted)
            train(branch)
            track(branch)
        elif track_all:
            track(branch)
        if instructions >= next_mark:
            recorder.record(instructions, conditional_branches,
                            mispredictions)
            # A single large gap may cross several window marks; one
            # record covers them all and sampling realigns to the grid.
            next_mark = (instructions // mark_step + 1) * mark_step

    if exhausted and data.num_instructions > instructions:
        # Non-branch instructions after the last branch still count.
        trailing = data.num_instructions - instructions
        if limit is not None and instructions + trailing > limit:
            instructions = limit
            exhausted = False
        else:
            instructions += trailing

    elapsed = time.perf_counter() - start

    if recorder is not None:
        recorder.finish(instructions, conditional_branches, mispredictions)

    final_start = time.perf_counter() if instr is not None else 0.0
    probe_report = None
    if probe is not None:
        probe.finish(predictor)
        probe_report = probe.report()
        predictor.attach_probe(None)
    measured_instructions = max(0, instructions - warmup)
    most_failed = (
        most_failed_branches(
            {ip: BranchStats(cell[0], cell[1])
             for ip, cell in per_branch.items()},
            mispredictions, measured_instructions,
        )
        if collect else []
    )
    phases_snapshot = None
    if instr is not None:
        instr.add_phase("simulate_loop", elapsed)
        instr.add_phase("finalize", time.perf_counter() - final_start)
        recorded = getattr(instr, "phases", None)
        if recorded is not None:
            phases_snapshot = dict(recorded)
    return SimulationResult(
        trace_name=name,
        warmup_instructions=warmup,
        simulation_instructions=measured_instructions,
        exhausted_trace=exhausted,
        num_branch_instructions=branch_instructions,
        num_conditional_branches=conditional_branches,
        mispredictions=mispredictions,
        simulation_time=elapsed,
        predictor_metadata=predictor.metadata_stats(),
        predictor_statistics=predictor.execution_stats(),
        most_failed=most_failed,
        phases=phases_snapshot,
        probe_report=probe_report,
    )


def simulate_file(predictor: Predictor, path: str | Path,
                  config: SimulationConfig | None = None) -> SimulationResult:
    """Convenience wrapper: simulate the SBBT trace stored at ``path``."""
    return simulate(predictor, Path(path), config)
