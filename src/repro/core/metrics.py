"""Microarchitecture-agnostic metrics (paper Sections I and IV-E).

The de-facto standard metric of the field is **MPKI** — mispredictions per
kilo-instruction — together with accuracy and the "most failed" branch
set: the minimum number of static branches that, on their own, account for
half of all mispredictions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["mpki", "accuracy", "BranchStats", "most_failed_branches"]


def mpki(mispredictions: int, instructions: int) -> float:
    """Mispredictions per kilo-instruction.

    Zero-instruction simulations report 0.0 rather than dividing by zero
    (an empty measurement region has no mispredictions either).
    """
    if instructions < 0:
        raise ValueError(f"instructions must be non-negative, got {instructions}")
    if instructions == 0:
        return 0.0
    return 1000.0 * mispredictions / instructions


def accuracy(mispredictions: int, predictions: int) -> float:
    """Fraction of predictions that were correct (1.0 for no predictions)."""
    if predictions < 0:
        raise ValueError(f"predictions must be non-negative, got {predictions}")
    if predictions == 0:
        return 1.0
    return 1.0 - mispredictions / predictions


@dataclass(slots=True)
class BranchStats:
    """Per-static-branch occurrence and misprediction counts."""

    occurrences: int = 0
    mispredictions: int = 0

    def record(self, mispredicted: bool) -> None:
        """Count one dynamic execution of this static branch."""
        self.occurrences += 1
        if mispredicted:
            self.mispredictions += 1

    def accuracy(self) -> float:
        """Per-branch prediction accuracy."""
        return accuracy(self.mispredictions, self.occurrences)


@dataclass(frozen=True, slots=True)
class MostFailedEntry:
    """One row of the output's ``most_failed`` section."""

    ip: int
    occurrences: int
    mispredictions: int
    mpki: float
    accuracy: float


def most_failed_branches(
    stats: dict[int, BranchStats],
    total_mispredictions: int,
    simulation_instructions: int,
    *,
    max_entries: int | None = None,
) -> list[MostFailedEntry]:
    """The minimum set of branches accounting for half the mispredictions.

    Branches are taken greedily in decreasing misprediction count (ties
    broken by address for determinism) until their cumulative
    mispredictions reach half of ``total_mispredictions``.  The length of
    the returned list is the output's ``num_most_failed_branches`` metric.
    """
    if total_mispredictions == 0:
        return []
    ranked = sorted(
        ((ip, s) for ip, s in stats.items() if s.mispredictions > 0),
        key=lambda item: (-item[1].mispredictions, item[0]),
    )
    target, remainder = divmod(total_mispredictions, 2)
    target += remainder  # half, rounded up
    entries: list[MostFailedEntry] = []
    covered = 0
    for ip, branch_stats in ranked:
        if covered >= target:
            break
        if max_entries is not None and len(entries) >= max_entries:
            break
        covered += branch_stats.mispredictions
        entries.append(MostFailedEntry(
            ip=ip,
            occurrences=branch_stats.occurrences,
            mispredictions=branch_stats.mispredictions,
            mpki=mpki(branch_stats.mispredictions, simulation_instructions),
            accuracy=branch_stats.accuracy(),
        ))
    return entries


__all__ += ["MostFailedEntry"]
