"""Vectorized simulation engines for table-indexed predictors.

A pure-Python per-branch loop is orders of magnitude too slow to sweep
hundreds of traces, so this module evaluates table-indexed predictors
with numpy array passes that are **bit-exact** equivalents of their
scalar counterparts — property-tested against them — while running the
whole trace in a handful of vector operations.

The key observation is that these predictors' *inputs* are derivable
from the trace alone: the global history at branch ``t`` is just the
packed outcomes of the previous branches (and a per-address history is
the packed outcomes of the previous *same-key* branches), and the table
index is a pure hash of (ip, history).  What remains sequential is each
table entry's saturating counter — a ±1 random walk clamped to
``[lo, hi]`` — and clamped walks have an associative structure:

every update is the map ``s -> min(hi, max(lo, s + x))``, and the class
of maps ``s -> min(B, max(A, s + C))`` is **closed under composition**::

    (g . f)(s) = min(B', max(A', s + C'))
    C' = Cf + Cg
    A' = max(Ag, Af + Cg)
    B' = min(Bg, max(Ag, Bf + Cg))

so the counter state *before* every update is an exclusive prefix
composition — computable with a segmented Hillis-Steele scan in
``O(n log n)`` vector operations, with segments delimited by table index.

Those reusable passes — history/index derivation
(:func:`global_history_windows`, :func:`segmented_history_windows`,
:func:`xor_fold_array`, :func:`skew_hash_array`), the segmented
clamped-walk scan (:func:`clamped_walk_states`), per-table finish/count,
and a two-stream chooser combinator (:class:`TournamentKernel`) —
compose into *kernels* covering the whole table-indexed catalog:
bimodal, GShare, two-level, local, tournament, 2bc-gskew and YAGS.
Predictors advertise their kernel through
``Predictor.vector_kernel()``; :func:`simulate_vectorized` (or
``simulate(..., engine="vectorized")``) drives the kernel and produces
a :class:`~repro.core.output.SimulationResult` byte-identical to the
scalar engine's.  Predictors whose update rules read *other* tables'
current state (gskew's partial-update vote, YAGS's tag caches) use
hybrid kernels: every index/hash/history stream is precomputed with
array passes and only the irreducible cross-table update loop stays
scalar — over plain machine integers, far from the full per-branch
protocol cost.

This is the reproduction's analogue of MBPlib's C++-level speed work and
the subject of the ``benchmarks/test_vectorized_catalog.py`` benchmark.

Observability: the engines accept an optional ``instrumentation``
object (:mod:`repro.telemetry`).  The two standalone engines
(:func:`simulate_bimodal_vectorized`, :func:`simulate_gshare_vectorized`)
bracket their array passes as phases — "index", "scan" and "finish" —
while :func:`simulate_vectorized` reports the standard simulator's
phase set ("trace_read", "simulate_loop", "finalize") so manifests and
phase timers are engine-independent.  The default is off and adds no
calls, matching the standard simulator's contract.  They likewise
accept an optional ``probe`` (:class:`repro.probe.PredictionProbe`),
filled post-hoc from the prediction arrays via the bulk hooks —
per-component attribution (including override accounting for arbitrated
predictors), the full per-branch profile, and the final tables'
structural statistics reconstructed from the scans.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from ..sbbt.trace import TraceData
from .errors import EngineNotSupportedError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..probe import PredictionProbe
    from ..telemetry.instrumentation import Instrumentation
    from ..telemetry.interval import IntervalRecorder
    from .output import SimulationResult
    from .predictor import Predictor
    from .simulator import SimulationConfig

__all__ = [
    "VectorizedResult",
    "clamped_walk_states",
    "global_history_windows",
    "segmented_history_windows",
    "xor_fold_array",
    "skew_hash_array",
    "KernelRun",
    "SaturatingTableKernel",
    "stacked_saturating_runs",
    "TournamentKernel",
    "GskewKernel",
    "YagsKernel",
    "simulate_vectorized",
    "run_unit_group",
    "simulate_bimodal_vectorized",
    "simulate_gshare_vectorized",
]

_BIG = np.int64(1 << 40)  # sentinel for the identity map's bounds


@dataclass(frozen=True, slots=True)
class VectorizedResult:
    """Outcome of a vectorized simulation.

    ``predictions`` is per *conditional* branch, in trace order — exactly
    what the scalar predictor's ``predict`` would have returned — so the
    equivalence tests can compare prediction streams, not just totals.
    """

    num_conditional_branches: int
    mispredictions: int
    simulation_instructions: int
    predictions: np.ndarray

    @property
    def mpki(self) -> float:
        """Mispredictions per kilo-instruction."""
        if self.simulation_instructions == 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.simulation_instructions

    @property
    def accuracy(self) -> float:
        """Fraction of conditional branches predicted correctly."""
        if self.num_conditional_branches == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.num_conditional_branches


def clamped_walk_states(segments: np.ndarray, steps: np.ndarray,
                        lo: int, hi: int, initial: int = 0) -> np.ndarray:
    """State *before* each ±1 step of per-segment clamped walks.

    Parameters
    ----------
    segments:
        Segment key per element; elements of one segment must be
        contiguous and the array non-decreasing within runs (use a stable
        argsort by key to arrange this).  May be N-dimensional: the scan
        runs independently along the **last** axis, so a stack of
        same-length walks (one row per configuration) resolves in one
        pass — the config-batched evaluation path.
    steps:
        ``+1`` / ``-1`` increments, same shape as ``segments``.
    lo, hi:
        Clamp bounds.
    initial:
        Every segment's starting state.

    Returns the walk state seen by each element before its own step —
    i.e. the value the predictor read to make its prediction.
    """
    segments = np.asarray(segments)
    steps = np.asarray(steps)
    if steps.shape != segments.shape:
        raise SimulationError("segments and steps must have equal length")
    if lo > hi:
        raise SimulationError(f"empty clamp range [{lo}, {hi}]")
    n = segments.shape[-1]
    if n == 0:
        return np.zeros(segments.shape, dtype=np.int64)

    # ±1 steps and bounds from narrow counters: every A/B/C value stays
    # within ±(n + |lo| + |hi|), so int32 holds any realistic trace and
    # halves the scan's memory traffic against int64.  ``n`` is the walk
    # length (last axis), so a stacked call picks the same dtype as the
    # equivalent per-row calls.
    dtype = np.int32 if n + abs(lo) + abs(hi) < 2 ** 31 else np.int64

    # Inclusive element maps: s -> min(hi, max(lo, s + x)).
    A = np.full(segments.shape, lo, dtype=dtype)
    B = np.full(segments.shape, hi, dtype=dtype)
    C = steps.astype(dtype)

    positions = np.arange(n, dtype=dtype)  # broadcasts over leading axes
    is_start = np.empty(segments.shape, dtype=bool)
    is_start[..., 0] = True
    np.not_equal(segments[..., 1:], segments[..., :-1],
                 out=is_start[..., 1:])
    segment_start = np.maximum.accumulate(
        np.where(is_start, positions, 0), axis=-1)
    # Passes beyond the longest segment cannot change anything; for a
    # stacked input the bound is the longest segment of any row — the
    # extra passes on shorter-segment rows find no valid compositions,
    # so every row's scan stays bit-exact with its standalone 1-D run.
    longest = int((positions - segment_start).max()) + 1

    shift = 1
    while shift < longest:
        # Element i composes with element i - shift when both are in the
        # same segment: i - shift >= segment_start[i].  Expressed over
        # the aligned slices [shift:] / [:-shift] this is contiguous
        # arithmetic — no index arrays, no gather/scatter.
        valid = positions[:-shift] >= segment_start[..., shift:]
        a_prev = A[..., :-shift]
        b_prev = B[..., :-shift]
        c_prev = C[..., :-shift]
        a_cur = A[..., shift:]
        b_cur = B[..., shift:]
        c_cur = C[..., shift:]
        new_a = np.where(valid, np.maximum(a_cur, a_prev + c_cur), a_cur)
        new_b = np.where(
            valid, np.minimum(b_cur, np.maximum(a_cur, b_prev + c_cur)),
            b_cur)
        new_c = np.where(valid, c_prev + c_cur, c_cur)
        A[..., shift:] = new_a
        B[..., shift:] = new_b
        C[..., shift:] = new_c
        shift *= 2

    # Exclusive prefix: the state before element i is the inclusive map
    # of element i-1 applied to the initial state (identity at starts).
    before = np.full(segments.shape, initial, dtype=np.int64)
    before[..., 1:] = np.minimum(
        B[..., :-1], np.maximum(A[..., :-1], initial + C[..., :-1])
    )
    before[is_start] = initial
    return before


def global_history_windows(outcomes: np.ndarray,
                           history_length: int) -> np.ndarray:
    """Packed global history seen *before* each branch.

    ``result[t]`` has bit ``k`` equal to the outcome of branch
    ``t - 1 - k`` — the same convention as
    :class:`repro.utils.history.GlobalHistory` after ``t`` pushes.
    """
    if not 1 <= history_length <= 63:
        raise SimulationError("history_length must be in [1, 63]")
    n = len(outcomes)
    bits = outcomes.astype(np.uint64)
    history = np.zeros(n, dtype=np.uint64)
    for age in range(1, history_length + 1):
        history[age:] |= bits[:-age] << np.uint64(age - 1)
    return history


def xor_fold_array(values: np.ndarray, width: int) -> np.ndarray:
    """Vectorized :func:`repro.utils.hashing.xor_fold` over uint64s."""
    if width <= 0:
        raise SimulationError("width must be positive")
    mask = np.uint64((1 << width) - 1)
    shift = np.uint64(width)
    # astype already copies; fold the first pass out of the loop and
    # reuse one scratch buffer so each pass allocates nothing.
    remaining = values.astype(np.uint64)
    result = remaining & mask
    np.right_shift(remaining, shift, out=remaining)
    scratch = np.empty_like(remaining)
    while remaining.any():
        np.bitwise_and(remaining, mask, out=scratch)
        np.bitwise_xor(result, scratch, out=result)
        np.right_shift(remaining, shift, out=remaining)
    return result


def segmented_history_windows(keys: np.ndarray, outcomes: np.ndarray,
                              history_length: int) -> np.ndarray:
    """Packed *per-key* history seen before each branch.

    The vector analogue of a
    :class:`repro.utils.history.LocalHistoryTable`: ``result[t]`` has bit
    ``k`` equal to the outcome of the ``(k+1)``-th most recent earlier
    branch with the same ``keys[t]`` (0 bits where fewer exist, matching
    the table's all-zero reset).  Elements are grouped by key with a
    stable argsort, each group's packed windows are built in
    ``history_length`` shifted OR passes, and the result is scattered
    back to trace order.
    """
    if not 1 <= history_length <= 63:
        raise SimulationError("history_length must be in [1, 63]")
    n = len(outcomes)
    if len(keys) != n:
        raise SimulationError("keys and outcomes must have equal length")
    if n == 0:
        return np.zeros(0, dtype=np.uint64)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    bits = outcomes[order].astype(np.uint64)
    positions = np.arange(n, dtype=np.int64)
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=is_start[1:])
    segment_start = np.maximum.accumulate(np.where(is_start, positions, 0))
    history_sorted = np.zeros(n, dtype=np.uint64)
    for age in range(1, history_length + 1):
        valid = positions >= segment_start + age
        history_sorted[valid] |= bits[positions[valid] - age] \
            << np.uint64(age - 1)
    result = np.empty(n, dtype=np.uint64)
    result[order] = history_sorted
    return result


def _skew_h_array(values: np.ndarray, width: int) -> np.ndarray:
    """Vectorized :func:`repro.utils.hashing.skew_h` (inputs pre-masked)."""
    top = np.uint64(width - 1)
    one = np.uint64(1)
    msb = (values >> top) & one
    lsb = values & one
    return (values >> one) | ((msb ^ lsb) << top)


def _skew_h_inverse_array(values: np.ndarray, width: int) -> np.ndarray:
    """Vectorized :func:`repro.utils.hashing.skew_h_inverse`."""
    mask = np.uint64((1 << width) - 1)
    one = np.uint64(1)
    msb = (values >> np.uint64(width - 1)) & one
    next_msb = (values >> np.uint64(width - 2)) & one
    return ((values << one) & mask) | (msb ^ next_msb)


def skew_hash_array(v1: np.ndarray, v2: np.ndarray, bank: int,
                    width: int) -> np.ndarray:
    """Vectorized :func:`repro.utils.hashing.skew_hash` over uint64s."""
    if width <= 1:
        raise SimulationError("width must be > 1")
    if bank < 0:
        raise SimulationError("bank must be non-negative")
    mask = np.uint64((1 << width) - 1)
    a = v1.astype(np.uint64) & mask
    b = v2.astype(np.uint64) & mask
    keep = a.copy()
    for _ in range(bank + 1):
        a = _skew_h_array(a, width)
        b = _skew_h_inverse_array(b, width)
    return (a ^ b ^ keep) & mask


def _finish(trace: TraceData, conditional: np.ndarray,
            predictions: np.ndarray,
            warmup_instructions: int) -> VectorizedResult:
    """Count mispredictions over the post-warm-up region."""
    taken = trace.taken[conditional]
    wrong = predictions != taken
    if warmup_instructions > 0:
        numbers = trace.instruction_numbers()[conditional]
        measured = numbers > warmup_instructions
        mispredictions = int((wrong & measured).sum())
        num_conditional = int(measured.sum())
    else:
        mispredictions = int(wrong.sum())
        num_conditional = int(conditional.sum())
    instructions = max(0, trace.num_instructions - warmup_instructions)
    return VectorizedResult(
        num_conditional_branches=num_conditional,
        mispredictions=mispredictions,
        simulation_instructions=instructions,
        predictions=predictions,
    )


def _final_table_values(indices_sorted: np.ndarray, before: np.ndarray,
                        steps: np.ndarray, lo: int, hi: int,
                        size: int) -> np.ndarray:
    """Table contents *after* the whole run, reconstructed from the scan.

    ``before`` is the scan output (state seen by each element);
    applying each segment's last step to its own ``before`` yields the
    entry's final state.  Untouched entries stay at the reset value 0.
    """
    values = np.zeros(size, dtype=np.int64)
    if len(indices_sorted):
        is_last = np.empty(len(indices_sorted), dtype=bool)
        is_last[-1] = True
        np.not_equal(indices_sorted[1:], indices_sorted[:-1],
                     out=is_last[:-1])
        final = np.clip(before[is_last] + steps[is_last], lo, hi)
        values[indices_sorted[is_last].astype(np.int64)] = final
    return values


def _final_table_stats(indices_sorted: np.ndarray, before: np.ndarray,
                       steps: np.ndarray, lo: int, hi: int,
                       size: int) -> dict:
    """Structural statistics of the table *after* the whole run."""
    from ..utils.tables import distribution_stats

    return distribution_stats(
        _final_table_values(indices_sorted, before, steps, lo, hi, size),
        lo, hi)


def _fill_probe(probe: "PredictionProbe", trace: TraceData,
                conditional: np.ndarray, predictions: np.ndarray,
                warmup_instructions: int, structure: dict) -> None:
    """Populate ``probe`` from a finished engine run via the bulk hooks.

    Only the measured (post-warm-up) region is profiled, matching the
    scalar simulator's accounting; the single ``table`` component
    receives the whole attribution because these predictors have no
    arbitration to observe.
    """
    probe.start()
    ips = trace.ips[conditional]
    taken = trace.taken[conditional]
    wrong = predictions != taken
    if warmup_instructions > 0:
        numbers = trace.instruction_numbers()[conditional]
        measured = numbers > warmup_instructions
        ips = ips[measured]
        taken = taken[measured]
        wrong = wrong[measured]
    n = len(ips)
    probe.record_bulk("table", n, n - int(wrong.sum()))
    unique_ips, inverse = np.unique(ips, return_inverse=True)
    occurrences = np.bincount(inverse, minlength=len(unique_ips))
    taken_counts = np.bincount(inverse, weights=taken,
                               minlength=len(unique_ips))
    wrong_counts = np.bincount(inverse, weights=wrong,
                               minlength=len(unique_ips))
    for i, ip in enumerate(unique_ips):
        probe.record_branch_bulk(int(ip), int(occurrences[i]),
                                 int(taken_counts[i]),
                                 int(wrong_counts[i]), component="table")
    probe.set_structure(structure)
    probe.finish()


def _phase_end(instrumentation: "Instrumentation | None", name: str,
               start: float) -> float:
    """Record one engine phase; returns the next phase's start time."""
    now = time.perf_counter()
    instrumentation.add_phase(name, now - start)
    return now


def simulate_bimodal_vectorized(trace: TraceData, log_table_size: int = 14,
                                counter_width: int = 2,
                                instruction_shift: int = 0,
                                warmup_instructions: int = 0, *,
                                instrumentation:
                                "Instrumentation | None" = None,
                                probe: "PredictionProbe | None" = None
                                ) -> VectorizedResult:
    """Bit-exact vectorized run of :class:`repro.predictors.Bimodal`.

    Each table entry's counter sequence is independent, so branches are
    grouped by table index (stable sort) and every group's counter walk
    is resolved by one segmented scan.
    """
    if counter_width < 1:
        raise SimulationError("counter_width must be >= 1")
    instr = instrumentation
    start = time.perf_counter() if instr is not None else 0.0
    conditional = trace.conditional_mask()
    ips = trace.ips[conditional]
    taken = trace.taken[conditional]
    n = len(ips)
    mask = np.uint64((1 << log_table_size) - 1)
    indices = (ips >> np.uint64(instruction_shift)) & mask
    if instr is not None:
        start = _phase_end(instr, "index", start)

    order = np.argsort(indices, kind="stable")
    lo = -(1 << (counter_width - 1))
    hi = (1 << (counter_width - 1)) - 1
    steps = np.where(taken[order], 1, -1)
    before = clamped_walk_states(indices[order], steps, lo, hi)
    if instr is not None:
        start = _phase_end(instr, "scan", start)

    predictions = np.empty(n, dtype=bool)
    predictions[order] = before >= 0
    result = _finish(trace, conditional, predictions, warmup_instructions)
    if probe is not None:
        structure = {"table": _final_table_stats(
            indices[order], before, steps, lo, hi, 1 << log_table_size)}
        _fill_probe(probe, trace, conditional, predictions,
                    warmup_instructions, structure)
    if instr is not None:
        _phase_end(instr, "finish", start)
    return result


def simulate_gshare_vectorized(trace: TraceData, history_length: int = 15,
                               log_table_size: int = 17,
                               counter_width: int = 2,
                               warmup_instructions: int = 0, *,
                               instrumentation:
                               "Instrumentation | None" = None,
                               probe: "PredictionProbe | None" = None
                               ) -> VectorizedResult:
    """Bit-exact vectorized run of :class:`repro.predictors.GShare`.

    GShare's scenario state (the global history register) is a pure
    function of the preceding outcomes, so it is precomputed for every
    branch; after that the problem reduces to the same grouped
    clamped-walk scan as bimodal, keyed by the hashed index.
    """
    if counter_width < 1:
        raise SimulationError("counter_width must be >= 1")
    instr = instrumentation
    start = time.perf_counter() if instr is not None else 0.0
    # track() pushes *every* branch outcome (unconditional = taken).
    history = global_history_windows(trace.taken, history_length)
    conditional = trace.conditional_mask()
    ips = trace.ips[conditional]
    taken = trace.taken[conditional]
    indices = xor_fold_array(ips ^ history[conditional], log_table_size)
    if instr is not None:
        start = _phase_end(instr, "index", start)

    order = np.argsort(indices, kind="stable")
    lo = -(1 << (counter_width - 1))
    hi = (1 << (counter_width - 1)) - 1
    steps = np.where(taken[order], 1, -1)
    before = clamped_walk_states(indices[order], steps, lo, hi)
    if instr is not None:
        start = _phase_end(instr, "scan", start)

    predictions = np.empty(len(ips), dtype=bool)
    predictions[order] = before >= 0
    result = _finish(trace, conditional, predictions, warmup_instructions)
    if probe is not None:
        structure = {"table": _final_table_stats(
            indices[order], before, steps, lo, hi, 1 << log_table_size)}
        _fill_probe(probe, trace, conditional, predictions,
                    warmup_instructions, structure)
    if instr is not None:
        _phase_end(instr, "finish", start)
    return result


# ----------------------------------------------------------------------
# The batched table-op evaluator: per-predictor kernels and the driver.
# ----------------------------------------------------------------------


class _VectorContext:
    """Per-run inputs shared by every kernel.

    Exposes the conditional-branch streams (``ips``/``taken``), the
    *tracked* streams feeding history registers (all branches, or only
    the conditional ones under ``track_only_conditional``), and memoized
    history windows so composed kernels — and, under config-batched
    evaluation, *different configurations sharing one context* — pay for
    each derivation once.

    The memoization exploits the packed-window convention: bit ``k`` of a
    window is the outcome of the ``(k+1)``-th most recent tracked branch,
    so a length-``L`` window is the length-``L_max`` window masked to its
    low ``L`` bits.  Both caches therefore keep one *master* window array
    that is extended incrementally (one shifted-OR pass per new bit) and
    answer shorter lengths with a mask — a history-length sweep derives
    its windows once, not once per length.  ``reuse_count`` counts every
    request answered from a finished per-length entry (the
    ``context_reuse`` telemetry counter).
    """

    __slots__ = ("trace", "conditional", "ips", "taken", "n", "track_all",
                 "tracked_ips", "tracked_taken", "cond_positions",
                 "reuse_count", "_global_cache", "_global_master",
                 "_global_master_len", "_keyed_cache", "_branch_cache",
                 "_fold_cache")

    def __init__(self, data: TraceData, track_all: bool):
        self.trace = data
        self.conditional = data.conditional_mask()
        self.ips = data.ips[self.conditional]
        self.taken = data.taken[self.conditional]
        self.n = len(self.ips)
        self.track_all = track_all
        if track_all:
            self.tracked_ips = data.ips
            self.tracked_taken = data.taken
            self.cond_positions = np.flatnonzero(self.conditional)
        else:
            self.tracked_ips = self.ips
            self.tracked_taken = self.taken
            self.cond_positions = np.arange(self.n, dtype=np.int64)
        #: Finished global windows per requested length.
        self._global_cache: dict[int, np.ndarray] = {}
        #: Incrementally extended master global window (tracked stream).
        self._global_master: np.ndarray | None = None
        self._global_master_len = 0
        #: Per keyed stream (content-addressed): sort order, segment
        #: bounds, sorted outcome bits, master window and per-length
        #: results.
        self._keyed_cache: dict[Any, dict[str, Any]] = {}
        #: Per-warmup measured-region branch identity/occurrence/taken
        #: base — identical for every config sharing the warmup, so a
        #: batch pays the ``np.unique`` + ``tolist`` once.
        self._branch_cache: dict[int, tuple] = {}
        #: XOR-folds of the conditional address stream, keyed by width.
        self._fold_cache: dict[int, np.ndarray] = {}
        self.reuse_count = 0

    def branch_base(self, warmup: int, measured: np.ndarray) -> tuple:
        """Outcome-independent half of the per-branch profile.

        Returns ``(ips_list, inverse, bins, occurrences, taken_counts)``
        for the measured region of the given warmup; only the
        per-config ``wrong_counts`` bincount remains for the caller.
        """
        entry = self._branch_cache.get(warmup)
        if entry is None:
            unique_ips, inverse = np.unique(self.ips[measured],
                                            return_inverse=True)
            bins = len(unique_ips)
            occurrences = np.bincount(inverse, minlength=bins)
            taken_counts = np.bincount(inverse,
                                       weights=self.taken[measured],
                                       minlength=bins)
            entry = (unique_ips.tolist(), inverse, bins,
                     occurrences.tolist(), taken_counts.tolist())
            self._branch_cache[warmup] = entry
        return entry

    def global_history(self, history_length: int) -> np.ndarray:
        """Packed global history seen before each *conditional* branch."""
        cached = self._global_cache.get(history_length)
        if cached is not None:
            self.reuse_count += 1
            return cached
        if not 1 <= history_length <= 63:
            raise SimulationError("history_length must be in [1, 63]")
        if self._global_master is None:
            self._global_master = global_history_windows(
                self.tracked_taken, history_length)
            self._global_master_len = history_length
        elif history_length > self._global_master_len:
            bits = self.tracked_taken.astype(np.uint64)
            master = self._global_master
            for age in range(self._global_master_len + 1,
                             history_length + 1):
                master[age:] |= bits[:-age] << np.uint64(age - 1)
            self._global_master_len = history_length
        if history_length == self._global_master_len:
            windows = self._global_master
        else:
            # Shorter window = longer window masked to its low L bits.
            windows = self._global_master \
                & np.uint64((1 << history_length) - 1)
        cached = windows[self.cond_positions]
        self._global_cache[history_length] = cached
        return cached

    def folded_ips(self, width: int) -> np.ndarray:
        """XOR-fold of the conditional address stream, memoized by width.

        ``xor_fold`` is linear over XOR — the fold of ``a ^ b`` is the
        XOR of the two folds — so a kernel indexing by
        ``xor_fold(ip ^ h)`` can fold its config-dependent ``h``
        separately and XOR it with this shared fold.  A history-length
        sweep sharing one context then folds the (config-independent)
        address stream once, not once per configuration.
        """
        cached = self._fold_cache.get(width)
        if cached is not None:
            self.reuse_count += 1
            return cached
        cached = xor_fold_array(self.ips, width)
        self._fold_cache[width] = cached
        return cached

    def keyed_history(self, keys: np.ndarray,
                      history_length: int) -> np.ndarray:
        """Packed per-key history before each conditional branch.

        ``keys`` selects the history register per *tracked* branch
        (same length as ``tracked_ips``).  Streams are memoized by key
        *content* — callers rebuild their key arrays per request, so
        identity would never hit — and each stream's windows use the
        same master-and-mask scheme as :meth:`global_history`.
        """
        if not 1 <= history_length <= 63:
            raise SimulationError("history_length must be in [1, 63]")
        keys = np.asarray(keys)
        n = len(self.tracked_taken)
        if len(keys) != n:
            raise SimulationError("keys and outcomes must have equal length")
        if n == 0:
            return np.zeros(0, dtype=np.uint64)
        contiguous = np.ascontiguousarray(keys)
        stream_key = (keys.dtype.str, hashlib.blake2b(
            contiguous.tobytes(), digest_size=16).digest())
        entry = self._keyed_cache.get(stream_key)
        if entry is None:
            order = np.argsort(contiguous, kind="stable")
            sorted_keys = contiguous[order]
            positions = np.arange(n, dtype=np.int64)
            is_start = np.empty(n, dtype=bool)
            is_start[0] = True
            np.not_equal(sorted_keys[1:], sorted_keys[:-1],
                         out=is_start[1:])
            entry = {
                "order": order,
                "positions": positions,
                "segment_start": np.maximum.accumulate(
                    np.where(is_start, positions, 0)),
                "bits": self.tracked_taken[order].astype(np.uint64),
                "master": np.zeros(n, dtype=np.uint64),
                "master_len": 0,
                "per_length": {},
            }
            self._keyed_cache[stream_key] = entry
        per_length: dict[int, np.ndarray] = entry["per_length"]
        cached = per_length.get(history_length)
        if cached is not None:
            self.reuse_count += 1
            return cached
        master: np.ndarray = entry["master"]
        if history_length > entry["master_len"]:
            positions = entry["positions"]
            segment_start = entry["segment_start"]
            bits = entry["bits"]
            for age in range(entry["master_len"] + 1, history_length + 1):
                valid = positions >= segment_start + age
                master[valid] |= bits[positions[valid] - age] \
                    << np.uint64(age - 1)
            entry["master_len"] = history_length
        if history_length == entry["master_len"]:
            windows_sorted = master
        else:
            windows_sorted = master & np.uint64((1 << history_length) - 1)
        windows = np.empty(n, dtype=np.uint64)
        windows[entry["order"]] = windows_sorted
        cached = windows[self.cond_positions]
        per_length[history_length] = cached
        return cached


@dataclass(slots=True)
class KernelRun:
    """One kernel evaluation over a :class:`_VectorContext`.

    ``predictions`` is per conditional branch in trace order.
    ``fill_attribution(probe_like, measured)`` replays the predictor's
    measured-region ``probe.record`` accounting through the bulk hooks
    (``probe_like`` is the root probe or a scoped view).
    ``structure()`` rebuilds the end-of-run ``probe_stats()`` snapshot
    from the kernel's final table states.
    """

    predictions: np.ndarray
    fill_attribution: Callable[[Any, np.ndarray], None]
    structure: Callable[[], dict[str, Any]]


def _fill_component(probe_like: Any, ctx: _VectorContext, component: str,
                    provided_mask: np.ndarray, correct: np.ndarray,
                    overrides_mask: np.ndarray | None = None,
                    overridden: int = 0) -> None:
    """Replay one component's scalar ``record`` stream as bulk counts."""
    provided = int(provided_mask.sum())
    if overrides_mask is None:
        overrides = override_correct = 0
    else:
        overrides = int(overrides_mask.sum())
        override_correct = int((overrides_mask & correct).sum())
    probe_like.record_component_bulk(
        component, provided, int((provided_mask & correct).sum()),
        overrides=overrides, override_correct=override_correct,
        overridden=overridden)
    histogram = getattr(probe_like, "record_histogram_bulk", None)
    if histogram is not None and provided:
        unique_ips, counts = np.unique(ctx.ips[provided_mask],
                                       return_counts=True)
        for ip, count in zip(unique_ips.tolist(), counts.tolist()):
            histogram(int(ip), component, int(count))


class SaturatingTableKernel:
    """A single saturating-counter table with trace-derivable indices.

    Covers every predictor whose ``predict`` is ``counter >= 0`` and
    whose ``train`` is a clamped ±1 walk toward the outcome: bimodal,
    GShare and the whole two-level/local family (multiple pattern
    tables collapse into one index space).  ``index_fn(ctx)`` returns
    the per-conditional-branch index stream; because histories come
    from the *tracked* outcome stream, the same kernel also serves as a
    tournament's chooser via :meth:`run_masked` (trained only on
    disagreement branches, toward a synthetic outcome).

    ``component`` names the probe component recorded during ``train``
    (``None`` for predictors that record nothing); ``table_size`` sizes
    the structural snapshot (``None`` for predictors whose
    ``probe_stats`` is empty).
    """

    __slots__ = ("index_fn", "lo", "hi", "component", "table_size")

    def __init__(self, index_fn: Callable[[_VectorContext], np.ndarray],
                 counter_width: int, *, component: str | None = None,
                 table_size: int | None = None):
        if counter_width < 1:
            raise SimulationError("counter_width must be >= 1")
        self.index_fn = index_fn
        self.lo = -(1 << (counter_width - 1))
        self.hi = (1 << (counter_width - 1)) - 1
        self.component = component
        self.table_size = table_size

    def run(self, ctx: _VectorContext) -> KernelRun:
        return self.run_masked(ctx, ctx.taken, None)

    def run_masked(self, ctx: _VectorContext, outcomes: np.ndarray,
                   train_mask: np.ndarray | None) -> KernelRun:
        """Evaluate with training restricted to ``train_mask`` branches.

        Every branch still *reads* its counter (step 0 outside the
        mask), which is exactly a chooser's protocol: predict always,
        train only on disagreement.
        """
        indices = np.asarray(self.index_fn(ctx)).astype(np.int64)
        steps = np.where(outcomes, 1, -1).astype(np.int64)
        if train_mask is not None:
            steps = np.where(train_mask, steps, 0)
        order = np.argsort(indices, kind="stable")
        sorted_indices = indices[order]
        sorted_steps = steps[order]
        before = clamped_walk_states(sorted_indices, sorted_steps,
                                     self.lo, self.hi)
        predictions = np.empty(ctx.n, dtype=bool)
        predictions[order] = before >= 0
        return self._make_run(ctx, outcomes, train_mask, predictions,
                              lambda: (sorted_indices, before,
                                       sorted_steps))

    def _make_run(self, ctx: _VectorContext, outcomes: np.ndarray,
                  train_mask: np.ndarray | None, predictions: np.ndarray,
                  scan_arrays: Callable[[], tuple[np.ndarray, np.ndarray,
                                                  np.ndarray]]
                  ) -> KernelRun:
        """Build the :class:`KernelRun` from a finished scan.

        Shared by :meth:`run_masked` and the stacked batch path
        (:func:`stacked_saturating_runs`) — both produce closures over
        value-identical arrays and stay bit-exact by construction.
        ``scan_arrays`` is a thunk returning ``(sorted_indices, before,
        sorted_steps)``: only ``structure()`` (the probe path) reads
        them, so the stacked path can defer materialising per-row
        copies until a probe actually asks.
        """

        def fill_attribution(probe_like: Any, measured: np.ndarray) -> None:
            if self.component is None:
                return
            trained = (measured if train_mask is None
                       else measured & train_mask)
            _fill_component(probe_like, ctx, self.component, trained,
                            predictions == outcomes)

        def structure() -> dict[str, Any]:
            if self.table_size is None:
                return {}
            from ..utils.tables import distribution_stats

            sorted_indices, before, sorted_steps = scan_arrays()
            values = _final_table_values(sorted_indices, before,
                                         sorted_steps, self.lo, self.hi,
                                         self.table_size)
            return {self.component or "table":
                    distribution_stats(values, self.lo, self.hi)}

        return KernelRun(predictions, fill_attribution, structure)


#: Above this many python-loop iterations the time-stepped grouped
#: walk stops paying for itself; fall back to the doubling scan.  The
#: bound applies to ``loop_depth`` (iterations actually run), not the
#: longest segment — one pathologically hot table index only lengthens
#: the dense tail, which the doubling scan absorbs.
_GROUPED_WALK_LIMIT = 4096

#: Once fewer than this many segments remain live, the grouped loop is
#: pure per-iteration overhead; hand the survivors' tails to a dense
#: doubling scan instead.
_GROUPED_TAIL_WIDTH = 32


def _grouped_walk_states(segments: np.ndarray, steps: np.ndarray,
                         lo: int, hi: int) -> tuple[np.ndarray,
                                                    Callable[[], np.ndarray]]:
    """Time-step-parallel resolution of a stack of segmented ±1 walks.

    The doubling scan in :func:`clamped_walk_states` costs
    ``O(n log longest)`` over six working arrays; for the batched sweep
    path we instead *reorder* the exact scalar walk: elements are
    bucketed by depth (position within their segment), segments are
    ranked by length descending so the segments alive at depth ``p`` are
    exactly ranks ``[0, active_p)``, and one contiguous-slice python
    loop advances every live segment's state at once — each iteration is
    ``copy / add / clip`` over a shrinking prefix.  Because every
    element's before-state is produced by the same clamped walk the
    scalar loop performs, the result is bit-exact by construction (no
    algebraic composition involved).  The loop runs only while many
    segments are live; the few very long survivors' tails are compacted
    into a dense per-segment matrix — seeded by a first pseudo-step that
    carries each survivor's current state — and resolved by the doubling
    scan, whose passes are exact for any integer step size.

    Returns ``(predictions_sorted, before_fn)`` where
    ``predictions_sorted`` is the boolean ``state >= 0`` stream in
    sorted order and ``before_fn()`` materialises the full int64
    before-state array on demand (only the probe path needs it).
    """
    shape = segments.shape
    n = shape[-1]
    if n == 0:
        before = np.zeros(shape, dtype=np.int64)
        return before >= 0, lambda: before
    if not -128 <= lo <= hi <= 127:
        before = clamped_walk_states(segments, steps, lo, hi)
        return before >= 0, lambda: before
    is_start = np.empty(shape, dtype=bool)
    is_start[..., 0] = True
    np.not_equal(segments[..., 1:], segments[..., :-1], out=is_start[..., 1:])
    starts = np.flatnonzero(is_start.ravel()).astype(np.int32)
    num_segments = len(starts)
    total = int(np.prod(shape))
    lengths = np.empty(num_segments, dtype=np.int32)
    np.subtract(starts[1:], starts[:-1], out=lengths[:-1])
    lengths[-1] = total - starts[-1]
    longest = int(lengths.max())
    # active[p] = live segments at depth p = #(lengths > p), via the
    # length histogram — O(num_segments), no second 320k-element pass.
    length_counts = np.bincount(lengths, minlength=longest + 1)
    active = np.cumsum(length_counts[::-1])[::-1][1:]
    # Stop the sequential loop once the live prefix is narrow; the
    # survivors' tails go to the dense doubling scan below.
    cutoff = int(np.searchsorted(-active, -_GROUPED_TAIL_WIDTH))
    loop_depth = longest if longest - cutoff < 64 else cutoff
    if loop_depth > _GROUPED_WALK_LIMIT:
        before = clamped_walk_states(segments, steps, lo, hi)
        return before >= 0, lambda: before
    # Rank segments by length descending: every segment alive at depth p
    # (length > p) then outranks every dead one, so the live states are
    # always a contiguous prefix of the rank-ordered state array.  A
    # ``longest - length`` key that fits uint16 puts the rank sort on
    # the radix path; wider keys (one very hot index) pay a comparison
    # sort over num_segments elements, which the tail handover amortises.
    rank_key_dtype = np.uint16 if longest <= (1 << 16) else np.int32
    rank_order = np.argsort((longest - lengths).astype(rank_key_dtype),
                            kind="stable")
    rank_of_seg = np.empty(num_segments, dtype=np.int32)
    rank_of_seg[rank_order] = np.arange(num_segments, dtype=np.int32)
    bounds = np.concatenate(([0], np.cumsum(active))).astype(np.int32)
    # dest = bounds[depth] + rank: both terms come from one repeat each
    # (segment start / rank broadcast over the segment's elements).
    depth = np.arange(total, dtype=np.int32)
    depth -= np.repeat(starts, lengths)
    dest = np.take(bounds, depth)
    dest += np.repeat(rank_of_seg, lengths)
    # ±1 steps clamped to a counter range within int8: quarter the
    # memory traffic of the sequential loop.
    grouped_steps = np.empty(total, dtype=np.int8)
    grouped_steps[dest] = steps.ravel()
    grouped_before = np.empty(total, dtype=np.int8)
    states = np.zeros(num_segments, dtype=np.int8)
    ends = bounds[:loop_depth + 1].tolist()
    # Raw ufunc calls instead of np.clip: the clip wrapper re-derives
    # dtype limits per call, which at thousands of tiny iterations is
    # real overhead.
    lo8 = np.int8(lo)
    hi8 = np.int8(hi)
    add = np.add
    minimum = np.minimum
    maximum = np.maximum
    for p in range(loop_depth):
        a = ends[p]
        b = ends[p + 1]
        live = states[:b - a]
        grouped_before[a:b] = live
        add(live, grouped_steps[a:b], out=live)
        minimum(live, hi8, out=live)
        maximum(live, lo8, out=live)
    if loop_depth < longest:
        # Dense tail: rows = surviving segments (ranks [0, k)), columns
        # = remaining depths, padded with zero steps; column 0 is a
        # pseudo-step carrying each survivor's state at the handover
        # depth (maps the scan's initial 0 to exactly that state, since
        # it lies within [lo, hi]).
        k = int(active[loop_depth])
        tail = longest - loop_depth
        row = np.arange(k, dtype=np.int32)[:, None]
        idx = bounds[loop_depth:longest][None, :] + row
        valid = row < active[loop_depth:longest][None, :]
        dense_steps = np.zeros((k, tail + 1), dtype=np.int8)
        dense_steps[:, 0] = states[:k]
        np.copyto(dense_steps[:, 1:],
                  grouped_steps[np.minimum(idx, total - 1)], where=valid)
        rows = np.broadcast_to(row, (k, tail + 1))
        dense_before = clamped_walk_states(rows, dense_steps, lo, hi)
        grouped_before[idx[valid]] = dense_before[:, 1:][valid]
    predictions = np.take(grouped_before >= 0, dest).reshape(shape)

    def before_fn() -> np.ndarray:
        return np.take(grouped_before.astype(np.int64), dest).reshape(shape)

    return predictions, before_fn


def stacked_saturating_runs(ctx: _VectorContext,
                            kernels: Sequence[SaturatingTableKernel],
                            ) -> list[KernelRun]:
    """Evaluate same-bounds saturating-table kernels as one stacked pass.

    All ``kernels`` must share ``(lo, hi)``.  Their index streams are
    stacked along a leading config axis, one row-wise stable argsort
    (over the narrowest dtype that holds the indices — radix sorting
    uint16 keys is an order of magnitude faster than comparison-sorting
    int64) and one grouped walk resolve every table walk at once; each
    kernel gets its own :class:`KernelRun` built from its row — bit-exact
    with running the kernels one by one (stable sort order and walk
    states are value-identical to the standalone path's).
    """
    if len(kernels) == 1:
        return [kernels[0].run(ctx)]
    lo = kernels[0].lo
    hi = kernels[0].hi
    for kernel in kernels:
        if kernel.lo != lo or kernel.hi != hi:
            raise SimulationError(
                "stacked kernels must share their clamp bounds")
    rows = [np.asarray(k.index_fn(ctx)) for k in kernels]
    if ctx.n == 0:
        return [k.run(ctx) for k in kernels]
    lowest = min(int(row.min()) for row in rows)
    highest = max(int(row.max()) for row in rows)
    if 0 <= lowest and highest < (1 << 16):
        key_dtype = np.uint16
    elif -(1 << 31) <= lowest and highest < (1 << 31):
        key_dtype = np.int32
    else:
        key_dtype = np.int64
    sort_keys = np.empty((len(rows), ctx.n), dtype=key_dtype)
    for i, row in enumerate(rows):
        sort_keys[i] = row
    order = np.argsort(sort_keys, axis=-1, kind="stable")
    sorted_keys = np.take_along_axis(sort_keys, order, axis=-1)
    steps = np.where(ctx.taken, np.int8(1), np.int8(-1))
    sorted_steps = np.take(steps, order)
    pred_sorted, before_fn = _grouped_walk_states(sorted_keys, sorted_steps,
                                                  lo, hi)
    predictions = np.empty(sort_keys.shape, dtype=bool)
    np.put_along_axis(predictions, order, pred_sorted, axis=-1)
    # The probe path is the only consumer of the scan arrays; share one
    # lazily materialised before-state stack across all rows.
    lazy: dict[str, np.ndarray] = {}

    def row_arrays(row: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        before = lazy.get("before")
        if before is None:
            before = lazy["before"] = before_fn()
        return (sorted_keys[row].astype(np.int64), before[row],
                sorted_steps[row].astype(np.int64))

    return [
        kernel._make_run(ctx, ctx.taken, None, predictions[row],
                         lambda row=row: row_arrays(row))
        for row, kernel in enumerate(kernels)
    ]


class TournamentKernel:
    """The two-stream chooser combinator.

    Both base kernels run standalone (a tournament trains its bases
    unconditionally with the real outcome, so their streams are exact);
    the chooser is a :class:`SaturatingTableKernel` scanned with steps
    only on disagreement branches toward the synthetic outcome
    "predictor 1 was correct" — the partial-update policy of
    :class:`repro.predictors.Tournament`.
    """

    __slots__ = ("meta", "bp0", "bp1")

    def __init__(self, meta: SaturatingTableKernel, bp0: Any, bp1: Any):
        self.meta = meta
        self.bp0 = bp0
        self.bp1 = bp1

    def run(self, ctx: _VectorContext) -> KernelRun:
        run0 = self.bp0.run(ctx)
        run1 = self.bp1.run(ctx)
        p0 = run0.predictions
        p1 = run1.predictions
        disagreed = p0 != p1
        synthetic = p1 == ctx.taken
        meta_run = self.meta.run_masked(ctx, synthetic, disagreed)
        chooser = meta_run.predictions
        final = np.where(chooser, p1, p0)

        def fill_attribution(probe_like: Any, measured: np.ndarray) -> None:
            correct = final == ctx.taken
            for name, chose in (("predictor_0", ~chooser),
                                ("predictor_1", chooser)):
                provided_mask = measured & chose
                _fill_component(
                    probe_like, ctx, name, provided_mask, correct,
                    overrides_mask=provided_mask & disagreed,
                    overridden=int((measured & ~chose & disagreed).sum()))
            meta_run.fill_attribution(probe_like.scoped("metapredictor"),
                                      measured)
            run0.fill_attribution(probe_like.scoped("predictor_0"),
                                  measured)
            run1.fill_attribution(probe_like.scoped("predictor_1"),
                                  measured)

        def structure() -> dict[str, Any]:
            stats: dict[str, Any] = {}
            for role, sub in (("metapredictor", meta_run),
                              ("predictor_0", run0),
                              ("predictor_1", run1)):
                sub_stats = sub.structure()
                if sub_stats:
                    stats[role] = sub_stats
            return stats

        return KernelRun(final, fill_attribution, structure)


class GskewKernel:
    """Hybrid kernel for :class:`repro.predictors.TwoBcGskew`.

    All four bank index streams are precomputed with array passes
    (history windows, xor folds, skewed hashes); the cross-bank
    partial-update policy reads the other banks' current signs, which
    is irreducibly sequential, so the per-branch update runs as a tight
    scalar loop over plain integer lists.
    """

    __slots__ = ("log_bank_size", "history_length_g0", "history_length_g1")

    def __init__(self, log_bank_size: int, history_length_g0: int,
                 history_length_g1: int):
        self.log_bank_size = log_bank_size
        self.history_length_g0 = history_length_g0
        self.history_length_g1 = history_length_g1

    def run(self, ctx: _VectorContext) -> KernelRun:
        w = self.log_bank_size
        one = np.uint64(1)
        ghist = ctx.global_history(max(self.history_length_g0,
                                       self.history_length_g1))
        mask0 = np.uint64((1 << self.history_length_g0) - 1)
        mask1 = np.uint64((1 << self.history_length_g1) - 1)
        folded_ip = xor_fold_array(ctx.ips, w)
        v0 = xor_fold_array(ctx.ips ^ ((ghist & mask0) << one), w)
        v1 = xor_fold_array(ctx.ips ^ ((ghist & mask1) << one), w)
        bim_idx = folded_ip.astype(np.int64).tolist()
        g0_idx = skew_hash_array(v0, folded_ip, 0, w).astype(
            np.int64).tolist()
        g1_idx = skew_hash_array(v1, folded_ip, 1, w).astype(
            np.int64).tolist()
        outcomes = ctx.taken.tolist()

        size = 1 << w
        bim = [0] * size
        g0 = [0] * size
        g1 = [0] * size
        meta = [0] * size
        finals = []
        used_gskew = []
        disagreements = []
        for i in range(ctx.n):
            bi = bim_idx[i]
            i0 = g0_idx[i]
            i1 = g1_idx[i]
            taken = outcomes[i]
            bim_pred = bim[bi] >= 0
            g0_pred = g0[i0] >= 0
            g1_pred = g1[i1] >= 0
            majority = (bim_pred + g0_pred + g1_pred) >= 2
            use_gskew = meta[bi] >= 0
            final = majority if use_gskew else bim_pred
            finals.append(final)
            used_gskew.append(use_gskew)
            disagreed = bim_pred != majority
            disagreements.append(disagreed)
            if disagreed:
                v = meta[bi]
                if majority == taken:
                    if v < 1:
                        meta[bi] = v + 1
                elif v > -2:
                    meta[bi] = v - 1
            if final == taken:
                if use_gskew:
                    if bim_pred == taken:
                        v = bim[bi]
                        if taken:
                            if v < 1:
                                bim[bi] = v + 1
                        elif v > -2:
                            bim[bi] = v - 1
                    if g0_pred == taken:
                        v = g0[i0]
                        if taken:
                            if v < 1:
                                g0[i0] = v + 1
                        elif v > -2:
                            g0[i0] = v - 1
                    if g1_pred == taken:
                        v = g1[i1]
                        if taken:
                            if v < 1:
                                g1[i1] = v + 1
                        elif v > -2:
                            g1[i1] = v - 1
                else:
                    v = bim[bi]
                    if taken:
                        if v < 1:
                            bim[bi] = v + 1
                    elif v > -2:
                        bim[bi] = v - 1
            else:
                for table, index in ((bim, bi), (g0, i0), (g1, i1)):
                    v = table[index]
                    if taken:
                        if v < 1:
                            table[index] = v + 1
                    elif v > -2:
                        table[index] = v - 1
        predictions = np.array(finals, dtype=bool)
        gskew_provided = np.array(used_gskew, dtype=bool)
        disagreed = np.array(disagreements, dtype=bool)

        def fill_attribution(probe_like: Any, measured: np.ndarray) -> None:
            correct = predictions == ctx.taken
            for name, provided in (("gskew", gskew_provided),
                                   ("bimodal", ~gskew_provided)):
                provided_mask = measured & provided
                _fill_component(
                    probe_like, ctx, name, provided_mask, correct,
                    overrides_mask=provided_mask & disagreed,
                    overridden=int((measured & ~provided
                                    & disagreed).sum()))

        def structure() -> dict[str, Any]:
            from ..utils.tables import distribution_stats

            return {
                "bimodal": distribution_stats(bim, -2, 1),
                "g0": distribution_stats(g0, -2, 1),
                "g1": distribution_stats(g1, -2, 1),
                "meta": distribution_stats(meta, -2, 1),
            }

        return KernelRun(predictions, fill_attribution, structure)


class YagsKernel:
    """Hybrid kernel for :class:`repro.predictors.Yags`.

    Choice indices, cache indices and partial tags are precomputed with
    array passes; the exception caches' install/refine policy depends
    on each entry's current tag, so the update loop stays scalar over
    plain integer lists.
    """

    __slots__ = ("log_choice_size", "log_cache_size", "tag_width",
                 "history_length")

    def __init__(self, log_choice_size: int, log_cache_size: int,
                 tag_width: int, history_length: int):
        self.log_choice_size = log_choice_size
        self.log_cache_size = log_cache_size
        self.tag_width = tag_width
        self.history_length = history_length

    def run(self, ctx: _VectorContext) -> KernelRun:
        ghist = ctx.global_history(self.history_length)
        choice_mask = np.uint64((1 << self.log_choice_size) - 1)
        choice_idx = (ctx.ips & choice_mask).astype(np.int64).tolist()
        cache_idx = xor_fold_array(ctx.ips ^ ghist,
                                   self.log_cache_size).astype(
            np.int64).tolist()
        tags = xor_fold_array(ctx.ips >> np.uint64(1),
                              self.tag_width).astype(np.int64).tolist()
        outcomes = ctx.taken.tolist()

        choice = [0] * (1 << self.log_choice_size)
        cache_size = 1 << self.log_cache_size
        taken_tags = [-1] * cache_size
        taken_ctrs = [0] * cache_size
        not_taken_tags = [-1] * cache_size
        not_taken_ctrs = [0] * cache_size
        finals = []
        # 0 = choice provided, 1 = taken_cache, 2 = not_taken_cache.
        providers = []
        overrode_choice = []
        for i in range(ctx.n):
            ci = choice_idx[i]
            ki = cache_idx[i]
            tag = tags[i]
            taken = outcomes[i]
            bias_taken = choice[ci] >= 0
            if bias_taken:
                entry_tags, entry_ctrs = not_taken_tags, not_taken_ctrs
            else:
                entry_tags, entry_ctrs = taken_tags, taken_ctrs
            hit = entry_tags[ki] == tag
            final = (entry_ctrs[ki] >= 0) if hit else bias_taken
            finals.append(final)
            providers.append((2 if bias_taken else 1) if hit else 0)
            overrode_choice.append(hit and final != bias_taken)
            if not (bias_taken != taken and hit and final == taken):
                value = choice[ci] + (1 if taken else -1)
                choice[ci] = min(1, max(-2, value))
            if taken != bias_taken or hit:
                if entry_tags[ki] != tag:
                    entry_tags[ki] = tag
                    entry_ctrs[ki] = 0 if taken else -1
                else:
                    value = entry_ctrs[ki] + (1 if taken else -1)
                    entry_ctrs[ki] = min(1, max(-2, value))
        predictions = np.array(finals, dtype=bool)
        provider_codes = np.array(providers, dtype=np.int8)
        overrides = np.array(overrode_choice, dtype=bool)

        def fill_attribution(probe_like: Any, measured: np.ndarray) -> None:
            correct = predictions == ctx.taken
            _fill_component(probe_like, ctx, "choice",
                            measured & (provider_codes == 0), correct,
                            overridden=int((measured & overrides).sum()))
            for name, code in (("taken_cache", 1), ("not_taken_cache", 2)):
                provided_mask = measured & (provider_codes == code)
                _fill_component(probe_like, ctx, name, provided_mask,
                                correct,
                                overrides_mask=provided_mask & overrides)

        def structure() -> dict[str, Any]:
            from ..utils.tables import distribution_stats

            def cache_stats(entry_tags: list[int],
                            entry_ctrs: list[int]) -> dict[str, Any]:
                stats = distribution_stats(entry_ctrs, -2, 1)
                live = sum(1 for tag in entry_tags if tag != -1)
                stats["live_fraction"] = live / len(entry_tags)
                return stats

            return {
                "choice": distribution_stats(choice, -2, 1),
                "taken_cache": cache_stats(taken_tags, taken_ctrs),
                "not_taken_cache": cache_stats(not_taken_tags,
                                               not_taken_ctrs),
            }

        return KernelRun(predictions, fill_attribution, structure)


def _plan_accounting(data: TraceData, limit: int | None,
                     ) -> tuple[TraceData, np.ndarray, int, int, bool]:
    """Replicate the scalar loop's instruction accounting.

    A branch is simulated iff its cumulative instruction count stays
    within the limit; trailing non-branch instructions count only while
    they fit.  Returns ``(work, numbers, included, instructions,
    exhausted)`` — the (possibly truncated) trace to evaluate, its
    cumulative instruction numbers, the included branch count, the
    executed instruction total and the exhausted-trace flag.
    """
    numbers = data.instruction_numbers()
    num_branches = len(numbers)
    if limit is not None:
        included = int(np.searchsorted(numbers, limit, side="right"))
    else:
        included = num_branches
    truncated = included < num_branches
    if truncated:
        work = data.slice(0, included)
        numbers = numbers[:included]
    else:
        work = data
    instructions = int(numbers[included - 1]) if included else 0
    exhausted = not truncated
    if exhausted and data.num_instructions > instructions:
        trailing = data.num_instructions - instructions
        if limit is not None and instructions + trailing > limit:
            instructions = limit
            exhausted = False
        else:
            instructions += trailing
    return work, numbers, included, instructions, exhausted


def _finish_unit(predictor: "Predictor", name: str,
                 config: "SimulationConfig", ctx: _VectorContext,
                 run: KernelRun, numbers: np.ndarray, included: int,
                 instructions: int, exhausted: bool, start: float,
                 telemetry: "IntervalRecorder | None",
                 probe: "PredictionProbe | None",
                 instrumentation: "Instrumentation | None",
                 ) -> "SimulationResult":
    """Turn one finished kernel run into a :class:`SimulationResult`.

    The single finisher shared by :func:`simulate_vectorized` and the
    config-batched path (:func:`run_unit_group`): measured-region
    counting, interval-telemetry replay, probe fill, ``most_failed`` and
    result assembly all live here, so a batched unit's result is
    byte-identical to a per-unit one by construction.  ``start`` is the
    unit's simulation start time (``simulation_time`` runs from it to
    the end of the telemetry replay, matching the standalone engine).
    """
    from .metrics import MostFailedEntry, accuracy, mpki
    from .output import SimulationResult

    instr = instrumentation
    warmup = config.warmup_instructions
    cond_numbers = numbers[ctx.conditional]
    measured = cond_numbers > warmup
    wrong = run.predictions != ctx.taken
    conditional_branches = int(measured.sum())
    mispredictions = int((wrong & measured).sum())

    recorder = telemetry
    if recorder is not None:
        # Replay the scalar loop's interval protocol: a record fires at
        # the first branch whose cumulative count reaches the next mark,
        # then sampling realigns to the grid.
        recorder.start(warmup)
        mark_step = recorder.interval
        contributes = np.zeros(included, dtype=np.int64)
        cond_positions = np.flatnonzero(ctx.conditional)
        contributes[cond_positions[measured]] = 1
        cum_cond = np.cumsum(contributes)
        contributes[:] = 0
        contributes[cond_positions[measured & wrong]] = 1
        cum_misp = np.cumsum(contributes)
        index = int(np.searchsorted(numbers, mark_step, side="left"))
        while index < included:
            at = int(numbers[index])
            recorder.record(at, int(cum_cond[index]), int(cum_misp[index]))
            next_mark = (at // mark_step + 1) * mark_step
            index = int(np.searchsorted(numbers, next_mark, side="left"))

    elapsed = time.perf_counter() - start

    if recorder is not None:
        recorder.finish(instructions, conditional_branches, mispredictions)

    final_start = time.perf_counter() if instr is not None else 0.0
    measured_instructions = max(0, instructions - warmup)

    per_branch = None
    wrong_counts = None
    ips_list = occurrences = None
    if (probe is not None or config.collect_most_failed) and measured.any():
        ips_list, inverse, bins, occurrences, taken_counts = \
            ctx.branch_base(warmup, measured)
        wrong_counts = np.bincount(inverse, weights=wrong[measured],
                                   minlength=bins)
        per_branch = (ips_list, occurrences, taken_counts,
                      wrong_counts.tolist())

    probe_report = None
    if probe is not None:
        probe.start()
        run.fill_attribution(probe, measured)
        if per_branch is not None:
            for ip, occ, taken_count, wrong_count in zip(*per_branch):
                probe.record_branch_bulk(int(ip), int(occ),
                                         int(taken_count),
                                         int(wrong_count))
        probe.set_structure(run.structure())
        probe_report = probe.report()

    most_failed = []
    if config.collect_most_failed and wrong_counts is not None \
            and mispredictions:
        # Vectorized equivalent of :func:`metrics.most_failed_branches`:
        # rank by (-mispredictions, ip) — ``ips_list`` is ascending from
        # ``np.unique``, so a stable sort on the negated counts breaks
        # ties by address — and take the shortest prefix covering half
        # the mispredictions (rounded up).
        failing = np.flatnonzero(wrong_counts)
        ranked = failing[np.argsort(-wrong_counts[failing], kind="stable")]
        target = (mispredictions + 1) // 2
        covered = np.cumsum(wrong_counts[ranked])
        take = int(np.searchsorted(covered, target)) + 1
        for i in ranked[:take].tolist():
            failed = int(wrong_counts[i])
            occ = int(occurrences[i])
            most_failed.append(MostFailedEntry(
                ip=int(ips_list[i]), occurrences=occ,
                mispredictions=failed,
                mpki=mpki(failed, measured_instructions),
                accuracy=accuracy(failed, occ)))

    phases_snapshot = None
    if instr is not None:
        instr.add_phase("simulate_loop", elapsed)
        instr.add_phase("finalize", time.perf_counter() - final_start)
        recorded = getattr(instr, "phases", None)
        if recorded is not None:
            phases_snapshot = dict(recorded)
    return SimulationResult(
        trace_name=name,
        warmup_instructions=warmup,
        simulation_instructions=measured_instructions,
        exhausted_trace=exhausted,
        num_branch_instructions=included,
        num_conditional_branches=conditional_branches,
        mispredictions=mispredictions,
        simulation_time=elapsed,
        predictor_metadata=predictor.metadata_stats(),
        predictor_statistics=predictor.execution_stats(),
        most_failed=most_failed,
        phases=phases_snapshot,
        probe_report=probe_report,
    )


def simulate_vectorized(predictor: "Predictor", trace: Any,
                        config: "SimulationConfig | None" = None, *,
                        trace_name: str | None = None,
                        instrumentation: "Instrumentation | None" = None,
                        telemetry: "IntervalRecorder | None" = None,
                        probe: "PredictionProbe | None" = None
                        ) -> "SimulationResult":
    """Vectorized counterpart of :func:`repro.core.simulator.simulate`.

    Evaluates ``predictor``'s vector kernel over the whole trace and
    returns a :class:`~repro.core.output.SimulationResult` byte-identical
    (up to wall-clock ``simulation_time``) to the scalar engine's —
    including warmup/``max_instructions`` accounting, ``most_failed``,
    interval telemetry records and the probe report.  Raises
    :class:`~repro.core.errors.EngineNotSupportedError` when the
    predictor has no kernel.  The predictor instance itself is never
    trained — only its configuration is read.
    """
    from .simulator import SimulationConfig, _resolve_trace

    config = config or SimulationConfig()
    kernel = predictor.vector_kernel()
    if kernel is None:
        raise EngineNotSupportedError(
            f"predictor {predictor.name()!r} does not provide a vector "
            "kernel; run it with engine='scalar' (or 'auto' to fall back "
            "automatically)")
    instr = instrumentation

    read_start = time.perf_counter() if instr is not None else 0.0
    data, default_name = _resolve_trace(trace)
    if instr is not None:
        instr.add_phase("trace_read", time.perf_counter() - read_start)
    name = trace_name if trace_name is not None else default_name

    start = time.perf_counter()
    work, numbers, included, instructions, exhausted = _plan_accounting(
        data, config.max_instructions)

    ctx = _VectorContext(work, track_all=not config.track_only_conditional)
    run = kernel.run(ctx)
    if instr is not None and ctx.reuse_count:
        instr.count("context_reuse", ctx.reuse_count)
    return _finish_unit(predictor, name, config, ctx, run, numbers,
                        included, instructions, exhausted, start,
                        telemetry, probe, instr)


def run_unit_group(data: TraceData, units: Sequence[tuple],
                   ) -> tuple[list[Any], dict[str, int]]:
    """Evaluate several configs over one decoded trace in batched passes.

    ``units`` is a sequence of ``(factory, config, name, probe,
    sim_engine, prebuilt)`` tuples — the fields of a
    :class:`~repro.core.plan.WorkUnit` plus an optional prebuilt
    predictor instance.  The trace context is built once per
    ``(max_instructions, track_only_conditional)`` combination, derived
    history windows are memoized across configs inside it, and
    same-bounds :class:`SaturatingTableKernel` units are stacked into a
    single N-D scan (:func:`stacked_saturating_runs`); hybrid kernels
    run per unit over the shared context, and units without a kernel —
    or with ``sim_engine="scalar"`` — fall back to the per-unit funnel
    path one by one.  Any per-unit error (including a failed stack,
    retried unit by unit) becomes that unit's
    :class:`~repro.core.batch.TraceFailure`; the other units are
    unaffected.

    Returns ``(outcomes, info)``: one
    :class:`~repro.core.output.SimulationResult` or ``TraceFailure``
    per unit, in order, byte-identical (up to wall clock) to the
    per-unit path, plus an ``info`` dict with ``context_reuse`` — the
    number of derived-history recomputations the shared contexts
    avoided.
    """
    from .batch import TraceFailure, _run_one
    from .simulator import SimulationConfig

    outcomes: list[Any] = [None] * len(units)
    prepared: dict[int, tuple[Any, Any, Any, str, bool]] = {}
    accts: dict[Any, tuple] = {}
    ctxs: dict[Any, _VectorContext] = {}
    stacks: dict[Any, list[int]] = {}
    singles: list[int] = []

    def failure(name: str, exc: BaseException) -> "TraceFailure":
        return TraceFailure(name, error=f"{type(exc).__name__}: {exc}",
                            details=traceback.format_exc())

    for position, unit in enumerate(units):
        factory, config, name, probe, sim_engine, prebuilt = unit
        try:
            predictor = prebuilt if prebuilt is not None else factory()
            kernel = predictor.vector_kernel()
        except Exception as exc:
            outcomes[position] = failure(name, exc)
            continue
        if kernel is None or sim_engine not in ("vectorized", "auto"):
            # No batchable kernel (or an explicitly scalar unit): the
            # existing per-unit fault barrier reproduces every edge of
            # the funnel path, including EngineNotSupportedError
            # wrapping for sim_engine="vectorized".
            outcomes[position] = _run_one(factory, data, config, name,
                                          probe, predictor=predictor,
                                          sim_engine=sim_engine)
            continue
        cfg = config or SimulationConfig()
        prepared[position] = (predictor, kernel, cfg, name, probe)
        ctx_key = (cfg.max_instructions, cfg.track_only_conditional)
        if isinstance(kernel, SaturatingTableKernel):
            stacks.setdefault((ctx_key, kernel.lo, kernel.hi),
                              []).append(position)
        else:
            singles.append(position)

    def context_for(cfg: "SimulationConfig") -> _VectorContext:
        ctx_key = (cfg.max_instructions, cfg.track_only_conditional)
        ctx = ctxs.get(ctx_key)
        if ctx is None:
            acct = accts.get(cfg.max_instructions)
            if acct is None:
                acct = _plan_accounting(data, cfg.max_instructions)
                accts[cfg.max_instructions] = acct
            ctx = _VectorContext(
                acct[0], track_all=not cfg.track_only_conditional)
            ctxs[ctx_key] = ctx
        return ctx

    def finish(position: int, ctx: _VectorContext, run: KernelRun,
               start: float) -> "SimulationResult":
        predictor, _kernel, cfg, name, probe = prepared[position]
        _work, numbers, included, instructions, exhausted = (
            accts[cfg.max_instructions])
        probe_obj = None
        if probe:
            from ..probe import PredictionProbe

            probe_obj = PredictionProbe()
        return _finish_unit(predictor, name, cfg, ctx, run, numbers,
                            included, instructions, exhausted, start,
                            None, probe_obj, None)

    def run_alone(position: int) -> None:
        _predictor, kernel, cfg, name, _probe = prepared[position]
        try:
            ctx = context_for(cfg)
            start = time.perf_counter()
            outcomes[position] = finish(position, ctx, kernel.run(ctx),
                                        start)
        except Exception as exc:
            outcomes[position] = failure(name, exc)

    for (ctx_key, _lo, _hi), members in stacks.items():
        cfg = prepared[members[0]][2]
        try:
            ctx = context_for(cfg)
        except Exception as exc:
            for position in members:
                outcomes[position] = failure(prepared[position][3], exc)
            continue
        shared_start = time.perf_counter()
        try:
            runs = stacked_saturating_runs(
                ctx, [prepared[p][1] for p in members])
        except Exception:
            # One bad kernel must not poison its stack-mates: retry the
            # whole sub-batch unit by unit so only the failing unit
            # reports a TraceFailure.
            for position in members:
                run_alone(position)
            continue
        share = (time.perf_counter() - shared_start) / len(members)
        for position, run in zip(members, runs):
            try:
                outcomes[position] = finish(
                    position, ctx, run, time.perf_counter() - share)
            except Exception as exc:
                outcomes[position] = failure(prepared[position][3], exc)

    for position in singles:
        run_alone(position)

    info = {"context_reuse":
            sum(ctx.reuse_count for ctx in ctxs.values())}
    return outcomes, info
