"""Vectorized simulation engines for table-indexed predictors.

A pure-Python per-branch loop is orders of magnitude too slow to sweep
hundreds of traces, so this module provides numpy engines for the two
classic table predictors (bimodal, GShare) that are **bit-exact**
equivalents of their scalar counterparts — property-tested against them —
while running the whole trace in a handful of array passes.

The key observation is that both predictors' *inputs* are derivable from
the trace alone: the global history at branch ``t`` is just the packed
outcomes of the previous branches, and the table index is a pure hash of
(ip, history).  What remains sequential is each table entry's saturating
counter — a ±1 random walk clamped to ``[lo, hi]`` — and clamped walks
have an associative structure:

every update is the map ``s -> min(hi, max(lo, s + x))``, and the class
of maps ``s -> min(B, max(A, s + C))`` is **closed under composition**::

    (g . f)(s) = min(B', max(A', s + C'))
    C' = Cf + Cg
    A' = max(Ag, Af + Cg)
    B' = min(Bg, max(Ag, Bf + Cg))

so the counter state *before* every update is an exclusive prefix
composition — computable with a segmented Hillis-Steele scan in
``O(n log n)`` vector operations, with segments delimited by table index.

This is the reproduction's analogue of MBPlib's C++-level speed work and
the subject of the ``benchmarks/test_ablation_vectorized.py`` ablation.

Observability: both engines accept an optional ``instrumentation``
object (:mod:`repro.telemetry`) and bracket their array passes as
phases — "index" (history/index derivation), "scan" (the segmented
clamped-walk scan) and "finish" (misprediction counting).  The default
is off and adds no calls, matching the standard simulator's contract.
They likewise accept an optional ``probe``
(:class:`repro.probe.PredictionProbe`), filled post-hoc from the
prediction arrays via the bulk hooks: a single-component attribution
row (these predictors have one table and no arbitration), the full
per-branch profile, and the final table's structural statistics
reconstructed from the scan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..sbbt.trace import TraceData
from .errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..probe import PredictionProbe
    from ..telemetry.instrumentation import Instrumentation

__all__ = [
    "VectorizedResult",
    "clamped_walk_states",
    "global_history_windows",
    "xor_fold_array",
    "simulate_bimodal_vectorized",
    "simulate_gshare_vectorized",
]

_BIG = np.int64(1 << 40)  # sentinel for the identity map's bounds


@dataclass(frozen=True, slots=True)
class VectorizedResult:
    """Outcome of a vectorized simulation.

    ``predictions`` is per *conditional* branch, in trace order — exactly
    what the scalar predictor's ``predict`` would have returned — so the
    equivalence tests can compare prediction streams, not just totals.
    """

    num_conditional_branches: int
    mispredictions: int
    simulation_instructions: int
    predictions: np.ndarray

    @property
    def mpki(self) -> float:
        """Mispredictions per kilo-instruction."""
        if self.simulation_instructions == 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.simulation_instructions

    @property
    def accuracy(self) -> float:
        """Fraction of conditional branches predicted correctly."""
        if self.num_conditional_branches == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.num_conditional_branches


def clamped_walk_states(segments: np.ndarray, steps: np.ndarray,
                        lo: int, hi: int, initial: int = 0) -> np.ndarray:
    """State *before* each ±1 step of per-segment clamped walks.

    Parameters
    ----------
    segments:
        Segment key per element; elements of one segment must be
        contiguous and the array non-decreasing within runs (use a stable
        argsort by key to arrange this).
    steps:
        ``+1`` / ``-1`` increments.
    lo, hi:
        Clamp bounds.
    initial:
        Every segment's starting state.

    Returns the walk state seen by each element before its own step —
    i.e. the value the predictor read to make its prediction.
    """
    n = len(segments)
    if len(steps) != n:
        raise SimulationError("segments and steps must have equal length")
    if n == 0:
        return np.zeros(0, dtype=np.int64)

    # Inclusive element maps: s -> min(hi, max(lo, s + x)).
    A = np.full(n, lo, dtype=np.int64)
    B = np.full(n, hi, dtype=np.int64)
    C = steps.astype(np.int64)

    positions = np.arange(n, dtype=np.int64)
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(segments[1:], segments[:-1], out=is_start[1:])
    segment_start = np.maximum.accumulate(np.where(is_start, positions, 0))

    shift = 1
    while shift < n:
        can = positions >= segment_start + shift
        src = positions - shift
        a_prev = A[src[can]]
        b_prev = B[src[can]]
        c_prev = C[src[can]]
        a_cur = A[can]
        b_cur = B[can]
        c_cur = C[can]
        new_a = np.maximum(a_cur, a_prev + c_cur)
        new_b = np.minimum(b_cur, np.maximum(a_cur, b_prev + c_cur))
        new_c = c_prev + c_cur
        A[can] = new_a
        B[can] = new_b
        C[can] = new_c
        shift *= 2

    # Exclusive prefix: the state before element i is the inclusive map
    # of element i-1 applied to the initial state (identity at starts).
    before = np.full(n, initial, dtype=np.int64)
    tail = ~is_start
    prev = positions[tail] - 1
    before[tail] = np.minimum(
        B[prev], np.maximum(A[prev], initial + C[prev])
    )
    return before


def global_history_windows(outcomes: np.ndarray,
                           history_length: int) -> np.ndarray:
    """Packed global history seen *before* each branch.

    ``result[t]`` has bit ``k`` equal to the outcome of branch
    ``t - 1 - k`` — the same convention as
    :class:`repro.utils.history.GlobalHistory` after ``t`` pushes.
    """
    if not 1 <= history_length <= 63:
        raise SimulationError("history_length must be in [1, 63]")
    n = len(outcomes)
    bits = outcomes.astype(np.uint64)
    history = np.zeros(n, dtype=np.uint64)
    for age in range(1, history_length + 1):
        history[age:] |= bits[:-age] << np.uint64(age - 1)
    return history


def xor_fold_array(values: np.ndarray, width: int) -> np.ndarray:
    """Vectorized :func:`repro.utils.hashing.xor_fold` over uint64s."""
    if width <= 0:
        raise SimulationError("width must be positive")
    mask = np.uint64((1 << width) - 1)
    shift = np.uint64(width)
    remaining = values.astype(np.uint64).copy()
    result = np.zeros(len(values), dtype=np.uint64)
    while remaining.any():
        result ^= remaining & mask
        remaining >>= shift
    return result


def _finish(trace: TraceData, conditional: np.ndarray,
            predictions: np.ndarray,
            warmup_instructions: int) -> VectorizedResult:
    """Count mispredictions over the post-warm-up region."""
    taken = trace.taken[conditional]
    wrong = predictions != taken
    if warmup_instructions > 0:
        numbers = trace.instruction_numbers()[conditional]
        measured = numbers > warmup_instructions
        mispredictions = int((wrong & measured).sum())
        num_conditional = int(measured.sum())
    else:
        mispredictions = int(wrong.sum())
        num_conditional = int(conditional.sum())
    instructions = max(0, trace.num_instructions - warmup_instructions)
    return VectorizedResult(
        num_conditional_branches=num_conditional,
        mispredictions=mispredictions,
        simulation_instructions=instructions,
        predictions=predictions,
    )


def _final_table_stats(indices_sorted: np.ndarray, before: np.ndarray,
                       steps: np.ndarray, lo: int, hi: int,
                       size: int) -> dict:
    """Structural statistics of the table *after* the whole run.

    ``before`` is the scan output (state seen by each element);
    applying each segment's last step to its own ``before`` yields the
    entry's final state.  Untouched entries stay at the reset value 0.
    """
    from ..utils.tables import distribution_stats

    values = np.zeros(size, dtype=np.int64)
    if len(indices_sorted):
        is_last = np.empty(len(indices_sorted), dtype=bool)
        is_last[-1] = True
        np.not_equal(indices_sorted[1:], indices_sorted[:-1],
                     out=is_last[:-1])
        final = np.clip(before[is_last] + steps[is_last], lo, hi)
        values[indices_sorted[is_last].astype(np.int64)] = final
    return distribution_stats(values, lo, hi)


def _fill_probe(probe: "PredictionProbe", trace: TraceData,
                conditional: np.ndarray, predictions: np.ndarray,
                warmup_instructions: int, structure: dict) -> None:
    """Populate ``probe`` from a finished engine run via the bulk hooks.

    Only the measured (post-warm-up) region is profiled, matching the
    scalar simulator's accounting; the single ``table`` component
    receives the whole attribution because these predictors have no
    arbitration to observe.
    """
    probe.start()
    ips = trace.ips[conditional]
    taken = trace.taken[conditional]
    wrong = predictions != taken
    if warmup_instructions > 0:
        numbers = trace.instruction_numbers()[conditional]
        measured = numbers > warmup_instructions
        ips = ips[measured]
        taken = taken[measured]
        wrong = wrong[measured]
    n = len(ips)
    probe.record_bulk("table", n, n - int(wrong.sum()))
    unique_ips, inverse = np.unique(ips, return_inverse=True)
    occurrences = np.bincount(inverse, minlength=len(unique_ips))
    taken_counts = np.bincount(inverse, weights=taken,
                               minlength=len(unique_ips))
    wrong_counts = np.bincount(inverse, weights=wrong,
                               minlength=len(unique_ips))
    for i, ip in enumerate(unique_ips):
        probe.record_branch_bulk(int(ip), int(occurrences[i]),
                                 int(taken_counts[i]),
                                 int(wrong_counts[i]), component="table")
    probe.set_structure(structure)
    probe.finish()


def _phase_end(instrumentation: "Instrumentation | None", name: str,
               start: float) -> float:
    """Record one engine phase; returns the next phase's start time."""
    now = time.perf_counter()
    instrumentation.add_phase(name, now - start)
    return now


def simulate_bimodal_vectorized(trace: TraceData, log_table_size: int = 14,
                                counter_width: int = 2,
                                instruction_shift: int = 0,
                                warmup_instructions: int = 0, *,
                                instrumentation:
                                "Instrumentation | None" = None,
                                probe: "PredictionProbe | None" = None
                                ) -> VectorizedResult:
    """Bit-exact vectorized run of :class:`repro.predictors.Bimodal`.

    Each table entry's counter sequence is independent, so branches are
    grouped by table index (stable sort) and every group's counter walk
    is resolved by one segmented scan.
    """
    if counter_width < 1:
        raise SimulationError("counter_width must be >= 1")
    instr = instrumentation
    start = time.perf_counter() if instr is not None else 0.0
    conditional = trace.conditional_mask()
    ips = trace.ips[conditional]
    taken = trace.taken[conditional]
    n = len(ips)
    mask = np.uint64((1 << log_table_size) - 1)
    indices = (ips >> np.uint64(instruction_shift)) & mask
    if instr is not None:
        start = _phase_end(instr, "index", start)

    order = np.argsort(indices, kind="stable")
    lo = -(1 << (counter_width - 1))
    hi = (1 << (counter_width - 1)) - 1
    steps = np.where(taken[order], 1, -1)
    before = clamped_walk_states(indices[order], steps, lo, hi)
    if instr is not None:
        start = _phase_end(instr, "scan", start)

    predictions = np.empty(n, dtype=bool)
    predictions[order] = before >= 0
    result = _finish(trace, conditional, predictions, warmup_instructions)
    if probe is not None:
        structure = {"table": _final_table_stats(
            indices[order], before, steps, lo, hi, 1 << log_table_size)}
        _fill_probe(probe, trace, conditional, predictions,
                    warmup_instructions, structure)
    if instr is not None:
        _phase_end(instr, "finish", start)
    return result


def simulate_gshare_vectorized(trace: TraceData, history_length: int = 15,
                               log_table_size: int = 17,
                               counter_width: int = 2,
                               warmup_instructions: int = 0, *,
                               instrumentation:
                               "Instrumentation | None" = None,
                               probe: "PredictionProbe | None" = None
                               ) -> VectorizedResult:
    """Bit-exact vectorized run of :class:`repro.predictors.GShare`.

    GShare's scenario state (the global history register) is a pure
    function of the preceding outcomes, so it is precomputed for every
    branch; after that the problem reduces to the same grouped
    clamped-walk scan as bimodal, keyed by the hashed index.
    """
    if counter_width < 1:
        raise SimulationError("counter_width must be >= 1")
    instr = instrumentation
    start = time.perf_counter() if instr is not None else 0.0
    # track() pushes *every* branch outcome (unconditional = taken).
    history = global_history_windows(trace.taken, history_length)
    conditional = trace.conditional_mask()
    ips = trace.ips[conditional]
    taken = trace.taken[conditional]
    indices = xor_fold_array(ips ^ history[conditional], log_table_size)
    if instr is not None:
        start = _phase_end(instr, "index", start)

    order = np.argsort(indices, kind="stable")
    lo = -(1 << (counter_width - 1))
    hi = (1 << (counter_width - 1)) - 1
    steps = np.where(taken[order], 1, -1)
    before = clamped_walk_states(indices[order], steps, lo, hi)
    if instr is not None:
        start = _phase_end(instr, "scan", start)

    predictions = np.empty(len(ips), dtype=bool)
    predictions[order] = before >= 0
    result = _finish(trace, conditional, predictions, warmup_instructions)
    if probe is not None:
        structure = {"table": _final_table_stats(
            indices[order], before, steps, lo, hi, 1 << log_table_size)}
        _fill_probe(probe, trace, conditional, predictions,
                    warmup_instructions, structure)
    if instr is not None:
        _phase_end(instr, "finish", start)
    return result
