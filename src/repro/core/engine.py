"""Persistent execution engine with shared-memory trace distribution.

The paper's headline claim is *throughput*: MBPlib simulates whole trace
suites ~11x faster than the CBP5 framework and ~30x faster than ChampSim
(Table III).  The C++ binary pays its orchestration cost once — traces
are decoded once, and every (configuration, trace) run happens inside
one long-lived process.  The Python evaluation drivers historically did
not: every :func:`repro.core.batch.run_suite` call forked a fresh
``ProcessPoolExecutor`` and pickled each trace payload to a worker per
task, so a 20-point sweep re-shipped every trace 20 times and re-forked
the pool 20 times.

:class:`ExecutionEngine` removes that overhead:

* **one pool** — worker processes are created lazily on the first
  dispatch and reused for every subsequent suite, sweep point or search
  evaluation until :meth:`ExecutionEngine.close`;
* **one decode, one ship** — each distinct trace (identified by its
  canonical SBBT content digest) is decoded in the parent once and
  published once into a :mod:`multiprocessing.shared_memory` segment
  holding the five :class:`~repro.sbbt.trace.TraceData` column arrays
  back to back.  Workers attach the segment the first time they see the
  digest and reconstruct **zero-copy** numpy views over the shared
  buffer; every later task over the same trace reuses the resident
  views and ships only a ~100-byte descriptor;
* **streamed completion** — tasks are submitted in a bounded window and
  results are consumed with ``as_completed`` semantics, so one slow
  trace never delays the recording of the others and memory stays
  bounded for arbitrarily long task lists;
* **adaptive chunked dispatch** — :meth:`ExecutionEngine.run_plan`
  consumes :class:`~repro.core.plan.WorkPlan` batches and packs several
  work units into each worker round-trip, sized from the measured
  per-unit cost, so cheap units (small traces, big sweeps) no longer pay
  one pickle/IPC/future round-trip each — the overhead that used to make
  a parallel suite slower than a serial one.  Multi-unit chunks
  checkpoint finished outcomes to a spool, so a worker crash mid-chunk
  loses exactly one unit.

Lifecycle is context-managed: ``with ExecutionEngine(workers=4) as
engine: ...`` guarantees the pool is shut down and every shared-memory
segment is unlinked — also on worker crashes (the pool is replaced, the
segments survive until ``close``) and under both the ``fork`` and
``spawn`` start methods.  A :mod:`weakref` finalizer backstops segment
cleanup if an engine is dropped without ``close``.

Observability: the engine keeps an :class:`EngineStats` record —
``traces_published`` / ``trace_attaches`` / ``trace_reuses`` /
``tasks_dispatched`` counters plus a per-engine phase breakdown
(``publish`` / ``dispatch`` / ``drain``) — and mirrors the counters into
any :mod:`repro.telemetry` instrumentation passed to
:meth:`run_tasks`, so the "each trace shipped at most once per worker"
property is measurable, not folklore.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
import traceback
import weakref
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context, shared_memory
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence, Union

import numpy as np

from ..sbbt.trace import TraceData
from .errors import SimulationError
from .output import SimulationResult
from .plan import (WorkPlan, WorkUnit, chunk_cost_size, normalize_batch,
                   normalize_chunk)
from .predictor import Predictor
from .simulator import SimulationConfig

__all__ = ["EngineStats", "ExecutionEngine", "SharedTrace",
           "default_workers"]


def default_workers(units: int | None = None) -> int:
    """The CPU-aware default worker count for CLI entry points.

    ``min(4, cpu_count - 1)``, never below 1: leave one core for the
    parent (decode, cache IO, result collection) and cap at four —
    chunked dispatch keeps engine overhead below serial cost at that
    width on every suite size the benchmarks gate.  ``units`` (the
    number of schedulable work units, when the caller knows it) caps
    the answer further: a single-trace suite gets 1 worker — the serial
    path — because parallelism has nothing to chew on.  Opt out with an
    explicit ``--workers 1``.
    """
    cap = max(1, min(4, (os.cpu_count() or 2) - 1))
    if units is not None and units < cap:
        cap = max(1, units)
    return cap

#: Adaptive chunking aims for this much worker time per round-trip: large
#: enough to amortize the pickle/IPC/future overhead of a dispatch, small
#: enough that completion streaming and failure latency stay responsive.
_TARGET_CHUNK_SECONDS = 0.2

#: Never pack more than this many units into one chunk, however cheap
#: they measure — bounds both result-latency and re-dispatch cost after
#: a mid-chunk crash.
_MAX_CHUNK_UNITS = 64

#: Exponential-moving-average weight of the newest per-unit timing.
_EMA_ALPHA = 0.3

PredictorFactory = Callable[[], Predictor]
TraceLike = Union[TraceData, str, Path]

#: Column layout of one shared segment, in storage order.  Offsets are
#: derived from the branch count alone, so the per-task descriptor only
#: needs ``num_branches`` (plus ``num_instructions`` for the header).
_COLUMNS: tuple[tuple[str, np.dtype], ...] = (
    ("ips", np.dtype(np.uint64)),
    ("targets", np.dtype(np.uint64)),
    ("opcodes", np.dtype(np.uint8)),
    ("taken", np.dtype(np.bool_)),
    ("gaps", np.dtype(np.uint16)),
)

#: Bytes per branch record across all five columns (8+8+1+1+2).
_BYTES_PER_BRANCH = sum(dtype.itemsize for _, dtype in _COLUMNS)


def _segment_size(num_branches: int) -> int:
    """Segment byte size for ``num_branches`` records (never zero —
    ``SharedMemory`` rejects empty segments, so the empty trace still
    owns one byte)."""
    return max(1, num_branches * _BYTES_PER_BRANCH)


def _column_views(buffer: memoryview, num_branches: int,
                  ) -> dict[str, np.ndarray]:
    """The five column arrays as views over ``buffer`` (no copies)."""
    views: dict[str, np.ndarray] = {}
    offset = 0
    for name, dtype in _COLUMNS:
        views[name] = np.ndarray(num_branches, dtype=dtype, buffer=buffer,
                                 offset=offset)
        offset += num_branches * dtype.itemsize
    return views


@dataclass(frozen=True, slots=True)
class SharedTrace:
    """Picklable descriptor of one published trace.

    This is *all* that travels per task once a trace is resident: the
    segment name, the record count (which fixes every column offset),
    the header instruction count, the content digest used as the
    worker-side registry key, and the display default.
    """

    segment: str
    digest: str
    num_branches: int
    num_instructions: int
    nbytes: int


def _pack_trace(data: TraceData, buffer: memoryview) -> None:
    """Copy ``data``'s columns into a segment buffer (parent side)."""
    views = _column_views(buffer, len(data))
    for name, dtype in _COLUMNS:
        views[name][:] = getattr(data, name)


def _unpack_trace(buffer: memoryview, num_branches: int,
                  num_instructions: int) -> TraceData:
    """Rebuild a :class:`TraceData` of zero-copy views (worker side).

    The views are marked read-only: predictors never mutate trace
    columns, and a stray write through a shared mapping would corrupt
    every other worker's input.
    """
    views = _column_views(buffer, num_branches)
    for view in views.values():
        view.flags.writeable = False
    return TraceData(views["ips"], views["targets"], views["opcodes"],
                     views["taken"], views["gaps"], num_instructions)


# ----------------------------------------------------------------------
# Worker side: the per-process resident-trace registry.
# ----------------------------------------------------------------------

#: digest -> (segment handle, reconstructed TraceData).  Module-global so
#: it survives across tasks within one worker process; the segment handle
#: is retained because the numpy views borrow its buffer.
_RESIDENT: dict[str, tuple[shared_memory.SharedMemory, TraceData]] = {}


def _attach_resident(ref: SharedTrace) -> tuple[TraceData, bool]:
    """The worker-resident trace for ``ref`` (attaching on first touch).

    Returns ``(data, attached)`` where ``attached`` is True when this
    call had to map the segment — i.e. the one "ship" this worker ever
    pays for this trace.
    """
    entry = _RESIDENT.get(ref.digest)
    if entry is not None:
        return entry[1], False
    # Attaching registers the name with the resource tracker a second
    # time; pool workers share the parent's tracker process (its fd is
    # inherited under fork and passed explicitly under spawn), and the
    # tracker's per-type cache is a set, so the duplicate is a no-op and
    # the parent's unlink-on-close remains the single cleanup point.
    # (Explicitly unregistering here would *remove* the parent's
    # registration from the shared tracker — bpo-38119 only bites when
    # attacher and creator have separate trackers, which a pool never
    # does.)
    segment = shared_memory.SharedMemory(name=ref.segment)
    data = _unpack_trace(segment.buf, ref.num_branches, ref.num_instructions)
    _RESIDENT[ref.digest] = (segment, data)
    return data, True


def _engine_run_one(factory: PredictorFactory, ref: SharedTrace,
                    config: SimulationConfig, name: str,
                    probe: bool,
                    sim_engine: str = "scalar",
                    trace_wire: dict | None = None,
                    ) -> tuple[Any, bool, list[dict]]:
    """Worker task: simulate one resident trace.

    Returns ``(outcome, attached, spans)`` — the outcome is a
    :class:`~repro.core.output.SimulationResult` or a
    :class:`~repro.core.batch.TraceFailure` (the same fault barrier as
    the classic pool path), ``attached`` feeds the parent's
    trace_attach / trace_reuse counters, and ``spans`` are the
    worker-side span dicts when ``trace_wire`` carried a
    :class:`~repro.tracing.TraceContext` (empty — tracing disabled —
    otherwise).  Worker spans (``attach``, ``simulate``) are parented
    to the shipped context, so the parent's trace keeps its tree shape
    across the process boundary.
    """
    from .batch import TraceFailure, _run_one

    spans: list[dict] = []
    if trace_wire is not None:
        from ..tracing.span import wire_child_span
    wall = time.time()
    start = time.perf_counter()
    try:
        data, attached = _attach_resident(ref)
    except Exception as exc:  # noqa: BLE001 - segment gone / mapping failed
        if trace_wire is not None:
            spans.append(wire_child_span(
                trace_wire, "attach", wall, time.perf_counter() - start,
                status="error", attributes={"digest": ref.digest[:12]}))
        return TraceFailure(
            trace_name=name,
            error=f"{type(exc).__name__}: {exc}",
            details=traceback.format_exc(),
        ), False, spans
    if trace_wire is not None:
        spans.append(wire_child_span(
            trace_wire, "attach", wall, time.perf_counter() - start,
            attributes={"digest": ref.digest[:12],
                        "first_touch": attached}))
    wall = time.time()
    start = time.perf_counter()
    outcome = _run_one(factory, data, config, name, probe,
                       sim_engine=sim_engine)
    if trace_wire is not None:
        failed = isinstance(outcome, TraceFailure)
        spans.append(wire_child_span(
            trace_wire, "simulate", wall, time.perf_counter() - start,
            status="error" if failed else "ok",
            attributes={"unit": name, "sim_engine": sim_engine}))
    return outcome, attached, spans


#: One unit of a chunk payload, parent -> worker:
#: (factory, trace ref, config, name, probe, sim_engine, trace wire
#: context or None).
_ChunkItem = tuple[Any, SharedTrace, SimulationConfig, str, bool, str,
                   "dict | None"]


def _spool_file(spool_dir: str, chunk_id: str, position: int) -> str:
    return os.path.join(spool_dir, f"{chunk_id}-{position}.res")


def _spool_write(spool_dir: str, chunk_id: str, position: int,
                 payload: tuple[Any, bool, list]) -> None:
    """Persist one finished unit's (outcome, attached, spans) atomically.

    Best-effort: a spool write failure only degrades crash recovery for
    this chunk (the unit would be re-simulated), it never fails the unit.
    """
    final = _spool_file(spool_dir, chunk_id, position)
    tmp = f"{final}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as stream:
            pickle.dump(payload, stream)
        os.replace(tmp, final)
    except Exception:  # noqa: BLE001 - recovery is advisory
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _spool_load(spool_dir: str, chunk_id: str, count: int,
                ) -> dict[int, tuple[Any, bool, list]]:
    """Outcomes a crashed chunk managed to finish, keyed by position.

    Unreadable or half-written entries are treated as missing — the
    parent then re-runs (or fails) those units, which is always safe.
    """
    recovered: dict[int, tuple[Any, bool, list]] = {}
    for position in range(count):
        try:
            with open(_spool_file(spool_dir, chunk_id, position),
                      "rb") as stream:
                recovered[position] = pickle.load(stream)
        except Exception:  # noqa: BLE001 - missing/corrupt = not finished
            continue
    return recovered


def _spool_clear(spool_dir: str, chunk_id: str, count: int) -> None:
    """Drop a chunk's spool entries (after they have been consumed)."""
    for position in range(count):
        try:
            os.unlink(_spool_file(spool_dir, chunk_id, position))
        except OSError:
            continue


def _engine_run_group(items: Sequence[_ChunkItem], positions: Sequence[int],
                      outcomes: list, info: dict[str, int],
                      spool_dir: str | None, chunk_id: str) -> None:
    """Worker task helper: run one same-digest batch group in stacked
    numpy passes (:func:`repro.core.vectorized.run_unit_group`).

    The shared trace is attached once; the group's elapsed time is
    attributed evenly across its units so the parent's chunk-size EMA
    sees the *batched* per-unit cost.  An attach failure fails every
    member (each would have failed identically alone).  Spool writes
    happen per unit after the group completes — a crash mid-group
    re-runs the whole group, which is safe and cheap (groups are one
    pass).
    """
    from .batch import TraceFailure
    from .vectorized import run_unit_group

    if any(items[p][6] is not None for p in positions):
        from ..tracing.span import wire_child_span
    ref = items[positions[0]][1]
    wall = time.time()
    start = time.perf_counter()
    try:
        data, attached = _attach_resident(ref)
    except Exception as exc:  # noqa: BLE001 - segment gone
        for position in positions:
            _f, _r, _c, name, _p, _s, trace_wire = items[position]
            spans: list[dict] = []
            if trace_wire is not None:
                spans.append(wire_child_span(
                    trace_wire, "attach", wall,
                    time.perf_counter() - start, status="error",
                    attributes={"digest": ref.digest[:12]}))
            record = (TraceFailure(
                trace_name=name,
                error=f"{type(exc).__name__}: {exc}",
                details=traceback.format_exc(),
            ), False, 0.0, spans)
            if spool_dir is not None:
                _spool_write(spool_dir, chunk_id, position,
                             (record[0], record[1], record[3]))
            outcomes[position] = record
        return
    units = [(items[p][0], items[p][2], items[p][3], items[p][4],
              items[p][5], None) for p in positions]
    group_start = time.perf_counter()
    results, group_info = run_unit_group(data, units)
    share = (time.perf_counter() - group_start) / len(positions)
    info["batch_groups"] += 1
    info["batch_units"] += len(positions)
    info["context_reuse"] += int(group_info.get("context_reuse", 0))
    for offset, position in enumerate(positions):
        _f, _r, _c, name, _p, sim_engine, trace_wire = items[position]
        spans = []
        if trace_wire is not None:
            spans.append(wire_child_span(
                trace_wire, "attach", wall, time.perf_counter() - start,
                attributes={"digest": ref.digest[:12],
                            "first_touch": attached and offset == 0}))
            failed = isinstance(results[offset], TraceFailure)
            spans.append(wire_child_span(
                trace_wire, "simulate", wall, share,
                status="error" if failed else "ok",
                attributes={"unit": name, "sim_engine": sim_engine,
                            "batched": True}))
        record = (results[offset], attached and offset == 0, share, spans)
        if spool_dir is not None:
            _spool_write(spool_dir, chunk_id, position,
                         (record[0], record[1], record[3]))
        outcomes[position] = record


def _engine_run_chunk(items: Sequence[_ChunkItem], spool_dir: str | None,
                      chunk_id: str, batch: bool = False,
                      ) -> tuple[list[tuple[Any, bool, float, list[dict]]],
                                 dict[str, int]]:
    """Worker task: simulate a whole chunk of resident-trace units.

    Returns ``(records, info)``: one ``(outcome, attached,
    elapsed_seconds, spans)`` record per unit, in chunk order, plus an
    ``info`` dict with the chunk's ``batch_groups`` / ``batch_units`` /
    ``context_reuse`` counts.  The per-unit timings feed the parent's
    adaptive chunk-size estimate and the spans (empty when tracing is
    off) ship the worker-side trace back.  When ``spool_dir`` is given
    (multi-unit chunks), every finished unit is also checkpointed to
    disk so a crash later in the chunk loses only the unit that was
    executing — finished units' spans survive the crash with their
    outcomes.

    With ``batch=True``, units sharing a trace digest whose
    ``sim_engine`` admits the vectorized engine are evaluated as one
    batched group (the parent's digest-affinity packing makes such
    groups common); the rest run per unit exactly as before.
    """
    outcomes: list[tuple[Any, bool, float, list[dict]] | None] = \
        [None] * len(items)
    info = {"batch_groups": 0, "batch_units": 0, "context_reuse": 0}
    batched: set[int] = set()
    if batch:
        groups: dict[str, list[int]] = {}
        for position, item in enumerate(items):
            if item[5] in ("vectorized", "auto"):
                groups.setdefault(item[1].digest, []).append(position)
        for positions in groups.values():
            if len(positions) >= 2:
                _engine_run_group(items, positions, outcomes, info,
                                  spool_dir, chunk_id)
                batched.update(positions)
    for position, (factory, ref, config, name, probe,
                   sim_engine, trace_wire) in enumerate(items):
        if position in batched:
            continue
        start = time.perf_counter()
        outcome, attached, spans = _engine_run_one(
            factory, ref, config, name, probe, sim_engine, trace_wire)
        elapsed = time.perf_counter() - start
        if spool_dir is not None:
            _spool_write(spool_dir, chunk_id, position,
                         (outcome, attached, spans))
        outcomes[position] = (outcome, attached, elapsed, spans)
    return outcomes, info


# ----------------------------------------------------------------------
# Parent side.
# ----------------------------------------------------------------------


def _release_segments(segments: dict[str, shared_memory.SharedMemory],
                      ) -> None:
    """Close and unlink every segment in ``segments`` (idempotent).

    Module-level so a :func:`weakref.finalize` can call it after the
    engine object is gone; mutates the dict in place so segments
    published after the finalizer was registered are still covered.
    """
    while segments:
        _, segment = segments.popitem()
        try:
            segment.close()
        except OSError:  # pragma: no cover - already closed
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        except OSError:  # pragma: no cover - platform-specific teardown
            pass


@dataclass(slots=True)
class EngineStats:
    """Counters and phase timings of one :class:`ExecutionEngine`.

    ``traces_published`` counts shared segments created (one per distinct
    trace digest — the *ship once globally* half of the claim);
    ``trace_attaches`` counts first-touch mappings inside workers (at
    most ``workers`` per trace — the *at most once per worker* half);
    ``trace_reuses`` counts tasks served entirely from a worker's
    resident registry.  ``phases`` accumulates parent-side seconds spent
    publishing traces, dispatching tasks and draining results.

    Chunked dispatch adds three counters: ``chunks_dispatched`` is the
    number of worker round-trips (so the mean chunk size is
    ``tasks_dispatched / chunks_dispatched``), ``units_recovered`` counts
    finished units salvaged from the spool after a mid-chunk worker
    crash, and ``units_retried`` counts unstarted units re-dispatched
    after such a crash (each retry also re-increments
    ``tasks_dispatched``).

    Batched evaluation adds two more: ``batch_groups`` counts the
    same-trace groups workers evaluated in one stacked numpy pass and
    ``batch_units`` the units those groups covered (so
    ``batch_units / batch_groups`` is the mean group width).
    """

    workers: int = 0
    start_method: str = ""
    traces_published: int = 0
    shared_bytes: int = 0
    tasks_dispatched: int = 0
    chunks_dispatched: int = 0
    units_recovered: int = 0
    units_retried: int = 0
    batch_groups: int = 0
    batch_units: int = 0
    trace_attaches: int = 0
    trace_reuses: int = 0
    pool_restarts: int = 0
    phases: dict[str, float] = field(default_factory=dict)

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` against parent-side phase ``name``."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def to_json(self) -> dict[str, Any]:
        """Plain-dict form for ``mbp ... --engine-stats`` and manifests."""
        return {
            "workers": self.workers,
            "start_method": self.start_method,
            "traces_published": self.traces_published,
            "shared_bytes": self.shared_bytes,
            "tasks_dispatched": self.tasks_dispatched,
            "chunks_dispatched": self.chunks_dispatched,
            "units_recovered": self.units_recovered,
            "units_retried": self.units_retried,
            "batch_groups": self.batch_groups,
            "batch_units": self.batch_units,
            "trace_attaches": self.trace_attaches,
            "trace_reuses": self.trace_reuses,
            "pool_restarts": self.pool_restarts,
            "phases": dict(self.phases),
        }


class ExecutionEngine:
    """A persistent worker pool with resident shared-memory traces.

    Parameters
    ----------
    workers:
        Worker process count (>= 1).  Defaults to ``os.cpu_count()``.
    start_method:
        ``"fork"``, ``"spawn"``, ``"forkserver"`` or ``None`` for the
        platform default.  Everything the engine ships is picklable, so
        all methods behave identically; ``spawn`` pays a per-worker
        interpreter startup but is immune to fork-unsafe state.
    window:
        Maximum in-flight tasks during :meth:`run_tasks` (default
        ``4 * workers``, at least 16).  Bounds both executor queue
        growth and the latency until a failure is observed.

    Use as a context manager; :meth:`close` is idempotent and also runs
    from a GC finalizer, so segments cannot outlive the process even if
    user code forgets the ``with``.
    """

    def __init__(self, workers: int | None = None, *,
                 start_method: str | None = None,
                 window: int | None = None):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.workers = workers
        self._context = get_context(start_method)
        self._window = window if window is not None else max(4 * workers, 16)
        self._pool: ProcessPoolExecutor | None = None
        #: digest -> parent-side segment handle (the owning reference).
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        #: digest -> task descriptor for everything ever published.
        self._published: dict[str, SharedTrace] = {}
        #: (resolved path, mtime_ns, size) -> digest, so re-publishing
        #: the same file across sweep points skips the decode entirely.
        self._path_index: dict[tuple[str, int, int], str] = {}
        self._closed = False
        self._lock = threading.Lock()
        #: EMA of worker-measured seconds per unit; engine-lifetime, so
        #: later plans (sweep points, search rounds) start warm.
        self._unit_ema: float | None = None
        self._chunk_seq = 0
        #: Crash-recovery spool (created on first multi-unit chunk);
        #: TemporaryDirectory carries its own GC finalizer as a backstop.
        self._spool: tempfile.TemporaryDirectory | None = None
        self.stats = EngineStats(workers=workers,
                                 start_method=self._context.get_start_method())
        self._finalizer = weakref.finalize(
            self, _release_segments, self._segments)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the pool and unlink every shared segment.

        Safe to call repeatedly; after it, the engine refuses new work.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        _release_segments(self._segments)
        if self._spool is not None:
            try:
                self._spool.cleanup()
            except OSError:  # pragma: no cover - already gone
                pass
            self._spool = None
        self._finalizer.detach()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise SimulationError("ExecutionEngine is closed")

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The live executor, (re)created lazily and after crashes."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._context)
        return self._pool

    def _restart_pool(self) -> None:
        """Replace a broken executor (a worker died mid-task)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        self.stats.pool_restarts += 1

    def recover(self) -> None:
        """Replace the worker pool after a crash; resident traces survive.

        :meth:`run_tasks` restarts the pool automatically when it
        observes a :class:`BrokenProcessPool`; callers driving
        :meth:`submit` directly (the serve daemon, custom schedulers)
        use this to do the same.  No-op on a closed engine.
        """
        with self._lock:
            if self._closed:
                return
            self._restart_pool()

    # ------------------------------------------------------------------
    # Trace publication.
    # ------------------------------------------------------------------

    def publish(self, trace: TraceLike) -> SharedTrace:
        """Ensure ``trace`` is resident in shared memory; return its ref.

        A path is digested from its (decompressed) bytes and decoded at
        most once per engine; an in-memory :class:`TraceData` is encoded
        for digesting, then copied into the segment.  Publishing the
        same content twice — same file, same data, or a file and its
        in-memory decode — is free after the first call.
        """
        self._check_open()
        start = time.perf_counter()
        try:
            with self._lock:
                return self._publish_locked(trace)
        finally:
            self.stats.add_phase("publish", time.perf_counter() - start)

    def _publish_locked(self, trace: TraceLike) -> SharedTrace:
        from ..sbbt.digest import payload_digest

        data: TraceData | None = None
        path_key: tuple[str, int, int] | None = None
        if isinstance(trace, TraceData):
            from ..sbbt.writer import encode_payload
            data = trace
            digest = payload_digest(encode_payload(trace))
        else:
            resolved = Path(trace).resolve()
            stat = resolved.stat()
            path_key = (str(resolved), stat.st_mtime_ns, stat.st_size)
            cached = self._path_index.get(path_key)
            if cached is not None:
                return self._published[cached]
            # One read serves both the digest and (if new) the decode.
            from ..sbbt.compression import open_compressed
            from ..sbbt.reader import decode_payload
            with open_compressed(resolved, "rb") as stream:
                payload = stream.read()
            digest = payload_digest(payload)

        ref = self._published.get(digest)
        if ref is not None:
            if path_key is not None:
                self._path_index[path_key] = digest
            return ref

        if data is None:
            data = decode_payload(payload)

        segment = shared_memory.SharedMemory(
            create=True, size=_segment_size(len(data)))
        try:
            _pack_trace(data, segment.buf)
        except BaseException:  # pragma: no cover - copy cannot normally fail
            segment.close()
            segment.unlink()
            raise
        ref = SharedTrace(segment=segment.name, digest=digest,
                          num_branches=len(data),
                          num_instructions=data.num_instructions,
                          nbytes=segment.size)
        self._segments[digest] = segment
        self._published[digest] = ref
        if path_key is not None:
            self._path_index[path_key] = digest
        self.stats.traces_published += 1
        self.stats.shared_bytes += segment.size
        return ref

    @property
    def resident_traces(self) -> int:
        """How many distinct traces currently live in shared memory."""
        return len(self._segments)

    def segment_names(self) -> list[str]:
        """Names of the live shared-memory segments (for leak tests)."""
        return [segment.name for segment in self._segments.values()]

    # ------------------------------------------------------------------
    # Task execution.
    # ------------------------------------------------------------------

    def submit(self, factory: PredictorFactory, trace: TraceLike,
               config: SimulationConfig | None = None, *,
               name: str | None = None, probe: bool = False,
               sim_engine: str = "scalar",
               trace_wire: dict | None = None,
               tracer: Any = None) -> Future:
        """Publish ``trace`` if needed and schedule one simulation.

        The future resolves to a :class:`~repro.core.output.\
SimulationResult` or a :class:`~repro.core.batch.TraceFailure` (worker
        exceptions are wrapped, never raised).  ``sim_engine`` selects
        the worker-side simulation engine (``"scalar"``, ``"vectorized"``
        or ``"auto"``).  ``trace_wire`` (a
        :meth:`~repro.tracing.TraceContext.to_wire` dict) ships a trace
        context into the worker; the spans it emits are folded into
        ``tracer`` when the future completes.  Most callers want
        :meth:`run_tasks` or ``run_suite(engine=...)`` instead.
        """
        self._check_open()
        ref = self.publish(trace)
        resolved = name if name is not None else (
            "trace[shared]" if isinstance(trace, TraceData) else str(trace))
        future = self._ensure_pool().submit(
            _engine_run_one, factory, ref, config or SimulationConfig(),
            resolved, probe, sim_engine, trace_wire)
        self.stats.tasks_dispatched += 1
        return self._unwrap(future, tracer)

    def _unwrap(self, future: Future, tracer: Any = None) -> Future:
        """Map a worker ``(outcome, attached, spans)`` future to
        outcome-only, folding worker spans into ``tracer``."""
        unwrapped: Future = Future()

        def _transfer(done: Future) -> None:
            exc = done.exception()
            if exc is not None:
                unwrapped.set_exception(exc)
                return
            outcome, attached, spans = done.result()
            self._count_attach(attached)
            if tracer is not None:
                tracer.record_wire(spans)
            unwrapped.set_result(outcome)

        future.add_done_callback(_transfer)
        return unwrapped

    def _count_attach(self, attached: bool) -> None:
        if attached:
            self.stats.trace_attaches += 1
        else:
            self.stats.trace_reuses += 1

    def submit_unit(self, unit: WorkUnit, *,
                    trace_wire: dict | None = None,
                    tracer: Any = None) -> Future:
        """Schedule one :class:`~repro.core.plan.WorkUnit` (the serve
        daemon's per-request path).  Equivalent to :meth:`submit` with
        the unit's fields."""
        return self.submit(unit.factory, unit.trace, unit.config,
                           name=unit.name, probe=unit.probe,
                           sim_engine=unit.sim_engine,
                           trace_wire=trace_wire, tracer=tracer)

    def _spool_path(self) -> str:
        """The crash-recovery spool directory, created on first use.

        Creation is locked: concurrent ``run_plan`` generators (the
        serve daemon drives several at once) must agree on one spool,
        not race two ``TemporaryDirectory`` objects and leak one.
        """
        with self._lock:
            if self._spool is None:
                self._spool = tempfile.TemporaryDirectory(
                    prefix="mbp-engine-spool-")
            return self._spool.name

    def _observe_unit_seconds(self, seconds: float) -> None:
        """Fold one worker-measured per-unit timing into the cost EMA."""
        seconds = max(seconds, 1e-9)
        if self._unit_ema is None:
            self._unit_ema = seconds
        else:
            self._unit_ema = (_EMA_ALPHA * seconds
                              + (1.0 - _EMA_ALPHA) * self._unit_ema)

    def run_tasks(self, factory: PredictorFactory,
                  tasks: Sequence[tuple[TraceLike, str]],
                  config: SimulationConfig | None = None, *,
                  probe: bool = False,
                  instrumentation: Any = None,
                  sim_engine: str = "scalar",
                  chunk: int | str = "auto",
                  batch: str | bool = "auto",
                  ) -> Iterator[tuple[int, Any]]:
        """Run ``(trace, name)`` tasks; yield ``(index, outcome)`` pairs
        in **completion order** (``as_completed`` semantics).

        Compatibility wrapper: lowers the task list into a
        :class:`~repro.core.plan.WorkPlan` and delegates to
        :meth:`run_plan`.
        """
        plan = WorkPlan.for_suite(factory, [trace for trace, _ in tasks],
                                  config, names=[name for _, name in tasks],
                                  probe=probe, sim_engine=sim_engine)
        return self.run_plan(plan, chunk=chunk, batch=batch,
                             instrumentation=instrumentation)

    def run_plan(self, plan: WorkPlan, *,
                 chunk: int | str = "auto",
                 batch: str | bool = "auto",
                 instrumentation: Any = None,
                 tracer: Any = None,
                 trace_parent: Any = None,
                 ) -> Iterator[tuple[int, Any]]:
        """Execute a :class:`~repro.core.plan.WorkPlan`; yield
        ``(plan index, outcome)`` pairs in **completion order**.

        Units are packed into *chunks* — several units per worker
        round-trip — so the per-dispatch overhead (pickling, IPC, future
        bookkeeping) is paid once per chunk instead of once per unit.
        With ``chunk="auto"`` the size adapts to the measured per-unit
        cost: the first wave runs as singleton probe chunks, their
        worker-side timings seed an exponential moving average, and
        subsequent chunks target ~0.2 s of worker time each (never more
        than 64 units, never starving idle workers on the plan's tail).
        An integer ``chunk`` forces that size.  The cost estimate
        persists across plans, so sweeps and searches start warm after
        their first call.

        Submission stays windowed: at most ``window`` *units* are in
        flight, and finished chunks are immediately refilled, so
        arbitrarily long plans never flood the executor queue.

        A worker crash (``BrokenProcessPool``) loses as little as
        possible: multi-unit chunks checkpoint every finished unit's
        outcome to a parent-owned spool, so the parent recovers those
        results, records one :class:`~repro.core.batch.TraceFailure` for
        the unit that was executing, re-dispatches only the unstarted
        units, and replaces the pool — the engine (and its resident
        traces) survive the crash.

        With ``batch="auto"`` (the default) the dispatch queue is packed
        with *trace-digest affinity*: units over the same trace are made
        adjacent (digest buckets in first-appearance order, plan order
        within a bucket) so batch groups survive chunking intact, and
        each worker evaluates the same-digest vectorized units of its
        chunk as one stacked numpy pass
        (:func:`repro.core.vectorized.run_unit_group`) instead of unit
        by unit.  Results still come back per unit — outcome, spool
        checkpoint, spans and cache entry are unchanged in shape.
        ``batch="off"`` keeps plan-order dispatch and per-unit worker
        loops.

        ``instrumentation`` (a :mod:`repro.telemetry` object) receives
        ``task_dispatch`` / ``trace_ship`` / ``trace_attach`` /
        ``trace_reuse`` / ``task_chunk`` / ``chunk_size`` counters plus
        ``engine_dispatch`` and ``chunk_dispatch`` phases for this call
        (mean chunk size = ``chunk_size / task_chunk``), and
        ``batch_groups`` / ``batch_units`` / ``context_reuse`` counters
        when workers actually formed batch groups.

        ``tracer`` (a :mod:`repro.tracing` object, nested under
        ``trace_parent``) receives an ``engine_dispatch`` span carrying
        the same counters as attributes, one ``unit`` span per unit
        (closed with ``status="error"`` for poisoned and failed units),
        and the worker-emitted ``attach`` / ``simulate`` spans that ship
        back inside each chunk's results — per-unit contexts ride the
        chunk payloads as wire dicts, so the parent/child links survive
        the process boundary.
        """
        self._check_open()
        fixed = normalize_chunk(chunk)
        use_batch = normalize_batch(batch)
        instr = instrumentation
        traced = tracer is not None and getattr(tracer, "enabled", False)
        dispatch_span = None
        if traced:
            dispatch_span = tracer.span(
                "engine_dispatch", parent=trace_parent,
                attributes={"workers": self.workers, "chunk": str(chunk),
                            "batch": "auto" if use_batch else "off"})
            dispatch_span.__enter__()
        #: plan index -> (context, wall start, perf start); entries stay
        #: across crash retries so a unit keeps one span for its lifetime.
        unit_meta: dict[int, tuple[Any, float, float]] = {}

        def _close_unit(index: int, *, status: str = "ok",
                        extra: dict[str, Any] | None = None) -> None:
            meta = unit_meta.pop(index, None)
            if meta is None:
                return
            ctx, wall, perf = meta
            attrs: dict[str, Any] = {"unit": plan[index].name}
            if extra:
                attrs.update(extra)
            tracer.add_span("unit", time.perf_counter() - perf,
                            context=ctx, start=wall, status=status,
                            attributes=attrs)

        start = time.perf_counter()
        published_before = self.stats.traces_published
        attaches_before = self.stats.trace_attaches
        reuses_before = self.stats.trace_reuses
        chunks_before = self.stats.chunks_dispatched
        groups_before = self.stats.batch_groups
        batch_units_before = self.stats.batch_units
        context_reuse_total = 0

        from .batch import TraceFailure

        # Publish per unit, not en masse: one unreadable trace becomes
        # that unit's TraceFailure (matching the serial and ad-hoc pool
        # paths' isolation contract) instead of aborting the whole plan.
        refs: dict[int, SharedTrace] = {}
        publish_failures: list[tuple[int, TraceFailure]] = []
        for index, unit in enumerate(plan):
            try:
                refs[index] = self.publish(unit.trace)
            except Exception as exc:  # noqa: BLE001 - caller-facing record
                publish_failures.append((index, TraceFailure(
                    trace_name=unit.name,
                    error=f"{type(exc).__name__}: {exc}",
                    details=traceback.format_exc(),
                )))
        if use_batch:
            # Trace-digest affinity: make same-trace units adjacent in
            # the dispatch queue (digest buckets in first-appearance
            # order, plan order within each bucket) so chunk packing
            # hands workers whole batch groups instead of shredding
            # them across round-trips.  Yield order is unaffected —
            # the caller realigns by plan index.
            by_digest: dict[str, list[int]] = {}
            for i in range(len(plan)):
                if i in refs:
                    by_digest.setdefault(refs[i].digest, []).append(i)
            queue: deque[int] = deque(
                i for bucket in by_digest.values() for i in bucket)
        else:
            queue = deque(i for i in range(len(plan)) if i in refs)
        planned_units = len(queue)
        #: future -> (chunk id, plan indices in chunk order, spool dir).
        in_flight: dict[Future, tuple[str, list[int], str | None]] = {}
        units_in_flight = 0
        chunk_phase = 0.0
        chunk_units_dispatched = 0

        def _submit_chunks() -> None:
            nonlocal units_in_flight, chunk_phase, chunk_units_dispatched
            submit_start = time.perf_counter()
            pool = self._ensure_pool()
            while queue and units_in_flight < self._window:
                if (fixed is None and self._unit_ema is None
                        and len(in_flight) >= self.workers):
                    break  # cold start: wait for a probe measurement
                if fixed is not None:
                    size = fixed
                else:
                    size = chunk_cost_size(
                        self._unit_ema, len(queue), self.workers,
                        target_seconds=_TARGET_CHUNK_SECONDS,
                        max_chunk=_MAX_CHUNK_UNITS)
                size = max(1, min(size, len(queue),
                                  self._window - units_in_flight))
                indices = [queue.popleft() for _ in range(size)]
                self._chunk_seq += 1
                chunk_id = f"c{self._chunk_seq}"
                spool = self._spool_path() if size > 1 else None
                if traced:
                    for i in indices:
                        if i not in unit_meta:  # crash retries keep theirs
                            unit_meta[i] = (
                                tracer.child(dispatch_span.context),
                                time.time(), time.perf_counter())
                items = [
                    (plan[i].factory, refs[i], plan[i].config, plan[i].name,
                     plan[i].probe, plan[i].sim_engine,
                     unit_meta[i][0].to_wire() if traced else None)
                    for i in indices
                ]
                future = pool.submit(_engine_run_chunk, items, spool,
                                     chunk_id, use_batch)
                self.stats.tasks_dispatched += size
                self.stats.chunks_dispatched += 1
                chunk_units_dispatched += size
                in_flight[future] = (chunk_id, indices, spool)
                units_in_flight += size
            chunk_phase += time.perf_counter() - submit_start

        try:
            for index, failure in publish_failures:
                yield index, failure
            _submit_chunks()
            while in_flight:
                done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                broke = False
                for future in done:
                    chunk_id, indices, spool = in_flight.pop(future)
                    units_in_flight -= len(indices)
                    try:
                        payloads, chunk_info = future.result()
                        self.stats.batch_groups += \
                            chunk_info["batch_groups"]
                        self.stats.batch_units += \
                            chunk_info["batch_units"]
                        context_reuse_total += \
                            chunk_info["context_reuse"]
                    except Exception as exc:  # noqa: BLE001 - broken pool
                        crashed = isinstance(exc, BrokenProcessPool)
                        broke = broke or crashed
                        recovered = (_spool_load(spool, chunk_id,
                                                 len(indices))
                                     if spool is not None else {})
                        poisoned = False
                        retry: list[int] = []
                        for position, index in enumerate(indices):
                            if position in recovered:
                                # Finished before the crash; the spooled
                                # outcome is as good as a returned one.
                                outcome, attached, spans = \
                                    recovered[position]
                                self._count_attach(attached)
                                self.stats.units_recovered += 1
                                if traced:
                                    tracer.record_wire(spans)
                                    _close_unit(index,
                                                extra={"recovered": True})
                                yield index, outcome
                            elif not poisoned:
                                # The unit that was (presumably) running
                                # when the worker died takes the blame.
                                # Its worker cannot ship spans any more,
                                # so the parent closes its span here.
                                poisoned = True
                                if traced:
                                    _close_unit(
                                        index, status="error",
                                        extra={"error":
                                               type(exc).__name__})
                                yield index, TraceFailure(
                                    trace_name=plan[index].name,
                                    error=f"{type(exc).__name__}: {exc}",
                                    details=traceback.format_exc(),
                                )
                            elif crashed:
                                retry.append(index)
                            else:
                                # Non-crash chunk failure (e.g. a result
                                # that cannot travel back): re-running
                                # would fail identically, so fail the
                                # unit instead of retrying forever.
                                if traced:
                                    _close_unit(
                                        index, status="error",
                                        extra={"error":
                                               type(exc).__name__})
                                yield index, TraceFailure(
                                    trace_name=plan[index].name,
                                    error=f"{type(exc).__name__}: {exc}",
                                    details=traceback.format_exc(),
                                )
                        if retry:
                            self.stats.units_retried += len(retry)
                            queue.extendleft(reversed(retry))
                        if spool is not None:
                            _spool_clear(spool, chunk_id, len(indices))
                        continue
                    for position, index in enumerate(indices):
                        outcome, attached, elapsed, spans = \
                            payloads[position]
                        self._count_attach(attached)
                        self._observe_unit_seconds(elapsed)
                        if traced:
                            tracer.record_wire(spans)
                            _close_unit(
                                index,
                                status=("error" if isinstance(
                                    outcome, TraceFailure) else "ok"))
                        yield index, outcome
                    if spool is not None:
                        _spool_clear(spool, chunk_id, len(indices))
                if broke:
                    self._restart_pool()
                _submit_chunks()
        finally:
            elapsed = time.perf_counter() - start
            self.stats.add_phase("dispatch", elapsed)
            self.stats.add_phase("chunk_dispatch", chunk_phase)
            if instr is not None:
                instr.add_phase("engine_dispatch", elapsed)
                instr.add_phase("chunk_dispatch", chunk_phase)
                instr.count("task_dispatch", planned_units)
                chunks = self.stats.chunks_dispatched - chunks_before
                if chunks:
                    instr.count("task_chunk", chunks)
                    instr.count("chunk_size", chunk_units_dispatched)
                groups = self.stats.batch_groups - groups_before
                if groups:
                    instr.count("batch_groups", groups)
                    instr.count("batch_units",
                                self.stats.batch_units
                                - batch_units_before)
                if context_reuse_total:
                    instr.count("context_reuse", context_reuse_total)
                shipped = self.stats.traces_published - published_before
                if shipped:
                    instr.count("trace_ship", shipped)
                attaches = self.stats.trace_attaches - attaches_before
                if attaches:
                    instr.count("trace_attach", attaches)
                reuses = self.stats.trace_reuses - reuses_before
                if reuses:
                    instr.count("trace_reuse", reuses)
            if dispatch_span is not None:
                # An abandoned generator leaves units open; error them so
                # the trace shows they never completed.
                for index in list(unit_meta):
                    _close_unit(index, status="error",
                                extra={"error": "abandoned"})
                dispatch_span.set_attribute("task_dispatch", planned_units)
                dispatch_span.set_attribute(
                    "task_chunk",
                    self.stats.chunks_dispatched - chunks_before)
                dispatch_span.set_attribute("chunk_size",
                                            chunk_units_dispatched)
                dispatch_span.set_attribute(
                    "batch_groups",
                    self.stats.batch_groups - groups_before)
                dispatch_span.set_attribute(
                    "batch_units",
                    self.stats.batch_units - batch_units_before)
                dispatch_span.set_attribute(
                    "trace_ship",
                    self.stats.traces_published - published_before)
                dispatch_span.set_attribute(
                    "trace_attach",
                    self.stats.trace_attaches - attaches_before)
                dispatch_span.set_attribute(
                    "trace_reuse",
                    self.stats.trace_reuses - reuses_before)
                dispatch_span.__exit__(None, None, None)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"ExecutionEngine(workers={self.workers}, "
                f"start_method={self.stats.start_method!r}, "
                f"resident_traces={self.resident_traces}, {state})")
