"""Batch simulation over trace suites.

The paper's evaluation methodology runs every predictor over whole suites
of traces and reports the slowest / average / fastest simulation time
(Table III).  This module is the harness for that: run a predictor factory
over many traces — serially or across processes — and aggregate timing
and MPKI distributions.

A *factory* (zero-argument callable returning a fresh
:class:`~repro.core.predictor.Predictor`) is used instead of a predictor
instance so every trace starts from cold state, exactly like launching a
fresh simulator binary per trace.

Two robustness/scale features beyond the paper:

* ``cache=`` plugs in a :class:`repro.cache.SimulationCache` (or just a
  directory path): traces whose results are already cached are served
  without simulating — cache hits bypass the process pool entirely and
  are excluded from :attr:`BatchResult.timing`.
* per-trace failures are wrapped into :class:`TraceFailure` records that
  name the offending trace; the rest of the suite always completes.  The
  default (``on_error="raise"``) then raises a :class:`SuiteError`
  carrying the partial results; ``on_error="collect"`` returns them in
  :attr:`BatchResult.failures` instead.

Observability: ``instrumentation=`` accepts :mod:`repro.telemetry`
phase timers, which then report where a suite's wall-clock went
(cache lookups vs. simulation) and how many traces hit the cache; a
finished :class:`BatchResult` can be turned into a provenance document
with :func:`repro.telemetry.suite_manifest`.
"""

from __future__ import annotations

import statistics
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Sequence, Union

from ..sbbt.trace import TraceData
from .errors import SimulationError
from .output import SimulationResult
from .plan import WorkPlan, execute_plan
from .predictor import Predictor
from .simulator import SimulationConfig, simulate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..cache import SimulationCache
    from ..telemetry.instrumentation import Instrumentation
    from .engine import ExecutionEngine

__all__ = [
    "TimingSummary",
    "BatchResult",
    "TraceFailure",
    "TraceSimulationError",
    "SuiteError",
    "run_suite",
]

PredictorFactory = Callable[[], Predictor]
TraceLike = Union[TraceData, str, Path]
CacheLike = Union["SimulationCache", str, Path, None]


@dataclass(frozen=True, slots=True)
class TimingSummary:
    """Slowest / average / fastest of a set of per-trace wall times.

    The exact aggregation Table III reports for each (simulator,
    predictor) pair.
    """

    slowest: float
    average: float
    fastest: float
    total: float

    @classmethod
    def from_times(cls, times: Sequence[float]) -> "TimingSummary":
        """Aggregate a non-empty sequence of wall-clock times."""
        if not times:
            raise ValueError("cannot summarize an empty set of times")
        return cls(
            slowest=max(times),
            average=statistics.fmean(times),
            fastest=min(times),
            total=sum(times),
        )

    @classmethod
    def zero(cls) -> "TimingSummary":
        """The all-zero summary (a suite served entirely from cache)."""
        return cls(slowest=0.0, average=0.0, fastest=0.0, total=0.0)


@dataclass(frozen=True, slots=True)
class TraceFailure:
    """One trace that could not be simulated.

    ``details`` carries the worker-side traceback text, so a failure in a
    child process is as debuggable as an inline one.
    """

    trace_name: str
    error: str
    details: str = ""

    def __str__(self) -> str:
        return f"{self.trace_name}: {self.error}"


class TraceSimulationError(SimulationError):
    """A single trace of a suite failed; names the trace, keeps the rest."""

    def __init__(self, failure: TraceFailure):
        super().__init__(str(failure))
        self.failure = failure


class SuiteError(SimulationError):
    """One or more traces of a suite failed (the rest completed).

    ``partial`` holds the :class:`BatchResult` of every trace that did
    succeed (already cached, if a cache was in use), so a long suite
    interrupted by one bad file loses nothing.
    """

    def __init__(self, failures: Sequence[TraceFailure],
                 partial: "BatchResult"):
        names = ", ".join(f.trace_name for f in failures)
        super().__init__(
            f"{len(failures)} of {len(failures) + len(partial.results)} "
            f"traces failed: {names}"
        )
        self.failures = list(failures)
        self.partial = partial


@dataclass(slots=True)
class BatchResult:
    """Results of one predictor over a suite of traces."""

    results: list[SimulationResult]
    failures: list[TraceFailure] = field(default_factory=list)

    @property
    def timing(self) -> TimingSummary:
        """Slowest/average/fastest simulation time across the suite.

        Cache hits are excluded — their stored times describe the run
        that populated the cache, not this one.  A suite answered
        entirely from cache — or one with no successful results at all
        (every trace failed) — reports :meth:`TimingSummary.zero`.
        """
        times = [r.simulation_time for r in self.results if not r.from_cache]
        if not times:
            return TimingSummary.zero()
        return TimingSummary.from_times(times)

    @property
    def cache_hits(self) -> int:
        """How many results were served from the cache."""
        return sum(1 for r in self.results if r.from_cache)

    @property
    def total_mispredictions(self) -> int:
        """Mispredictions summed over every trace."""
        return sum(r.mispredictions for r in self.results)

    @property
    def total_instructions(self) -> int:
        """Measured instructions summed over every trace."""
        return sum(r.simulation_instructions for r in self.results)

    def mean_mpki(self) -> float:
        """Arithmetic mean of per-trace MPKIs (the championship metric)."""
        if not self.results:
            raise ValueError("empty batch")
        return statistics.fmean(r.mpki for r in self.results)

    def aggregate_mpki(self) -> float:
        """MPKI over the pooled instruction stream of the whole suite."""
        instructions = self.total_instructions
        if instructions == 0:
            return 0.0
        return 1000.0 * self.total_mispredictions / instructions

    def by_trace(self) -> dict[str, SimulationResult]:
        """Results keyed by trace name."""
        return {r.trace_name: r for r in self.results}


def _run_one(factory: PredictorFactory, trace: TraceLike,
             config: SimulationConfig, name: str | None,
             probe: bool = False,
             predictor: Predictor | None = None,
             sim_engine: str = "scalar"
             ) -> SimulationResult | TraceFailure:
    """Simulate one trace with a freshly constructed predictor.

    Never raises: any exception (bad trace file, failing factory,
    predictor bug) is wrapped into a :class:`TraceFailure` naming the
    trace, so a process-pool worker reports the real problem instead of
    surfacing an opaque late exception — and the rest of the suite keeps
    going.

    ``probe=True`` builds a fresh :class:`repro.probe.PredictionProbe`
    in the worker — one per trace, so process-pool runs never share
    accumulators — and the report travels back on the (picklable)
    result's ``probe_report``.

    ``predictor`` optionally supplies a pre-built **cold** instance to
    use instead of calling ``factory()`` — the spec-derivation instance
    :func:`repro.core.predictor.derive_spec` had to construct anyway.
    Callers must never pass a trained predictor here.
    """
    try:
        run_probe = None
        if probe:
            from ..probe import PredictionProbe
            run_probe = PredictionProbe()
        return simulate(predictor if predictor is not None else factory(),
                        trace, config, trace_name=name, probe=run_probe,
                        engine=sim_engine)
    except Exception as exc:  # noqa: BLE001 - deliberate fault barrier
        return TraceFailure(
            trace_name=name if name is not None else str(trace),
            error=f"{type(exc).__name__}: {exc}",
            details=traceback.format_exc(),
        )


def _resolve_cache(cache: CacheLike) -> "SimulationCache | None":
    """Accept a cache object or a directory path."""
    if cache is None:
        return None
    if isinstance(cache, (str, Path)):
        # Imported here: repro.cache depends on repro.core, so a
        # module-level import would be circular.
        from ..cache import SimulationCache
        return SimulationCache(cache)
    return cache


def run_suite(factory: PredictorFactory, traces: Sequence[TraceLike],
              config: SimulationConfig | None = None, *,
              names: Sequence[str] | None = None,
              workers: int = 1,
              engine: "ExecutionEngine | None" = None,
              cache: CacheLike = None,
              on_error: str = "raise",
              instrumentation: "Instrumentation | None" = None,
              probe: bool = False,
              sim_engine: str = "scalar",
              chunk: int | str = "auto",
              batch: str | bool = "auto",
              tracer: "Any" = None,
              trace_parent: "Any" = None,
              ) -> BatchResult:
    """Run a fresh predictor over every trace of a suite.

    Parameters
    ----------
    factory:
        Zero-argument callable building a cold predictor.  Must be
        picklable when ``workers > 1`` (module-level function or class).
    traces:
        Paths to SBBT traces or in-memory :class:`TraceData` objects.
    names:
        Optional display names (defaults to paths / ``trace[i]``).
    workers:
        Process count.  ``1`` (default) runs inline, which is also the
        right mode for timing measurements — parallel workers contend for
        cores and distort per-trace times.
    engine:
        A :class:`repro.core.engine.ExecutionEngine` to dispatch through
        instead of a throwaway pool.  The engine's persistent workers
        and resident shared-memory traces amortize pool startup and
        trace shipping across *many* ``run_suite`` calls (whole sweeps
        and searches); when given, it takes precedence over ``workers``
        (the engine was built with its own worker count).  The caller
        owns the engine's lifecycle.
    cache:
        A :class:`repro.cache.SimulationCache`, a directory path to open
        one in, or ``None`` (default, no caching).  Cached traces are
        not simulated at all — no predictor construction, no worker
        submission — and new results are stored for next time.
    on_error:
        ``"raise"`` (default): if any trace fails, finish the suite, then
        raise :class:`SuiteError` naming the failures and carrying the
        partial :class:`BatchResult`.  ``"collect"``: return normally
        with the failures recorded in :attr:`BatchResult.failures`.
    instrumentation:
        Optional :mod:`repro.telemetry` phase timers: records a
        "cache_lookup" phase around the cache scan, a "simulate" phase
        around the actual simulations, and "cache_hit" / "cache_miss" /
        "trace_failure" counters.  Suite-level only — per-trace phase
        detail would distort the Table III timing methodology when
        workers contend for cores.
    probe:
        ``True`` attaches a fresh :class:`repro.probe.PredictionProbe`
        to every *simulated* trace (cache hits carry no probe data) and
        leaves each report on its result's ``probe_report``.  Off by
        default; it perturbs simulation time, so leave it off for
        Table III-style timing runs.
    sim_engine:
        Per-trace simulation engine, forwarded to
        :func:`repro.core.simulator.simulate`'s ``engine`` parameter
        (``"scalar"``, ``"vectorized"`` or ``"auto"``).  Named
        ``sim_engine`` because ``engine`` already selects the execution
        engine above.  Cache keys are engine-independent — both engines
        produce identical results, so they share entries.
    chunk:
        Engine-path dispatch granularity, forwarded to
        :meth:`~repro.core.engine.ExecutionEngine.run_plan`: ``"auto"``
        (default) packs several traces per worker round-trip sized by
        the measured per-trace cost; an integer forces that chunk size.
        Ignored by the serial and throwaway-pool paths.
    batch:
        Config-batched evaluation, forwarded to
        :func:`~repro.core.plan.execute_plan`: ``"auto"`` (default)
        groups cache-missed vectorized-capable units that share a trace
        and evaluates each group in one stacked numpy pass (a suite of
        one factory over distinct traces forms no groups — batching
        pays off when many configs share a trace, i.e. sweeps and
        searches); ``"off"`` forces per-unit evaluation.  Results are
        bit-identical either way.
    tracer:
        Optional :mod:`repro.tracing` tracer (with ``trace_parent``, the
        context to nest under), forwarded to
        :func:`~repro.core.plan.execute_plan` — the suite's cache scan,
        simulations and engine dispatch become one span tree.
    """
    if on_error not in ("raise", "collect"):
        raise ValueError(f"on_error must be 'raise' or 'collect', got {on_error!r}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")

    # Lower into the WorkPlan IR and run it through the shared execution
    # funnel (cache scan + serial / pool / engine dispatch) — the same
    # path sweeps, searches, the serve daemon and the CLI use.
    plan = WorkPlan.for_suite(factory, traces, config, names=names,
                              probe=probe, sim_engine=sim_engine)
    outcomes = execute_plan(plan, workers=workers, engine=engine,
                            cache=cache, instrumentation=instrumentation,
                            chunk=chunk, batch=batch, tracer=tracer,
                            trace_parent=trace_parent)

    results = [s for s in outcomes if isinstance(s, SimulationResult)]
    failures = [s for s in outcomes if isinstance(s, TraceFailure)]
    batch = BatchResult(results=results, failures=failures)
    if failures and on_error == "raise":
        raise SuiteError(failures, batch)
    return batch
