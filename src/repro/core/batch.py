"""Batch simulation over trace suites.

The paper's evaluation methodology runs every predictor over whole suites
of traces and reports the slowest / average / fastest simulation time
(Table III).  This module is the harness for that: run a predictor factory
over many traces — serially or across processes — and aggregate timing
and MPKI distributions.

A *factory* (zero-argument callable returning a fresh
:class:`~repro.core.predictor.Predictor`) is used instead of a predictor
instance so every trace starts from cold state, exactly like launching a
fresh simulator binary per trace.
"""

from __future__ import annotations

import statistics
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence, Union

from ..sbbt.trace import TraceData
from .output import SimulationResult
from .predictor import Predictor
from .simulator import SimulationConfig, simulate

__all__ = ["TimingSummary", "BatchResult", "run_suite"]

PredictorFactory = Callable[[], Predictor]
TraceLike = Union[TraceData, str, Path]


@dataclass(frozen=True, slots=True)
class TimingSummary:
    """Slowest / average / fastest of a set of per-trace wall times.

    The exact aggregation Table III reports for each (simulator,
    predictor) pair.
    """

    slowest: float
    average: float
    fastest: float
    total: float

    @classmethod
    def from_times(cls, times: Sequence[float]) -> "TimingSummary":
        """Aggregate a non-empty sequence of wall-clock times."""
        if not times:
            raise ValueError("cannot summarize an empty set of times")
        return cls(
            slowest=max(times),
            average=statistics.fmean(times),
            fastest=min(times),
            total=sum(times),
        )


@dataclass(slots=True)
class BatchResult:
    """Results of one predictor over a suite of traces."""

    results: list[SimulationResult]

    @property
    def timing(self) -> TimingSummary:
        """Slowest/average/fastest simulation time across the suite."""
        return TimingSummary.from_times(
            [r.simulation_time for r in self.results]
        )

    @property
    def total_mispredictions(self) -> int:
        """Mispredictions summed over every trace."""
        return sum(r.mispredictions for r in self.results)

    @property
    def total_instructions(self) -> int:
        """Measured instructions summed over every trace."""
        return sum(r.simulation_instructions for r in self.results)

    def mean_mpki(self) -> float:
        """Arithmetic mean of per-trace MPKIs (the championship metric)."""
        if not self.results:
            raise ValueError("empty batch")
        return statistics.fmean(r.mpki for r in self.results)

    def aggregate_mpki(self) -> float:
        """MPKI over the pooled instruction stream of the whole suite."""
        instructions = self.total_instructions
        if instructions == 0:
            return 0.0
        return 1000.0 * self.total_mispredictions / instructions

    def by_trace(self) -> dict[str, SimulationResult]:
        """Results keyed by trace name."""
        return {r.trace_name: r for r in self.results}


def _run_one(factory: PredictorFactory, trace: TraceLike,
             config: SimulationConfig, name: str | None) -> SimulationResult:
    """Simulate one trace with a freshly constructed predictor."""
    return simulate(factory(), trace, config, trace_name=name)


def run_suite(factory: PredictorFactory, traces: Sequence[TraceLike],
              config: SimulationConfig | None = None, *,
              names: Sequence[str] | None = None,
              workers: int = 1) -> BatchResult:
    """Run a fresh predictor over every trace of a suite.

    Parameters
    ----------
    factory:
        Zero-argument callable building a cold predictor.  Must be
        picklable when ``workers > 1`` (module-level function or class).
    traces:
        Paths to SBBT traces or in-memory :class:`TraceData` objects.
    names:
        Optional display names (defaults to paths / ``trace[i]``).
    workers:
        Process count.  ``1`` (default) runs inline, which is also the
        right mode for timing measurements — parallel workers contend for
        cores and distort per-trace times.
    """
    config = config or SimulationConfig()
    if names is not None and len(names) != len(traces):
        raise ValueError("names and traces must have the same length")
    resolved_names = list(names) if names is not None else [
        str(t) if not isinstance(t, TraceData) else f"trace[{i}]"
        for i, t in enumerate(traces)
    ]
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(traces) <= 1:
        results = [
            _run_one(factory, trace, config, name)
            for trace, name in zip(traces, resolved_names)
        ]
        return BatchResult(results=results)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_run_one, factory, trace, config, name)
            for trace, name in zip(traces, resolved_names)
        ]
        return BatchResult(results=[f.result() for f in futures])
