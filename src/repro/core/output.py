"""Simulation results and their JSON representation (paper Section IV-E).

MBPlib returns a JSON object whose schema is shown in the paper's
Listing 1: a ``metadata`` section (simulator, trace, instruction counts
and the predictor's self-description), a ``metrics`` section (MPKI,
mispredictions, accuracy, most-failed count, simulation time), a
``predictor_statistics`` section for user counters and a ``most_failed``
list.  :meth:`SimulationResult.to_json` reproduces that schema.

One deliberate fidelity deviation: the paper's listing spells a key
``num_conditonal_branches`` (sic); we emit the corrected
``num_conditional_branches`` (documented in DESIGN.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from .metrics import MostFailedEntry, accuracy, mpki

__all__ = ["SIMULATOR_NAME", "SIMULATOR_VERSION", "SimulationResult"]

#: Identifies this engine in the output's ``metadata.simulator`` field.
SIMULATOR_NAME = "repro MBPlib-style standard simulator"

#: Library version stamped into results.
SIMULATOR_VERSION = "v1.0.0"


@dataclass(slots=True)
class SimulationResult:
    """Everything a standard simulation produces.

    Attributes mirror the JSON sections; see :meth:`to_json`.
    """

    trace_name: str
    warmup_instructions: int
    simulation_instructions: int
    exhausted_trace: bool
    num_branch_instructions: int
    num_conditional_branches: int
    mispredictions: int
    simulation_time: float
    predictor_metadata: dict[str, Any]
    predictor_statistics: dict[str, Any] = field(default_factory=dict)
    most_failed: list[MostFailedEntry] = field(default_factory=list)
    simulator_name: str = SIMULATOR_NAME
    #: True when this result was served by a :mod:`repro.cache` lookup
    #: instead of a fresh simulation.  Deliberately *not* part of the
    #: JSON schema: a cached result serializes identically to the run
    #: that produced it.
    from_cache: bool = field(default=False, compare=False)
    #: Phase-timing snapshot (phase name -> seconds) attached by the
    #: simulator when a :class:`repro.telemetry.PhaseTimers` was passed.
    #: Like ``from_cache`` this is in-memory provenance, *not* part of
    #: the Listing-1 JSON schema — results serialize identically with or
    #: without instrumentation, so telemetry can never split the
    #: content-addressed cache.  Run manifests
    #: (:func:`repro.telemetry.build_manifest`) pick it up by default.
    phases: dict[str, float] | None = field(default=None, compare=False)
    #: Component-attribution report attached by the simulator when a
    #: :class:`repro.probe.PredictionProbe` was passed.  Same rule as
    #: ``phases``: in-memory provenance only, never serialized into the
    #: Listing-1 JSON, so enabling probes cannot perturb cache keys or
    #: golden outputs.  Run manifests pick it up by default.
    probe_report: dict[str, Any] | None = field(default=None, compare=False)

    @property
    def mpki(self) -> float:
        """Mispredictions per kilo-instruction over the measured region."""
        return mpki(self.mispredictions, self.simulation_instructions)

    @property
    def accuracy(self) -> float:
        """Fraction of measured conditional branches predicted correctly."""
        return accuracy(self.mispredictions, self.num_conditional_branches)

    @property
    def num_most_failed_branches(self) -> int:
        """Minimum branches that account for half the mispredictions."""
        return len(self.most_failed)

    def to_json(self) -> dict[str, Any]:
        """Assemble the Listing-1 JSON object."""
        return {
            "metadata": {
                "simulator": self.simulator_name,
                "version": SIMULATOR_VERSION,
                "trace": self.trace_name,
                "warmup_instr": self.warmup_instructions,
                "simulation_instr": self.simulation_instructions,
                "exhausted_trace": self.exhausted_trace,
                "num_conditional_branches": self.num_conditional_branches,
                "num_branch_instructions": self.num_branch_instructions,
                "predictor": self.predictor_metadata,
            },
            "metrics": {
                "mpki": self.mpki,
                "mispredictions": self.mispredictions,
                "accuracy": self.accuracy,
                "num_most_failed_branches": self.num_most_failed_branches,
                "simulation_time": self.simulation_time,
            },
            "predictor_statistics": self.predictor_statistics,
            "most_failed": [
                {
                    "ip": entry.ip,
                    "occurrences": entry.occurrences,
                    "mispredictions": entry.mispredictions,
                    "mpki": entry.mpki,
                    "accuracy": entry.accuracy,
                }
                for entry in self.most_failed
            ],
        }

    def to_json_string(self, *, indent: int | None = 2) -> str:
        """The JSON object serialized to text."""
        return json.dumps(self.to_json(), indent=indent)

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "SimulationResult":
        """Rebuild a result from its :meth:`to_json` representation.

        The inverse used by the simulation cache; round-trips exactly:
        ``SimulationResult.from_json(r.to_json()).to_json() == r.to_json()``.
        Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
        input — callers that must never fail (the cache read path) catch
        those and treat the entry as a miss.
        """
        metadata = data["metadata"]
        metrics = data["metrics"]
        return cls(
            trace_name=str(metadata["trace"]),
            warmup_instructions=int(metadata["warmup_instr"]),
            simulation_instructions=int(metadata["simulation_instr"]),
            exhausted_trace=bool(metadata["exhausted_trace"]),
            num_branch_instructions=int(metadata["num_branch_instructions"]),
            num_conditional_branches=int(metadata["num_conditional_branches"]),
            mispredictions=int(metrics["mispredictions"]),
            simulation_time=float(metrics["simulation_time"]),
            predictor_metadata=dict(metadata["predictor"]),
            predictor_statistics=dict(data.get("predictor_statistics", {})),
            most_failed=[
                MostFailedEntry(
                    ip=int(entry["ip"]),
                    occurrences=int(entry["occurrences"]),
                    mispredictions=int(entry["mispredictions"]),
                    mpki=float(entry["mpki"]),
                    accuracy=float(entry["accuracy"]),
                )
                for entry in data.get("most_failed", [])
            ],
            simulator_name=str(metadata["simulator"]),
        )

    def summary(self) -> str:
        """A one-line human summary for interactive use."""
        return (
            f"{self.trace_name}: mpki={self.mpki:.4f} "
            f"acc={self.accuracy:.4%} misp={self.mispredictions} "
            f"({self.predictor_metadata.get('name', '?')}, "
            f"{self.simulation_time:.3f}s)"
        )
