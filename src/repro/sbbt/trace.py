"""In-memory branch traces as numpy structure-of-arrays.

:class:`TraceData` is the bulk representation every fast code path works
on: five parallel numpy arrays (ip, target, opcode, outcome, gap) plus the
header counts.  This is this reproduction's analogue of MBPlib's
"stream-like format that avoids the cache misses of accessing a big hashed
structure": branch records are contiguous, decoded in one vectorized pass,
and iterated without per-record parsing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core.branch import Branch, Opcode
from ..core.errors import TraceValidationError
from .packet import MAX_GAP, SbbtPacket

__all__ = ["TraceData"]


@dataclass(slots=True)
class TraceData:
    """A decoded branch trace.

    Attributes
    ----------
    ips, targets:
        ``uint64`` virtual addresses.
    opcodes:
        ``uint8`` 4-bit SBBT opcodes.
    taken:
        ``bool`` resolved outcomes.
    gaps:
        ``uint16`` instructions executed since the previous branch
        (not counting either branch).
    num_instructions:
        Total instructions (branch and non-branch) covered by the trace;
        at least ``len(trace) + gaps.sum()``.
    """

    ips: np.ndarray
    targets: np.ndarray
    opcodes: np.ndarray
    taken: np.ndarray
    gaps: np.ndarray
    num_instructions: int

    def __post_init__(self) -> None:
        n = len(self.ips)
        for name in ("targets", "opcodes", "taken", "gaps"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name!r} has mismatched length")
        self.ips = np.asarray(self.ips, dtype=np.uint64)
        self.targets = np.asarray(self.targets, dtype=np.uint64)
        self.opcodes = np.asarray(self.opcodes, dtype=np.uint8)
        self.taken = np.asarray(self.taken, dtype=bool)
        self.gaps = np.asarray(self.gaps, dtype=np.uint16)
        if n and int(self.gaps.max(initial=0)) > MAX_GAP:
            raise TraceValidationError(
                f"gap exceeds the 12-bit maximum of {MAX_GAP}"
            )
        minimum = n + int(self.gaps.sum(dtype=np.int64))
        if self.num_instructions < minimum:
            raise ValueError(
                f"num_instructions={self.num_instructions} is below the "
                f"{minimum} instructions implied by the packets"
            )

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------

    @classmethod
    def from_packets(cls, packets: "list[SbbtPacket]",
                     num_instructions: int | None = None) -> "TraceData":
        """Build from a list of decoded packets.

        When ``num_instructions`` is omitted it is set to the minimum
        consistent value (every instruction accounted for by gaps plus the
        branches themselves).
        """
        n = len(packets)
        ips = np.fromiter((p.branch.ip for p in packets), np.uint64, n)
        targets = np.fromiter((p.branch.target for p in packets), np.uint64, n)
        opcodes = np.fromiter((int(p.branch.opcode) for p in packets), np.uint8, n)
        taken = np.fromiter((p.branch.taken for p in packets), bool, n)
        gaps = np.fromiter((p.gap for p in packets), np.uint16, n)
        if num_instructions is None:
            num_instructions = n + int(gaps.sum(dtype=np.int64))
        return cls(ips, targets, opcodes, taken, gaps, num_instructions)

    @classmethod
    def empty(cls) -> "TraceData":
        """A zero-branch, zero-instruction trace."""
        zero = np.zeros(0, dtype=np.uint64)
        return cls(zero, zero.copy(), np.zeros(0, np.uint8),
                   np.zeros(0, bool), np.zeros(0, np.uint16), 0)

    # ------------------------------------------------------------------
    # Views.
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ips)

    @property
    def num_branches(self) -> int:
        """Number of branch records."""
        return len(self.ips)

    def branch(self, index: int) -> Branch:
        """Materialize record ``index`` as a :class:`Branch`."""
        return Branch(
            ip=int(self.ips[index]),
            target=int(self.targets[index]),
            opcode=Opcode(int(self.opcodes[index])),
            taken=bool(self.taken[index]),
        )

    def packet(self, index: int) -> SbbtPacket:
        """Materialize record ``index`` as an :class:`SbbtPacket`."""
        return SbbtPacket(branch=self.branch(index), gap=int(self.gaps[index]))

    def iter_branches(self) -> Iterator[tuple[Branch, int]]:
        """Yield ``(branch, gap)`` pairs without building a packet list.

        The scalar simulator's hot loop.  Columns are converted to plain
        Python lists in one C-level pass (``tolist``) so the per-branch
        work is a tuple unpack and one ``Branch`` construction — the
        Python analogue of SBBT's "stream format, no hashed metadata
        lookups" property.
        """
        opcode_cache = [Opcode(v) if (v >> 2) != 0b11 else None for v in range(16)]
        make = Branch
        for ip, target, opcode_value, taken, gap in zip(
                self.ips.tolist(), self.targets.tolist(),
                self.opcodes.tolist(), self.taken.tolist(),
                self.gaps.tolist()):
            opcode = opcode_cache[opcode_value]
            if opcode is None:  # pragma: no cover - prevented by decoding
                raise TraceValidationError("reserved opcode in trace data")
            yield make(ip, target, opcode, taken), gap

    # ------------------------------------------------------------------
    # Derived columns.
    # ------------------------------------------------------------------

    def conditional_mask(self) -> np.ndarray:
        """Boolean mask of conditional branches (opcode bit 0)."""
        return (self.opcodes & 1).astype(bool)

    @property
    def num_conditional_branches(self) -> int:
        """Number of conditional branches in the trace."""
        return int(self.conditional_mask().sum())

    def instruction_numbers(self) -> np.ndarray:
        """1-based instruction number of each branch.

        Branch ``i`` executes as instruction ``sum_{j<=i}(gap_j + 1)`` of
        the program — the quantity that makes warm-up boundaries exact.
        """
        return np.cumsum(self.gaps.astype(np.int64) + 1)

    def slice(self, start: int, stop: int) -> "TraceData":
        """A sub-trace of branch records ``[start, stop)``.

        The sliced trace's instruction count covers exactly its own
        packets (plus nothing trailing).
        """
        gaps = self.gaps[start:stop]
        count = len(gaps) + int(gaps.sum(dtype=np.int64))
        return TraceData(
            self.ips[start:stop].copy(), self.targets[start:stop].copy(),
            self.opcodes[start:stop].copy(), self.taken[start:stop].copy(),
            gaps.copy(), count,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceData):
            return NotImplemented
        return (
            self.num_instructions == other.num_instructions
            and np.array_equal(self.ips, other.ips)
            and np.array_equal(self.targets, other.targets)
            and np.array_equal(self.opcodes, other.opcodes)
            and np.array_equal(self.taken, other.taken)
            and np.array_equal(self.gaps, other.gaps)
        )

    def __repr__(self) -> str:
        return (
            f"TraceData(num_branches={len(self)}, "
            f"num_instructions={self.num_instructions})"
        )
