"""The SBBT branch packet (paper Fig. 2).

Each packet spans 128 bits, divided into two 64-bit little-endian blocks:

* **Block 1** — branch instruction address, opcode and outcome.
* **Block 2** — branch target address and the number of (non-branch)
  instructions executed since the previous branch.

Addresses occupy the 52 *most significant* bits of each block; the
simulator recovers the 64-bit address with an **arithmetic** 12-bit shift,
which sign-extends bit 51.  That covers both x86-64's 48-bit and
ARMv8-A LVA's 52-bit canonical virtual addresses, including the
kernel-half addresses whose upper bits are all ones.

The 12 low metadata bits are laid out as follows (the paper fixes the
*fields* but not their bit order; this reproduction defines it and the
writer/reader pair is the normative implementation):

=====  ===========  ==================================================
Bits   Block 1      Block 2
=====  ===========  ==================================================
0-3    opcode       ┐
4-10   reserved(0)  ├ instructions executed on the path to this branch
11     outcome      ┘ (12-bit unsigned, at most 4095)
=====  ===========  ==================================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..core.branch import Branch, Opcode
from ..core.errors import TraceFormatError, TraceValidationError
from ..utils.bits import mask, sign_extend

__all__ = [
    "PACKET_SIZE",
    "MAX_GAP",
    "SbbtPacket",
    "encode_address",
    "decode_address",
    "is_encodable_address",
]

#: On-disk size of one packet in bytes.
PACKET_SIZE = 16

#: Maximum number of instructions between two consecutive branches (the
#: 12-bit gap field).  The paper verifies no CBP5/DPC3 trace exceeds it.
MAX_GAP = (1 << 12) - 1

_ADDR_WIDTH = 52
_ADDR_SHIFT = 12
_META_MASK = mask(_ADDR_SHIFT)
_OUTCOME_BIT = 1 << 11
_U64 = (1 << 64) - 1

_STRUCT = struct.Struct("<QQ")
assert _STRUCT.size == PACKET_SIZE


def is_encodable_address(address: int) -> bool:
    """Whether ``address`` survives the 52-bit sign-extending round trip.

    Canonical addresses have bits 63..51 all equal; anything else cannot
    be represented in the packet's 52-bit field.
    """
    if not 0 <= address <= _U64:
        return False
    return (sign_extend(address & mask(_ADDR_WIDTH), _ADDR_WIDTH) & _U64) == address


def encode_address(address: int) -> int:
    """Place ``address`` into the 52 most-significant bits of a block."""
    if not is_encodable_address(address):
        raise TraceValidationError(
            f"address {address:#x} is not canonical for 52-bit encoding"
        )
    return (address & mask(_ADDR_WIDTH)) << _ADDR_SHIFT


def decode_address(block: int) -> int:
    """Recover the 64-bit address: arithmetic right shift by 12 bits."""
    return sign_extend(block >> _ADDR_SHIFT, _ADDR_WIDTH) & _U64


@dataclass(frozen=True, slots=True)
class SbbtPacket:
    """One decoded SBBT packet: a branch plus its instruction gap.

    Attributes
    ----------
    branch:
        The branch this packet describes.
    gap:
        Instructions executed since the previous branch, not counting
        either branch (0..4095).  Storing the gap lets a simulator know
        the instruction number of every branch, which is what makes
        warm-up regions possible.
    """

    branch: Branch
    gap: int

    def __post_init__(self) -> None:
        if not 0 <= self.gap <= MAX_GAP:
            raise TraceValidationError(
                f"instruction gap {self.gap} does not fit in 12 bits "
                f"(max {MAX_GAP})"
            )

    def encode(self) -> bytes:
        """Serialize to the 16-byte on-disk representation.

        Raises :class:`~repro.core.errors.TraceValidationError` when the
        branch violates one of the format's validity rules (see
        :mod:`repro.sbbt.validate`).
        """
        from .validate import validate_branch  # local import avoids a cycle

        validate_branch(self.branch)
        b = self.branch
        block1 = encode_address(b.ip) | int(b.opcode)
        if b.taken:
            block1 |= _OUTCOME_BIT
        block2 = encode_address(b.target) | self.gap
        return _STRUCT.pack(block1, block2)

    @classmethod
    def decode(cls, payload: bytes, *, validate: bool = True) -> "SbbtPacket":
        """Parse one 16-byte packet.

        With ``validate=True`` (the default) the semantic rules of the
        format are enforced; readers that want raw access (e.g. trace
        repair tools) can disable it.
        """
        if len(payload) < PACKET_SIZE:
            raise TraceFormatError(
                f"truncated SBBT packet: got {len(payload)} bytes, "
                f"need {PACKET_SIZE}"
            )
        block1, block2 = _STRUCT.unpack(payload[:PACKET_SIZE])
        reserved = (block1 >> 4) & mask(7)
        if reserved:
            raise TraceFormatError(
                f"reserved bits must be zero in SBBT 1.0, got {reserved:#x}"
            )
        try:
            opcode = Opcode(block1 & mask(4))
        except ValueError as exc:
            raise TraceFormatError(str(exc)) from exc
        branch = Branch(
            ip=decode_address(block1),
            target=decode_address(block2),
            opcode=opcode,
            taken=bool(block1 & _OUTCOME_BIT),
        )
        packet = cls(branch=branch, gap=block2 & _META_MASK)
        if validate:
            from .validate import validate_branch

            validate_branch(branch)
        return packet
