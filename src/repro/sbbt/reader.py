"""SBBT trace reader.

Two read paths mirror the writer:

* :func:`read_trace` — bulk: decompress, then decode every 128-bit packet
  in one vectorized numpy pass into a
  :class:`~repro.sbbt.trace.TraceData`.  This is the fast path the
  simulators use and the reproduction's stand-in for MBPlib's stream
  parsing (no per-record text parsing, no graph lookups).
* :class:`SbbtReader` — streaming: yields one
  :class:`~repro.sbbt.packet.SbbtPacket` at a time with bounded memory,
  for tools that inspect or filter huge traces.
"""

from __future__ import annotations

import os
from pathlib import Path
from types import TracebackType
from typing import Iterator

import numpy as np

from ..core.errors import TraceFormatError
from .compression import open_compressed
from .header import HEADER_SIZE, SbbtHeader
from .packet import PACKET_SIZE, SbbtPacket
from .trace import TraceData

__all__ = ["read_trace", "decode_payload", "SbbtReader"]

_META_MASK = np.uint64((1 << 12) - 1)
_RESERVED_MASK = np.uint64(0b0111_1111_0000)
_OPCODE_MASK = np.uint64(0xF)
_OUTCOME_SHIFT = np.uint64(11)
_ADDR_SHIFT = 12


def decode_payload(payload: bytes, *, validate: bool = True) -> TraceData:
    """Decode a full SBBT byte payload (header + packets) into arrays.

    With ``validate=True`` the reserved bits, opcode range and the two
    semantic rules of the format are checked on whole columns.
    """
    header = SbbtHeader.decode(payload)
    body = payload[HEADER_SIZE:]
    expected = header.num_branches * PACKET_SIZE
    if len(body) < expected:
        raise TraceFormatError(
            f"trace body truncated: header promises {header.num_branches} "
            f"packets ({expected} bytes) but only {len(body)} bytes follow"
        )
    if len(body) > expected:
        raise TraceFormatError(
            f"{len(body) - expected} trailing bytes after the last packet"
        )
    blocks = np.frombuffer(body, dtype="<u8").reshape(-1, 2)
    # numpy may return a big-endian-unfriendly view on exotic platforms;
    # ascontiguousarray also detaches us from the immutable bytes buffer.
    blocks = np.ascontiguousarray(blocks).view(np.uint64)
    block1 = blocks[:, 0]
    block2 = blocks[:, 1]

    opcodes = (block1 & _OPCODE_MASK).astype(np.uint8)
    taken = ((block1 >> _OUTCOME_SHIFT) & np.uint64(1)).astype(bool)
    gaps = (block2 & _META_MASK).astype(np.uint16)
    ips = (block1.view(np.int64) >> _ADDR_SHIFT).view(np.uint64)
    targets = (block2.view(np.int64) >> _ADDR_SHIFT).view(np.uint64)

    if validate:
        _validate_columns(block1, opcodes, taken, targets)

    try:
        return TraceData(
            ips=ips, targets=targets, opcodes=opcodes, taken=taken,
            gaps=gaps, num_instructions=header.num_instructions,
        )
    except ValueError as exc:
        # e.g. the header's instruction count is below what the packet
        # gaps imply — a malformed trace, not a programming error.
        raise TraceFormatError(str(exc)) from exc


def _validate_columns(block1: np.ndarray, opcodes: np.ndarray,
                      taken: np.ndarray, targets: np.ndarray) -> None:
    """Column-wise enforcement of the SBBT 1.0 well-formedness rules."""
    bad = (block1 & _RESERVED_MASK) != 0
    if bad.any():
        index = int(np.flatnonzero(bad)[0])
        raise TraceFormatError(
            f"packet {index}: reserved bits must be zero in SBBT 1.0"
        )
    bad = (opcodes >> 2) == 0b11
    if bad.any():
        index = int(np.flatnonzero(bad)[0])
        raise TraceFormatError(
            f"packet {index}: opcode uses the reserved base type 0b11"
        )
    conditional = (opcodes & 1).astype(bool)
    indirect = (opcodes & 2).astype(bool)
    bad = ~conditional & ~taken
    if bad.any():
        index = int(np.flatnonzero(bad)[0])
        raise TraceFormatError(
            f"packet {index}: unconditional branch marked not-taken (rule 1)"
        )
    bad = conditional & indirect & ~taken & (targets != 0)
    if bad.any():
        index = int(np.flatnonzero(bad)[0])
        raise TraceFormatError(
            f"packet {index}: not-taken conditional-indirect branch with "
            "non-null target (rule 2)"
        )


def read_trace(path: str | os.PathLike, *, validate: bool = True) -> TraceData:
    """Read, decompress and bulk-decode the SBBT trace at ``path``."""
    with open_compressed(path, "rb") as stream:
        payload = stream.read()
    try:
        return decode_payload(payload, validate=validate)
    except TraceFormatError as exc:
        raise TraceFormatError(f"{Path(path)}: {exc}") from exc


class SbbtReader:
    """Streaming SBBT reader (context manager, iterator of packets).

    Reads the header eagerly; packets are decoded in chunks of
    ``buffer_packets`` so memory stays bounded regardless of trace length.
    """

    def __init__(self, path: str | os.PathLike, *, validate: bool = True,
                 buffer_packets: int = 4096):
        if buffer_packets < 1:
            raise ValueError("buffer_packets must be >= 1")
        self._path = Path(path)
        self._validate = validate
        self._buffer_bytes = buffer_packets * PACKET_SIZE
        self._stream = open_compressed(path, "rb")
        try:
            self.header = SbbtHeader.read_from(self._stream)
        except TraceFormatError:
            self._stream.close()
            raise
        self._packets_read = 0

    @property
    def packets_read(self) -> int:
        """Number of packets yielded so far."""
        return self._packets_read

    def __iter__(self) -> Iterator[SbbtPacket]:
        remaining = self.header.num_branches
        pending = b""
        while remaining > 0:
            chunk = self._stream.read(self._buffer_bytes)
            if not chunk:
                raise TraceFormatError(
                    f"{self._path}: trace body truncated with "
                    f"{remaining} packets still promised by the header"
                )
            pending += chunk
            usable = len(pending) - (len(pending) % PACKET_SIZE)
            for offset in range(0, usable, PACKET_SIZE):
                if remaining == 0:
                    raise TraceFormatError(
                        f"{self._path}: trailing bytes after the last packet"
                    )
                packet = SbbtPacket.decode(
                    pending[offset:offset + PACKET_SIZE],
                    validate=self._validate,
                )
                self._packets_read += 1
                remaining -= 1
                yield packet
            pending = pending[usable:]
        if pending or self._stream.read(1):
            raise TraceFormatError(
                f"{self._path}: trailing bytes after the last packet"
            )

    def close(self) -> None:
        """Release the underlying stream."""
        self._stream.close()

    def __enter__(self) -> "SbbtReader":
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None, tb: TracebackType | None) -> None:
        self.close()
