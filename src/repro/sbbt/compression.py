"""Transparent trace (de)compression.

It is common practice to distribute traces compressed and let the
simulator decompress them on the fly (paper Section IV).  MBPlib supports
xz, gzip, lz4 and zstd and ships its traces in zstd level 22.

This reproduction supports every codec available in the Python standard
library — gzip, bzip2 and xz/LZMA — plus zstandard *if* a ``zstandard``
module happens to be installed.  Since zstd is not available offline, the
role of "modern high-ratio codec" in the Table I / Table IV experiments is
played by **xz at preset 9**, and that substitution is recorded in
DESIGN.md.

The codec is chosen from the file suffix, exactly like MBPlib does:
``trace.sbbt.zst`` → zstd, ``trace.sbbt.xz`` → xz, bare ``trace.sbbt`` →
no compression.
"""

from __future__ import annotations

import bz2
import gzip
import lzma
from pathlib import Path
from typing import BinaryIO

from ..core.errors import TraceFormatError

__all__ = [
    "CODEC_SUFFIXES",
    "BEST_CODEC_SUFFIX",
    "available_codecs",
    "codec_for_path",
    "open_compressed",
]

try:  # pragma: no cover - exercised only where zstandard is installed
    import zstandard as _zstd
except ImportError:  # pragma: no cover
    _zstd = None

#: Suffix → codec name for every codec this module knows about.
CODEC_SUFFIXES = {
    ".gz": "gzip",
    ".bz2": "bzip2",
    ".xz": "xz",
    ".zst": "zstd",
}

#: The best-ratio codec available offline; stands in for MBPlib's zstd -22.
BEST_CODEC_SUFFIX = ".xz"

#: Compression levels used when writing, tuned like the paper: the maximum
#: ratio of the chosen codec ("we use the biggest compression ratio
#: available").
_WRITE_LEVELS = {"gzip": 9, "bzip2": 9, "xz": 9, "zstd": 19}


def available_codecs() -> tuple[str, ...]:
    """Names of codecs usable in this environment."""
    codecs = ["gzip", "bzip2", "xz"]
    if _zstd is not None:  # pragma: no cover
        codecs.append("zstd")
    return tuple(codecs)


def codec_for_path(path: str | Path) -> str | None:
    """The codec implied by ``path``'s suffix, or ``None`` for raw files."""
    suffix = Path(path).suffix.lower()
    return CODEC_SUFFIXES.get(suffix)


def open_compressed(path: str | Path, mode: str = "rb") -> BinaryIO:
    """Open ``path`` with transparent (de)compression based on its suffix.

    ``mode`` must be ``"rb"`` or ``"wb"``.  Raises
    :class:`~repro.core.errors.TraceFormatError` when the suffix names a
    codec that is not available in this environment.
    """
    if mode not in ("rb", "wb"):
        raise ValueError(f"mode must be 'rb' or 'wb', got {mode!r}")
    codec = codec_for_path(path)
    path = Path(path)
    if codec is None:
        return open(path, mode)
    if codec == "gzip":
        level = _WRITE_LEVELS["gzip"] if mode == "wb" else 9
        return gzip.open(path, mode, compresslevel=level)
    if codec == "bzip2":
        return bz2.open(path, mode, compresslevel=_WRITE_LEVELS["bzip2"])
    if codec == "xz":
        if mode == "wb":
            return lzma.open(path, mode, preset=_WRITE_LEVELS["xz"])
        return lzma.open(path, mode)
    if codec == "zstd":
        if _zstd is None:
            raise TraceFormatError(
                f"{path} is zstd-compressed but the 'zstandard' module is "
                f"not installed; recompress with one of {available_codecs()}"
            )
        if mode == "rb":  # pragma: no cover
            return _zstd.ZstdDecompressor().stream_reader(open(path, "rb"))
        cctx = _zstd.ZstdCompressor(level=_WRITE_LEVELS["zstd"])  # pragma: no cover
        return cctx.stream_writer(open(path, "wb"))  # pragma: no cover
    raise TraceFormatError(f"unknown codec {codec!r} for {path}")  # pragma: no cover


def read_all(path: str | Path) -> bytes:
    """Read and decompress the whole file at ``path``."""
    with open_compressed(path, "rb") as stream:
        return stream.read()


def write_all(path: str | Path, payload: bytes) -> int:
    """Compress and write ``payload`` to ``path``; returns on-disk size."""
    with open_compressed(path, "wb") as stream:
        stream.write(payload)
    return Path(path).stat().st_size


__all__ += ["read_all", "write_all"]
