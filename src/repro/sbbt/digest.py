"""Content digests of SBBT traces.

The simulation cache (:mod:`repro.cache`) is content-addressed: a cached
result is keyed by *what was simulated*, not by where the trace file
happens to live.  The canonical identity of a trace is therefore the
SHA-256 of its **uncompressed SBBT payload** (header + packets):

* the same trace stored as ``.sbbt``, ``.sbbt.gz`` or ``.sbbt.xz``
  digests identically (compression is transparent);
* renaming, copying or regenerating a byte-identical trace preserves the
  digest;
* an in-memory :class:`~repro.sbbt.trace.TraceData` digests the same as
  the file it was read from, because SBBT encoding is canonical
  (``decode(encode(t)) == t`` and ``encode(decode(p)) == p``).
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Union

from .compression import open_compressed
from .trace import TraceData
from .writer import encode_payload

__all__ = ["payload_digest", "trace_digest"]

TraceLike = Union[TraceData, str, os.PathLike]

#: Algorithm stamped into cache keys; bump alongside the cache schema if
#: it ever changes.
DIGEST_ALGORITHM = "sha256"

__all__.append("DIGEST_ALGORITHM")


def payload_digest(payload: bytes) -> str:
    """Hex SHA-256 of an uncompressed SBBT byte payload.

    >>> payload_digest(b"")[:8]
    'e3b0c442'
    """
    return hashlib.sha256(payload).hexdigest()


def trace_digest(trace: TraceLike) -> str:
    """Canonical content digest of a trace (path or in-memory data).

    A path is decompressed and digested without decoding the packets; an
    in-memory trace is encoded to its canonical payload first.  Both
    spellings of the same trace produce the same digest.
    """
    if isinstance(trace, TraceData):
        return payload_digest(encode_payload(trace))
    with open_compressed(Path(trace), "rb") as stream:
        digest = hashlib.sha256()
        while chunk := stream.read(1 << 20):
            digest.update(chunk)
    return digest.hexdigest()
