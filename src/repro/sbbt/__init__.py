"""Simple Binary Branch Trace (SBBT) — the paper's trace format.

SBBT (Section IV-C) is a small header (Fig. 1) followed by a concatenation
of 128-bit packets (Fig. 2), one per executed branch.  Compared with the
CBP5 framework's plain-text BT9 format it trades a little redundancy for
stream decoding: no graph header, no hashed metadata structure, just a
flat record array — which is exactly what lets this module decode whole
traces in one vectorized numpy pass.

Reader and writer are deliberately independent subcomponents, so tools
that inspect or translate traces can depend on just this package.
"""

from .compression import (
    BEST_CODEC_SUFFIX,
    CODEC_SUFFIXES,
    available_codecs,
    codec_for_path,
    open_compressed,
    read_all,
    write_all,
)
from .digest import DIGEST_ALGORITHM, payload_digest, trace_digest
from .header import FORMAT_VERSION, HEADER_SIZE, SIGNATURE, SbbtHeader
from .packet import (
    MAX_GAP,
    PACKET_SIZE,
    SbbtPacket,
    decode_address,
    encode_address,
    is_encodable_address,
)
from .reader import SbbtReader, decode_payload, read_trace
from .trace import TraceData
from .validate import branch_violations, validate_branch
from .writer import SbbtWriter, encode_payload, write_trace

__all__ = [
    "BEST_CODEC_SUFFIX", "CODEC_SUFFIXES", "available_codecs",
    "codec_for_path", "open_compressed", "read_all", "write_all",
    "DIGEST_ALGORITHM", "payload_digest", "trace_digest",
    "FORMAT_VERSION", "HEADER_SIZE", "SIGNATURE", "SbbtHeader",
    "MAX_GAP", "PACKET_SIZE", "SbbtPacket", "decode_address",
    "encode_address", "is_encodable_address",
    "SbbtReader", "decode_payload", "read_trace",
    "TraceData",
    "branch_violations", "validate_branch",
    "SbbtWriter", "encode_payload", "write_trace",
]
