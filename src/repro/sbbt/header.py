"""The SBBT header (paper Fig. 1).

The header spans 24 bytes (192 bits; the figure caption's "196" is a typo
— the body text and the field widths give 192):

====================  =======  ==============================================
Field                 Size     Contents
====================  =======  ==============================================
signature             5 bytes  ``b"SBBT\\n"``
version               3 bytes  major, minor, patch as unsigned 8-bit numbers
instruction count     8 bytes  u64 little-endian — instructions (branch and
                               non-branch) executed during tracing
branch count          8 bytes  u64 little-endian — branches in the trace
====================  =======  ==============================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO

from ..core.errors import TraceFormatError

__all__ = ["SbbtHeader", "HEADER_SIZE", "SIGNATURE", "FORMAT_VERSION"]

#: On-disk size of the header in bytes.
HEADER_SIZE = 24

#: The 5-byte magic that characterises the SBBT filetype.
SIGNATURE = b"SBBT\n"

#: The format version implemented by this module (1.0.0, as in the paper).
FORMAT_VERSION = (1, 0, 0)

_STRUCT = struct.Struct("<5s3B QQ")
assert _STRUCT.size == HEADER_SIZE


@dataclass(frozen=True, slots=True)
class SbbtHeader:
    """Decoded SBBT header.

    Attributes
    ----------
    num_instructions:
        Instructions (branch and non-branch) executed while tracing.
    num_branches:
        Number of 128-bit branch packets that follow the header.
    version:
        (major, minor, patch) of the producing writer.
    """

    num_instructions: int
    num_branches: int
    version: tuple[int, int, int] = FORMAT_VERSION

    def __post_init__(self) -> None:
        if self.num_instructions < 0:
            raise ValueError("num_instructions must be non-negative")
        if self.num_branches < 0:
            raise ValueError("num_branches must be non-negative")
        if self.num_branches > self.num_instructions:
            raise ValueError(
                f"trace claims more branches ({self.num_branches}) than "
                f"instructions ({self.num_instructions})"
            )
        if len(self.version) != 3 or any(not 0 <= v < 256 for v in self.version):
            raise ValueError(f"version must be three bytes, got {self.version}")

    def encode(self) -> bytes:
        """Serialize to the 24-byte on-disk representation."""
        major, minor, patch = self.version
        return _STRUCT.pack(SIGNATURE, major, minor, patch,
                            self.num_instructions, self.num_branches)

    @classmethod
    def decode(cls, payload: bytes) -> "SbbtHeader":
        """Parse a 24-byte header, validating signature and version."""
        if len(payload) < HEADER_SIZE:
            raise TraceFormatError(
                f"truncated SBBT header: got {len(payload)} bytes, "
                f"need {HEADER_SIZE}"
            )
        signature, major, minor, patch, instructions, branches = (
            _STRUCT.unpack(payload[:HEADER_SIZE])
        )
        if signature != SIGNATURE:
            raise TraceFormatError(
                f"bad SBBT signature {signature!r} (expected {SIGNATURE!r})"
            )
        if major != FORMAT_VERSION[0]:
            raise TraceFormatError(
                f"unsupported SBBT major version {major} "
                f"(this reader implements {FORMAT_VERSION[0]}.x)"
            )
        try:
            return cls(num_instructions=instructions, num_branches=branches,
                       version=(major, minor, patch))
        except ValueError as exc:
            raise TraceFormatError(str(exc)) from exc

    @classmethod
    def read_from(cls, stream: BinaryIO) -> "SbbtHeader":
        """Read and parse the header from an open binary stream."""
        return cls.decode(stream.read(HEADER_SIZE))

    def version_string(self) -> str:
        """The version as a dotted string, e.g. ``"1.0.0"``."""
        return ".".join(str(v) for v in self.version)
