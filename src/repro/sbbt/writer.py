"""SBBT trace writer.

The writer is an independent subcomponent of the simulation library (the
paper points out a user can link only the trace writer, e.g. to build
tools that create or modify traces).  Two write paths are provided:

* :class:`SbbtWriter` — a streaming writer fed one packet at a time, used
  by the synthetic tracer and the format translators.
* :func:`write_trace` — a vectorized one-shot writer that encodes a whole
  :class:`~repro.sbbt.trace.TraceData` with numpy.
"""

from __future__ import annotations

import os
from pathlib import Path
from types import TracebackType

import numpy as np

from ..core.branch import Branch
from ..core.errors import TraceValidationError
from .compression import open_compressed
from .header import SbbtHeader
from .packet import MAX_GAP, SbbtPacket, is_encodable_address
from .trace import TraceData
from .validate import validate_branch

__all__ = ["SbbtWriter", "write_trace", "encode_payload"]

_OUTCOME_BIT = np.uint64(1 << 11)
_ADDR_SHIFT = np.uint64(12)


def encode_payload(trace: TraceData) -> bytes:
    """Vectorized encode of header + packets into one ``bytes`` payload.

    Validates the SBBT rules on whole columns at once; a single invalid
    record aborts the encode with the index of the first offender.
    """
    n = len(trace)
    conditional = trace.conditional_mask()
    indirect = (trace.opcodes & 2).astype(bool)

    bad = ~conditional & ~trace.taken
    if bad.any():
        index = int(np.flatnonzero(bad)[0])
        raise TraceValidationError(
            f"record {index}: unconditional branch marked not-taken (rule 1)"
        )
    bad = conditional & indirect & ~trace.taken & (trace.targets != 0)
    if bad.any():
        index = int(np.flatnonzero(bad)[0])
        raise TraceValidationError(
            f"record {index}: not-taken conditional-indirect branch with "
            "non-null target (rule 2)"
        )
    for name, column in (("ip", trace.ips), ("target", trace.targets)):
        as_signed = column.view(np.int64)
        canonical = (as_signed >> 51 == 0) | (as_signed >> 51 == -1)
        if not canonical.all():
            index = int(np.flatnonzero(~canonical)[0])
            raise TraceValidationError(
                f"record {index}: {name} {int(column[index]):#x} is not a "
                "canonical 52-bit address"
            )

    blocks = np.empty((n, 2), dtype=np.uint64)
    blocks[:, 0] = (
        (trace.ips << _ADDR_SHIFT)
        | trace.opcodes.astype(np.uint64)
        | (trace.taken.astype(np.uint64) << np.uint64(11))
    )
    blocks[:, 1] = (trace.targets << _ADDR_SHIFT) | trace.gaps.astype(np.uint64)
    header = SbbtHeader(num_instructions=trace.num_instructions,
                        num_branches=n)
    return header.encode() + blocks.tobytes()


def write_trace(path: str | os.PathLike, trace: TraceData) -> int:
    """Encode ``trace`` and write it to ``path`` (codec from the suffix).

    Returns the compressed on-disk size in bytes.
    """
    payload = encode_payload(trace)
    with open_compressed(path, "wb") as stream:
        stream.write(payload)
    return Path(path).stat().st_size


class SbbtWriter:
    """Streaming SBBT writer (context manager).

    The branch count and instruction count are only known once the stream
    ends, so the writer buffers packets and emits the header at
    :meth:`close` time.  ``extra_instructions`` accounts for instructions
    executed after the last branch.

    >>> # doctest requires a filesystem; see tests/sbbt/test_writer.py
    """

    def __init__(self, path: str | os.PathLike):
        self._path = Path(path)
        self._blocks: list[bytes] = []
        self._num_branches = 0
        self._num_instructions = 0
        self._closed = False

    @property
    def num_branches(self) -> int:
        """Branches written so far."""
        return self._num_branches

    @property
    def num_instructions(self) -> int:
        """Instructions accounted for so far (branches + gaps + extras)."""
        return self._num_instructions

    def write_branch(self, branch: Branch, gap: int = 0) -> None:
        """Append one branch preceded by ``gap`` non-branch instructions."""
        if self._closed:
            raise ValueError("writer is closed")
        if not 0 <= gap <= MAX_GAP:
            raise TraceValidationError(
                f"instruction gap {gap} does not fit in 12 bits (max {MAX_GAP})"
            )
        validate_branch(branch)
        if not is_encodable_address(branch.ip):
            raise TraceValidationError(f"ip {branch.ip:#x} is not canonical")
        if not is_encodable_address(branch.target):
            raise TraceValidationError(
                f"target {branch.target:#x} is not canonical"
            )
        self._blocks.append(SbbtPacket(branch=branch, gap=gap).encode())
        self._num_branches += 1
        self._num_instructions += gap + 1

    def write_packet(self, packet: SbbtPacket) -> None:
        """Append one pre-built packet."""
        self.write_branch(packet.branch, packet.gap)

    def add_instructions(self, count: int) -> None:
        """Account for ``count`` trailing non-branch instructions."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._num_instructions += count

    def close(self) -> int:
        """Flush header + packets to disk; returns the on-disk size."""
        if self._closed:
            return self._path.stat().st_size
        self._closed = True
        header = SbbtHeader(num_instructions=self._num_instructions,
                            num_branches=self._num_branches)
        with open_compressed(self._path, "wb") as stream:
            stream.write(header.encode())
            for block in self._blocks:
                stream.write(block)
        return self._path.stat().st_size

    def __enter__(self) -> "SbbtWriter":
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None, tb: TracebackType | None) -> None:
        if exc_type is None:
            self.close()
