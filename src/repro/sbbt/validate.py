"""Semantic validity rules of the SBBT format (paper Section IV-C).

Not all field combinations are valid.  Two rules must be obeyed:

1. If the branch is **not conditional**, the outcome bit must mark the
   branch as taken (unconditional branches always execute their jump).
2. If the branch is **conditional and indirect** and the outcome is *not
   taken*, the target address must be null (``0x0``) — a not-taken
   indirect branch resolved no target.
"""

from __future__ import annotations

from ..core.branch import Branch
from ..core.errors import TraceValidationError

__all__ = ["validate_branch", "branch_violations"]


def branch_violations(branch: Branch) -> list[str]:
    """Return human-readable descriptions of every rule ``branch`` breaks.

    An empty list means the branch is valid.
    """
    violations = []
    if not branch.opcode.is_conditional and not branch.taken:
        violations.append(
            f"unconditional branch at {branch.ip:#x} marked not-taken "
            "(rule 1: non-conditional branches must be taken)"
        )
    if (branch.opcode.is_conditional and branch.opcode.is_indirect
            and not branch.taken and branch.target != 0):
        violations.append(
            f"not-taken conditional-indirect branch at {branch.ip:#x} has "
            f"non-null target {branch.target:#x} (rule 2)"
        )
    return violations


def validate_branch(branch: Branch) -> None:
    """Raise :class:`TraceValidationError` if ``branch`` breaks a rule."""
    violations = branch_violations(branch)
    if violations:
        raise TraceValidationError("; ".join(violations))
