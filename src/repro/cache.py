"""Content-addressed, on-disk cache of simulation results.

The paper's whole evaluation re-runs the same (predictor configuration,
trace) pairs over and over — Table III repeats every predictor over every
trace, and the Section VI sweeps re-simulate overlapping grids.  Those
simulations are deterministic: the same trace bytes, predictor parameters
and :class:`~repro.core.simulator.SimulationConfig` always produce the
same :class:`~repro.core.output.SimulationResult`.  This module therefore
never simulates the same pair twice: results are stored on disk keyed by
a digest of *what was simulated*.

Key derivation (see ``docs/caching.md`` for the full rules)::

    key = sha256(canonical_json({
        "schema":    SCHEMA_VERSION,
        "simulator": {"name": ..., "version": ...},
        "trace":     sha256(uncompressed SBBT payload),
        "predictor": predictor.spec(),          # name + parameters
        "config":    SimulationConfig fields,
    }))

Safety properties (each covered by tests):

* **atomic writes** — entries are written to a temp file in the cache
  directory and published with ``os.replace``, so concurrent writers
  (two processes filling the same directory) can only race to an
  identical, complete entry;
* **corruption-tolerant reads** — a truncated, garbled or
  wrong-schema entry is a *miss* (and is deleted best-effort), never an
  exception and never a wrong result;
* **LRU size cap** — optional ``max_entries`` / ``max_bytes`` caps are
  enforced by evicting the least-recently-used entries (file mtime,
  refreshed on every hit).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Union

from .core.errors import CacheError
from .core.output import SIMULATOR_NAME, SIMULATOR_VERSION, SimulationResult
from .core.predictor import Predictor, canonical_spec, derive_spec
from .core.simulator import SimulationConfig, simulate
from .sbbt.digest import payload_digest, trace_digest
from .sbbt.trace import TraceData

__all__ = [
    "SCHEMA_VERSION",
    "CACHE_DIR_ENV",
    "resolve_cache_dir",
    "CacheStats",
    "VerifyReport",
    "SimulationCache",
]

TraceLike = Union[TraceData, str, os.PathLike]

#: Environment variable naming a default cache directory.
CACHE_DIR_ENV = "MBP_CACHE_DIR"


def resolve_cache_dir(explicit: str | os.PathLike | None = None, *,
                      default: str | os.PathLike | None = None,
                      environ: dict[str, str] | None = None) -> str | None:
    """The cache directory every entry point agrees on.

    Precedence: an ``explicit`` value (a ``--cache-dir`` flag) wins,
    then the :data:`CACHE_DIR_ENV` environment variable, then
    ``default`` (usually ``None`` = caching off, or a service-private
    directory).  Empty strings at any level mean "unset" — so
    ``MBP_CACHE_DIR=""`` disables the env layer rather than naming the
    current directory.  ``environ`` is injectable for tests.

    Every consumer — ``mbp simulate/suite/sweep``, ``mbp cache``, the
    serve daemon — resolves through this one function, so they cannot
    drift apart on which cache they talk to.
    """
    if explicit is not None and str(explicit):
        return str(explicit)
    env = os.environ if environ is None else environ
    from_env = env.get(CACHE_DIR_ENV, "")
    if from_env:
        return from_env
    if default is not None and str(default):
        return str(default)
    return None

#: Version of the on-disk entry format *and* of the key derivation.
#: Bumping it orphans every existing entry (old entries read as misses
#: and old keys are never looked up again), which is exactly the
#: invalidation rule: never trust an entry written by different code.
SCHEMA_VERSION = 1

_ENTRY_SUFFIX = ".json"


@dataclass(slots=True)
class CacheStats:
    """A snapshot of a cache directory plus this handle's session counters.

    ``entries``/``total_bytes`` describe the directory as scanned now;
    ``hits``/``misses``/``stores``/``evictions``/``dropped`` count what
    *this* :class:`SimulationCache` instance did since construction.
    """

    directory: str
    entries: int
    total_bytes: int
    hits: int
    misses: int
    stores: int
    evictions: int
    dropped: int

    def to_json(self) -> dict[str, Any]:
        """Plain-dict form for the CLI's JSON output."""
        return asdict(self)


@dataclass(slots=True)
class VerifyReport:
    """Outcome of :meth:`SimulationCache.verify`."""

    valid: int
    invalid: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every entry decoded and round-tripped."""
        return not self.invalid


class SimulationCache:
    """A content-addressed store of :class:`SimulationResult` objects.

    Parameters
    ----------
    directory:
        Cache root; created (with parents) if missing.  Entries are flat
        ``<key>.json`` files, so a cache directory is portable and
        mergeable with ``cp``.
    max_entries, max_bytes:
        Optional LRU caps, enforced after every store.  ``None`` means
        unbounded.
    """

    def __init__(self, directory: str | os.PathLike, *,
                 max_entries: int | None = None,
                 max_bytes: int | None = None):
        if max_entries is not None and max_entries < 1:
            raise CacheError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise CacheError(f"max_bytes must be >= 1, got {max_bytes}")
        self.directory = Path(directory)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CacheError(
                f"cannot create cache directory {self.directory}: {exc}"
            ) from exc
        if not self.directory.is_dir():
            raise CacheError(f"{self.directory} is not a directory")
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Key derivation.
    # ------------------------------------------------------------------

    @staticmethod
    def make_key(trace_digest_hex: str, spec: dict[str, Any],
                 config: SimulationConfig | None = None) -> str:
        """Derive the content-addressed key for one simulation.

        ``spec`` is a predictor's :meth:`~repro.core.predictor.Predictor.spec`
        dict (it is re-canonicalized here, so hand-built dicts are fine).
        """
        config = config or SimulationConfig()
        material = {
            "schema": SCHEMA_VERSION,
            "simulator": {
                "name": SIMULATOR_NAME,
                "version": SIMULATOR_VERSION,
            },
            "trace": trace_digest_hex,
            "predictor": canonical_spec(spec),
            "config": canonical_spec(asdict(config)),
        }
        encoded = json.dumps(material, sort_keys=True,
                             separators=(",", ":")).encode()
        return payload_digest(encoded)

    def key_for(self, trace: TraceLike,
                predictor: Predictor | dict[str, Any],
                config: SimulationConfig | None = None) -> str:
        """Key for simulating ``predictor`` (or a spec dict) over ``trace``."""
        spec = predictor.spec() if isinstance(predictor, Predictor) else predictor
        return self.make_key(trace_digest(trace), spec, config)

    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}{_ENTRY_SUFFIX}"

    # ------------------------------------------------------------------
    # Store / lookup.
    # ------------------------------------------------------------------

    def get(self, key: str) -> SimulationResult | None:
        """The cached result for ``key``, or ``None`` on a miss.

        Any defect in the entry file — unreadable, truncated, garbled
        JSON, wrong schema version, wrong embedded key, non-round-
        tripping result — degrades to a miss; the bad file is deleted
        best-effort so it cannot shadow a future store.
        """
        path = self._entry_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if entry["schema"] != SCHEMA_VERSION:
                raise ValueError(f"schema {entry['schema']!r}")
            if entry["key"] != key:
                raise ValueError("embedded key mismatch")
            result = SimulationResult.from_json(entry["result"])
        except (ValueError, KeyError, TypeError, AttributeError):
            if self._drop(path):
                self.dropped += 1
            self.misses += 1
            return None
        self.hits += 1
        result.from_cache = True
        try:  # refresh LRU recency
            os.utime(path)
        except OSError:
            pass
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Atomically store ``result`` under ``key`` and enforce the caps."""
        entry = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "result": result.to_json(),
        }
        payload = json.dumps(entry, separators=(",", ":")).encode()
        fd, tmp_name = tempfile.mkstemp(
            prefix=".tmp-", suffix=_ENTRY_SUFFIX, dir=self.directory)
        try:
            with os.fdopen(fd, "wb") as stream:
                stream.write(payload)
            os.replace(tmp_name, self._entry_path(key))
        except OSError:
            self._drop(Path(tmp_name))
            raise
        self.stores += 1
        if self.max_entries is not None or self.max_bytes is not None:
            self.prune()

    def get_or_simulate(self, factory: Callable[[], Predictor],
                        trace: TraceLike,
                        config: SimulationConfig | None = None, *,
                        trace_name: str | None = None,
                        instrumentation: Any = None,
                        telemetry: Any = None,
                        probe: Any = None,
                        engine: str = "scalar") -> SimulationResult:
        """Serve from cache, or simulate once and remember the result.

        ``factory`` is called **at most once**: when it exposes no
        cheap-spec hook (see :func:`repro.core.predictor.derive_spec`)
        the instance built for key derivation is cold and is the one
        simulated on a miss — table-heavy predictors (TAGE, BATAGE) no
        longer allocate their tables twice, and a hit with a cheap-spec
        factory allocates nothing at all.  The trace name is
        display-only and deliberately not part of the key, so a hit is
        renamed to the caller's current spelling.

        ``instrumentation`` / ``telemetry`` are the standard simulator's
        observability hooks (:mod:`repro.telemetry`): the key derivation
        and lookup are timed as a "cache_lookup" phase and counted as
        "cache_hit" / "cache_miss"; on a miss both hooks are forwarded
        to :func:`~repro.core.simulator.simulate`.  A hit emits no
        interval telemetry — the stored result has no timeseries — which
        the run manifest makes visible via its ``cache`` section.

        ``probe`` (a :class:`repro.probe.PredictionProbe`) is likewise
        forwarded only on a miss: attribution is observed *during*
        simulation, so a hit returns with ``probe_report=None`` — the
        entry format (and the key) never carry probe data.

        ``engine`` selects the simulation engine used on a miss
        (``"scalar"``, ``"vectorized"`` or ``"auto"``).  It is *not*
        part of the cache key: both engines produce identical results,
        so runs with different engines share entries.
        """
        config = config or SimulationConfig()
        instr = instrumentation
        lookup_start = time.perf_counter() if instr is not None else 0.0
        spec, prebuilt = derive_spec(factory)
        key = self.make_key(trace_digest(trace), spec, config)
        cached = self.get(key)
        if instr is not None:
            instr.add_phase("cache_lookup",
                            time.perf_counter() - lookup_start)
            instr.count("cache_hit" if cached is not None else "cache_miss")
        if cached is not None:
            if trace_name is not None:
                cached.trace_name = trace_name
            elif not isinstance(trace, TraceData):
                cached.trace_name = str(trace)
            return cached
        predictor = prebuilt if prebuilt is not None else factory()
        result = simulate(predictor, trace, config, trace_name=trace_name,
                          instrumentation=instrumentation,
                          telemetry=telemetry, probe=probe, engine=engine)
        self.put(key, result)
        return result

    # ------------------------------------------------------------------
    # Maintenance.
    # ------------------------------------------------------------------

    def _entries(self) -> list[tuple[Path, os.stat_result]]:
        """Entry files with stats; files vanishing mid-scan are skipped."""
        found = []
        try:
            listing = list(self.directory.iterdir())
        except OSError:
            return []
        for path in listing:
            name = path.name
            if not name.endswith(_ENTRY_SUFFIX) or name.startswith("."):
                continue
            try:
                found.append((path, path.stat()))
            except OSError:
                continue
        return found

    def __len__(self) -> int:
        return len(self._entries())

    def stats(self) -> CacheStats:
        """Scan the directory and snapshot counts and sizes."""
        entries = self._entries()
        return CacheStats(
            directory=str(self.directory),
            entries=len(entries),
            total_bytes=sum(stat.st_size for _, stat in entries),
            hits=self.hits,
            misses=self.misses,
            stores=self.stores,
            evictions=self.evictions,
            dropped=self.dropped,
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path, _ in self._entries():
            if self._drop(path):
                removed += 1
        return removed

    def verify(self, *, delete: bool = False) -> VerifyReport:
        """Decode every entry and report (optionally delete) bad ones."""
        report = VerifyReport(valid=0)
        for path, _ in self._entries():
            problem = self._check_entry(path)
            if problem is None:
                report.valid += 1
                continue
            report.invalid.append((path.name, problem))
            if delete:
                self._drop(path)
        return report

    def prune(self) -> int:
        """Evict least-recently-used entries until both caps hold."""
        entries = self._entries()
        entries.sort(key=lambda item: item[1].st_mtime)  # oldest first
        count = len(entries)
        total = sum(stat.st_size for _, stat in entries)
        evicted = 0
        for path, stat in entries:
            over_entries = (self.max_entries is not None
                            and count > self.max_entries)
            over_bytes = (self.max_bytes is not None
                          and total > self.max_bytes)
            if not over_entries and not over_bytes:
                break
            if self._drop(path):
                evicted += 1
                self.evictions += 1
            count -= 1
            total -= stat.st_size
        return evicted

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _check_entry(self, path: Path) -> str | None:
        """None if the entry is sound, else a human-readable problem."""
        try:
            entry = json.loads(path.read_bytes())
        except OSError as exc:
            return f"unreadable: {exc}"
        except ValueError:
            return "not valid JSON"
        if not isinstance(entry, dict):
            return "entry is not a JSON object"
        if entry.get("schema") != SCHEMA_VERSION:
            return f"schema version {entry.get('schema')!r} != {SCHEMA_VERSION}"
        if entry.get("key") != path.name[:-len(_ENTRY_SUFFIX)]:
            return "embedded key does not match file name"
        try:
            result = SimulationResult.from_json(entry["result"])
            if result.to_json() != entry["result"]:
                return "result does not round-trip"
        except (ValueError, KeyError, TypeError, AttributeError) as exc:
            return f"result not decodable: {exc!r}"
        return None

    def _drop(self, path: Path) -> bool:
        try:
            path.unlink()
        except OSError:
            return False
        return True

    def __repr__(self) -> str:
        return (f"SimulationCache({str(self.directory)!r}, "
                f"entries={len(self)})")
