"""Deterministic pseudo-random bit sources.

BATAGE (and TAGE's allocation policy) need random numbers, but a
trace-based simulator must stay deterministic to keep the Section VII-C
"identical results" property.  Hardware predictors solve this with a
linear-feedback shift register; we model the same thing.
"""

from __future__ import annotations

__all__ = ["Lfsr", "TAPS"]

# Maximal-length taps (right-shifting Fibonacci form) for common widths.
# For the primitive polynomial with 1-indexed taps {w, t2, t3, ...} the
# mask has bits {w - w, w - t2, w - t3, ...}; bit 0 is always set, which
# also guarantees the register can never decay to the all-zero state.
TAPS = {
    8: 0x1D,          # x^8 + x^6 + x^5 + x^4 + 1
    16: 0x2D,         # x^16 + x^14 + x^13 + x^11 + 1
    24: 0x87,         # x^24 + x^23 + x^22 + x^17 + 1
    32: 0xC0000401,   # x^32 + x^22 + x^2 + x^1 + 1
}


class Lfsr:
    """A Fibonacci linear-feedback shift register.

    The register never reaches the all-zero state (seed 0 is coerced to 1),
    so the sequence has period ``2**width - 1`` for maximal taps.

    >>> r = Lfsr(width=8, seed=1)
    >>> bits = [r.next_bit() for _ in range(8)]
    >>> all(b in (0, 1) for b in bits)
    True
    """

    __slots__ = ("_width", "_taps", "_state")

    def __init__(self, width: int = 32, seed: int = 0xACE1, taps: int | None = None):
        if taps is None:
            if width not in TAPS:
                raise ValueError(
                    f"no default taps for width {width}; pass taps explicitly "
                    f"(defaults exist for {sorted(TAPS)})"
                )
            taps = TAPS[width]
        if width < 2:
            raise ValueError(f"width must be >= 2, got {width}")
        self._width = width
        self._taps = taps
        self._state = (seed & ((1 << width) - 1)) or 1

    @property
    def width(self) -> int:
        """Register width in bits."""
        return self._width

    @property
    def state(self) -> int:
        """Current register contents (never zero)."""
        return self._state

    def next_bit(self) -> int:
        """Advance one step and return the output bit."""
        feedback = (self._state & self._taps).bit_count() & 1
        out = self._state & 1
        self._state = (self._state >> 1) | (feedback << (self._width - 1))
        return out

    def next_bits(self, count: int) -> int:
        """Advance ``count`` steps, returning them packed LSB-first."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        value = 0
        for i in range(count):
            value |= self.next_bit() << i
        return value

    def below(self, bound: int, bits: int = 16) -> int:
        """A pseudo-random integer in ``[0, bound)`` from ``bits`` raw bits.

        Uses the multiply-shift reduction, which keeps the draw cheap and
        bias below ``bound / 2**bits`` — good enough for allocation
        throttling, where hardware uses even cruder sources.
        """
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return (self.next_bits(bits) * bound) >> bits

    def chance(self, numerator: int, denominator: int, bits: int = 12) -> bool:
        """Return ``True`` with probability ``numerator / denominator``."""
        if denominator <= 0:
            raise ValueError(f"denominator must be positive, got {denominator}")
        if numerator <= 0:
            return False
        if numerator >= denominator:
            return True
        return self.next_bits(bits) * denominator < numerator << bits

    def __repr__(self) -> str:
        return f"Lfsr(width={self._width}, state={self._state:#x})"
