"""Hash functions used to index predictor tables.

MBPlib's utilities library ships a small set of hashing helpers — most
prominently ``mbp::XorFold`` which folds an arbitrarily long value into a
table index by xoring together consecutive chunks.  We add the classic
skewing functions of the 2bc-gskew predictor and a couple of general
mixers, all deterministic and pure.
"""

from __future__ import annotations

from .bits import mask

__all__ = [
    "xor_fold",
    "gshare_index",
    "skew_h",
    "skew_h_inverse",
    "skew_hash",
    "mix64",
    "path_hash_step",
]

_U64 = (1 << 64) - 1


def xor_fold(value: int, width: int) -> int:
    """Fold ``value`` into ``width`` bits by xoring ``width``-bit chunks.

    This is MBPlib's ``mbp::XorFold``: every bit of the input influences
    the result, so long histories hash into small table indices without
    discarding information wholesale.

    >>> xor_fold(0b1010_1100, 4)
    6
    >>> xor_fold(0, 8)
    0
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if value < 0:
        raise ValueError("xor_fold expects a non-negative value")
    result = 0
    while value:
        result ^= value & mask(width)
        value >>= width
    return result


def gshare_index(ip: int, history: int, width: int) -> int:
    """The GShare indexing function: fold ``ip ^ history`` to ``width`` bits.

    Matches Listing 2 of the paper, where the GShare example computes
    ``XorFold(ip ^ ghist, T)``.
    """
    return xor_fold((ip ^ history) & _U64, width)


def skew_h(value: int, width: int) -> int:
    """The ``H`` skewing function from Seznec & Michaud's skewed caches.

    ``H`` operates on ``width``-bit values: it shifts right by one and
    feeds back the parity of the top and bottom bits into the MSB.  It is a
    bijection on ``width``-bit values, which is the property the e-gskew
    banks rely on (no systematic aliasing between banks).
    """
    if width <= 1:
        raise ValueError(f"width must be > 1, got {width}")
    value &= mask(width)
    msb = (value >> (width - 1)) & 1
    lsb = value & 1
    return ((value >> 1) | ((msb ^ lsb) << (width - 1))) & mask(width)


def skew_h_inverse(value: int, width: int) -> int:
    """Inverse of :func:`skew_h` (also a bijection on ``width`` bits)."""
    if width <= 1:
        raise ValueError(f"width must be > 1, got {width}")
    value &= mask(width)
    msb = (value >> (width - 1)) & 1
    next_msb = (value >> (width - 2)) & 1
    lsb = msb ^ next_msb
    return ((value << 1) & mask(width)) | lsb


def skew_hash(v1: int, v2: int, bank: int, width: int) -> int:
    """Skewed inter-bank hash of the e-gskew family.

    Computes ``H^(bank+1)(v1) ^ Hinv^(bank+1)(v2) ^ v1`` on ``width`` bits,
    so different banks map the same (address, history) pair to de-aliased
    table entries — the basis of the 2bc-gskew predictor.
    """
    if bank < 0:
        raise ValueError(f"bank must be non-negative, got {bank}")
    a = v1 & mask(width)
    b = v2 & mask(width)
    for _ in range(bank + 1):
        a = skew_h(a, width)
        b = skew_h_inverse(b, width)
    return (a ^ b ^ (v1 & mask(width))) & mask(width)


def mix64(value: int) -> int:
    """SplitMix64 finalizer: a fast, high-quality 64-bit mixer.

    Used wherever we need decorrelated bits from structured inputs (e.g.
    synthetic trace generation and table tag hardening).
    """
    value = (value + 0x9E3779B97F4A7C15) & _U64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _U64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _U64
    return value ^ (value >> 31)


def path_hash_step(hash_value: int, ip: int, width: int) -> int:
    """One step of a rolling path hash: shift in low bits of ``ip``.

    The path history registers used by perceptron-family predictors keep a
    rolling hash of recent branch addresses; this is the canonical
    shift-and-xor update on ``width`` bits.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return ((hash_value << 1) ^ (ip & mask(width)) ^ (hash_value >> (width - 1))) & mask(width)
