"""Bit-manipulation helpers shared across the library.

These mirror the small header-only helpers of MBPlib's utilities library:
masking, sign extension, bit reversal and width computations.  They are the
vocabulary used by the SBBT codec (:mod:`repro.sbbt`) and by the hashed
indexing schemes of the example predictors.
"""

from __future__ import annotations

__all__ = [
    "mask",
    "bit",
    "get_bits",
    "set_bits",
    "sign_extend",
    "is_power_of_two",
    "ceil_log2",
    "floor_log2",
    "reverse_bits",
    "popcount",
    "rotate_left",
    "rotate_right",
]

_U64 = (1 << 64) - 1


def mask(width: int) -> int:
    """Return an integer with the ``width`` least-significant bits set.

    >>> mask(4)
    15
    >>> mask(0)
    0
    """
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(value: int, index: int) -> int:
    """Return bit ``index`` of ``value`` as ``0`` or ``1``."""
    if index < 0:
        raise ValueError(f"bit index must be non-negative, got {index}")
    return (value >> index) & 1


def get_bits(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``.

    >>> get_bits(0b110100, 2, 3)
    5
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (value >> low) & mask(width)


def set_bits(value: int, low: int, width: int, field: int) -> int:
    """Return ``value`` with bits ``[low, low+width)`` replaced by ``field``.

    ``field`` must fit in ``width`` bits.
    """
    if field & ~mask(width):
        raise ValueError(f"field {field:#x} does not fit in {width} bits")
    cleared = value & ~(mask(width) << low)
    return cleared | (field << low)


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as a two's-complement
    signed integer.

    >>> sign_extend(0b1111, 4)
    -1
    >>> sign_extend(0b0111, 4)
    7
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    value &= mask(width)
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def is_power_of_two(value: int) -> bool:
    """Return ``True`` when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ceil_log2(value: int) -> int:
    """Smallest ``k`` such that ``2**k >= value`` (``value`` must be > 0)."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    return (value - 1).bit_length()


def floor_log2(value: int) -> int:
    """Largest ``k`` such that ``2**k <= value`` (``value`` must be > 0)."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    return value.bit_length() - 1


def reverse_bits(value: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``value``.

    >>> reverse_bits(0b0011, 4)
    12
    """
    value &= mask(width)
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def popcount(value: int) -> int:
    """Number of set bits in ``value`` (which must be non-negative)."""
    if value < 0:
        raise ValueError("popcount of a negative value is undefined")
    return value.bit_count()


def rotate_left(value: int, amount: int, width: int) -> int:
    """Rotate the low ``width`` bits of ``value`` left by ``amount``."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    amount %= width
    value &= mask(width)
    return ((value << amount) | (value >> (width - amount))) & mask(width)


def rotate_right(value: int, amount: int, width: int) -> int:
    """Rotate the low ``width`` bits of ``value`` right by ``amount``."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return rotate_left(value, width - (amount % width), width)
