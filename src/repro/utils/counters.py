"""Fixed-width saturating counters.

The MBPlib utilities library models fixed-width counters as classes with
custom arithmetic so that predictors read naturally (``table[i].sum_or_sub(
taken)``), handle all inputs and saturate correctly.  This module provides:

* :class:`SignedSaturatingCounter` — two's-complement style counter in
  ``[-2**(w-1), 2**(w-1) - 1]``; MBPlib's ``mbp::i2`` is the ``width=2``
  case.  ``value >= 0`` is read as *predict taken*.
* :class:`UnsignedSaturatingCounter` — counter in ``[0, 2**w - 1]``;
  ``value >= 2**(w-1)`` is read as *predict taken* (the classic 2-bit
  bimodal counter is the ``width=2`` case).
* :class:`CounterArray` — a numpy-backed array of signed saturating
  counters, the storage used by every table-based example predictor.

All counters are deterministic, pure-Python observable state, which is what
makes the simulator reproducible (Section VII-C of the paper).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = [
    "SignedSaturatingCounter",
    "UnsignedSaturatingCounter",
    "CounterArray",
    "i2",
    "u2",
]


class SignedSaturatingCounter:
    """A two's-complement saturating counter of ``width`` bits.

    The counter saturates at ``[-2**(width-1), 2**(width-1) - 1]``.  The
    taken/not-taken convention follows MBPlib's ``i2``: non-negative values
    predict *taken*.

    >>> c = SignedSaturatingCounter(2)
    >>> c.value
    0
    >>> c.sum_or_sub(True).value
    1
    >>> c.sum_or_sub(True).value       # saturates at +1 for width=2
    1
    """

    __slots__ = ("_width", "_min", "_max", "_value")

    def __init__(self, width: int, value: int = 0):
        if width < 1:
            raise ValueError(f"counter width must be >= 1, got {width}")
        self._width = width
        self._min = -(1 << (width - 1))
        self._max = (1 << (width - 1)) - 1
        self._value = 0
        self.value = value

    @property
    def width(self) -> int:
        """Number of bits of the counter."""
        return self._width

    @property
    def min(self) -> int:
        """Smallest representable value."""
        return self._min

    @property
    def max(self) -> int:
        """Largest representable value."""
        return self._max

    @property
    def value(self) -> int:
        """Current counter value."""
        return self._value

    @value.setter
    def value(self, new_value: int) -> None:
        if not self._min <= new_value <= self._max:
            raise ValueError(
                f"value {new_value} out of range [{self._min}, {self._max}]"
            )
        self._value = new_value

    def increment(self) -> "SignedSaturatingCounter":
        """Add one, saturating at the maximum.  Returns ``self``."""
        if self._value < self._max:
            self._value += 1
        return self

    def decrement(self) -> "SignedSaturatingCounter":
        """Subtract one, saturating at the minimum.  Returns ``self``."""
        if self._value > self._min:
            self._value -= 1
        return self

    def sum_or_sub(self, condition: bool) -> "SignedSaturatingCounter":
        """Increment when ``condition`` is true, else decrement.

        This is MBPlib's ``sumOrSub``: the idiomatic way to train a counter
        with a branch outcome.
        """
        return self.increment() if condition else self.decrement()

    def is_taken(self) -> bool:
        """Prediction read-out: non-negative means *taken*."""
        return self._value >= 0

    def is_saturated(self) -> bool:
        """Whether the counter sits at either rail."""
        return self._value in (self._min, self._max)

    def reset(self, value: int = 0) -> None:
        """Set the counter back to ``value`` (default 0, weakly taken)."""
        self.value = value

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SignedSaturatingCounter):
            return self._width == other._width and self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other: int) -> bool:
        return self._value < int(other)

    def __le__(self, other: int) -> bool:
        return self._value <= int(other)

    def __gt__(self, other: int) -> bool:
        return self._value > int(other)

    def __ge__(self, other: int) -> bool:
        return self._value >= int(other)

    def __hash__(self) -> int:
        return hash((self._width, self._value))

    def __repr__(self) -> str:
        return f"SignedSaturatingCounter(width={self._width}, value={self._value})"


class UnsignedSaturatingCounter:
    """An unsigned saturating counter of ``width`` bits in ``[0, 2**w - 1]``.

    The taken threshold is the midpoint ``2**(width-1)``; the width-2
    instance is the classic bimodal strongly/weakly taken automaton.

    >>> c = UnsignedSaturatingCounter(2, value=1)
    >>> c.is_taken()
    False
    >>> c.increment().is_taken()
    True
    """

    __slots__ = ("_width", "_max", "_value")

    def __init__(self, width: int, value: int = 0):
        if width < 1:
            raise ValueError(f"counter width must be >= 1, got {width}")
        self._width = width
        self._max = (1 << width) - 1
        self._value = 0
        self.value = value

    @property
    def width(self) -> int:
        """Number of bits of the counter."""
        return self._width

    @property
    def max(self) -> int:
        """Largest representable value."""
        return self._max

    @property
    def taken_threshold(self) -> int:
        """Smallest value read as *taken*."""
        return 1 << (self._width - 1)

    @property
    def value(self) -> int:
        """Current counter value."""
        return self._value

    @value.setter
    def value(self, new_value: int) -> None:
        if not 0 <= new_value <= self._max:
            raise ValueError(f"value {new_value} out of range [0, {self._max}]")
        self._value = new_value

    def increment(self) -> "UnsignedSaturatingCounter":
        """Add one, saturating at the maximum.  Returns ``self``."""
        if self._value < self._max:
            self._value += 1
        return self

    def decrement(self) -> "UnsignedSaturatingCounter":
        """Subtract one, saturating at zero.  Returns ``self``."""
        if self._value > 0:
            self._value -= 1
        return self

    def sum_or_sub(self, condition: bool) -> "UnsignedSaturatingCounter":
        """Increment when ``condition`` is true, else decrement."""
        return self.increment() if condition else self.decrement()

    def is_taken(self) -> bool:
        """Prediction read-out: at or above the midpoint means *taken*."""
        return self._value >= self.taken_threshold

    def is_saturated(self) -> bool:
        """Whether the counter sits at either rail."""
        return self._value in (0, self._max)

    def reset(self, value: int = 0) -> None:
        """Set the counter back to ``value``."""
        self.value = value

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, UnsignedSaturatingCounter):
            return self._width == other._width and self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._width, self._value))

    def __repr__(self) -> str:
        return f"UnsignedSaturatingCounter(width={self._width}, value={self._value})"


def i2(value: int = 0) -> SignedSaturatingCounter:
    """MBPlib's ``mbp::i2``: a 2-bit signed saturating counter."""
    return SignedSaturatingCounter(2, value)


def u2(value: int = 0) -> UnsignedSaturatingCounter:
    """A 2-bit unsigned saturating counter (classic bimodal cell)."""
    return UnsignedSaturatingCounter(2, value)


class CounterArray:
    """A numpy-backed array of signed saturating counters.

    This is the bulk-storage counterpart of :class:`SignedSaturatingCounter`
    used by table-based predictors, where a Python object per table entry
    would be prohibitively slow.  Values live in ``[-2**(w-1), 2**(w-1)-1]``
    and the taken convention matches ``i2`` (non-negative = taken).

    >>> t = CounterArray(8, width=2)
    >>> t.update(3, True)
    >>> t.is_taken(3)
    True
    """

    __slots__ = ("_width", "_min", "_max", "_values")

    def __init__(self, size: int, width: int = 2, fill: int = 0):
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if width < 1:
            raise ValueError(f"counter width must be >= 1, got {width}")
        self._width = width
        self._min = -(1 << (width - 1))
        self._max = (1 << (width - 1)) - 1
        if not self._min <= fill <= self._max:
            raise ValueError(f"fill {fill} out of range [{self._min}, {self._max}]")
        self._values = np.full(size, fill, dtype=np.int32)

    @property
    def width(self) -> int:
        """Number of bits of each counter."""
        return self._width

    @property
    def min(self) -> int:
        """Smallest representable value."""
        return self._min

    @property
    def max(self) -> int:
        """Largest representable value."""
        return self._max

    @property
    def values(self) -> np.ndarray:
        """The raw numpy storage (read-mostly; mutate via :meth:`update`)."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index: int) -> int:
        return int(self._values[index])

    def __setitem__(self, index: int, value: int) -> None:
        if not self._min <= value <= self._max:
            raise ValueError(f"value {value} out of range [{self._min}, {self._max}]")
        self._values[index] = value

    def __iter__(self) -> Iterator[int]:
        return iter(int(v) for v in self._values)

    def update(self, index: int, taken: bool) -> None:
        """Saturating ``sum_or_sub`` at ``index``."""
        v = self._values[index]
        if taken:
            if v < self._max:
                self._values[index] = v + 1
        elif v > self._min:
            self._values[index] = v - 1

    def is_taken(self, index: int) -> bool:
        """Prediction read-out at ``index``: non-negative means taken."""
        return bool(self._values[index] >= 0)

    def strength(self, index: int) -> int:
        """Distance from the weakest state (0 or -1), a confidence proxy."""
        v = int(self._values[index])
        return v if v >= 0 else -v - 1

    def reset(self, fill: int = 0) -> None:
        """Reset every counter to ``fill``."""
        if not self._min <= fill <= self._max:
            raise ValueError(f"fill {fill} out of range [{self._min}, {self._max}]")
        self._values.fill(fill)

    def structural_stats(self) -> dict:
        """Occupancy/saturation/entropy snapshot (:mod:`repro.probe`)."""
        from .tables import distribution_stats

        return distribution_stats(self._values, self._min, self._max)

    def __repr__(self) -> str:
        return f"CounterArray(size={len(self)}, width={self._width})"
