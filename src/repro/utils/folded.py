"""Folded (cyclic-shift-register) history.

TAGE-family predictors index tables with *very* long global histories
(hundreds of bits).  Recomputing ``xor_fold(history, width)`` on every
branch would cost O(history_length); the classic trick (due to Michaud's
PPM/TAGE implementations) maintains the folded value incrementally with a
cyclic shift register so each update is O(1):

    folded' = rotate(folded) ^ inserted_bit ^ evicted_bit_at_its_folded_position

:class:`FoldedHistory` implements exactly that and is property-tested
against the direct ``xor_fold`` computation.
"""

from __future__ import annotations

from .bits import mask

__all__ = ["FoldedHistory", "HistoryWindow"]


class HistoryWindow:
    """A bounded window of raw branch outcomes, oldest ones discarded.

    :class:`FoldedHistory` needs to know the bit that *leaves* the history
    window on every update.  Predictors with several folded registers share
    one window sized to the longest history.
    """

    __slots__ = ("_length", "_bits", "_head")

    def __init__(self, length: int):
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length}")
        self._length = length
        self._bits = bytearray(length)
        self._head = 0  # position of the newest outcome

    @property
    def length(self) -> int:
        """Capacity of the window in outcomes."""
        return self._length

    def push(self, taken: bool) -> None:
        """Record a new outcome, discarding the oldest."""
        self._head = (self._head - 1) % self._length
        self._bits[self._head] = 1 if taken else 0

    def __getitem__(self, age: int) -> int:
        """Outcome ``age`` branches ago (0 = newest) as 0/1."""
        if not 0 <= age < self._length:
            raise IndexError(f"age {age} out of range [0, {self._length})")
        return self._bits[(self._head + age) % self._length]

    def value(self, length: int) -> int:
        """Pack the newest ``length`` outcomes: bit ``i`` = outcome ``i`` ago."""
        if not 0 <= length <= self._length:
            raise ValueError(f"length {length} out of range [0, {self._length}]")
        result = 0
        for age in range(length - 1, -1, -1):
            result = (result << 1) | self[age]
        return result

    def reset(self) -> None:
        """Clear the window (all not-taken)."""
        for i in range(self._length):
            self._bits[i] = 0

    def __repr__(self) -> str:
        return f"HistoryWindow(length={self._length})"


class FoldedHistory:
    """Incrementally maintained ``xor_fold`` of the newest ``history_length``
    outcomes, folded into ``folded_width`` bits.

    The invariant, checked by the test suite, is::

        folded.value == xor_fold(window.value(history_length), folded_width)

    after any sequence of synchronized ``update`` / ``push`` calls.

    Parameters
    ----------
    history_length:
        Number of outcomes covered by this folded register.
    folded_width:
        Width in bits of the folded value (e.g. the log2 of a TAGE table
        size, or a tag width).
    """

    __slots__ = ("_history_length", "_folded_width", "_evict_pos", "_value")

    def __init__(self, history_length: int, folded_width: int):
        if history_length < 1:
            raise ValueError(f"history_length must be >= 1, got {history_length}")
        if folded_width < 1:
            raise ValueError(f"folded_width must be >= 1, got {folded_width}")
        self._history_length = history_length
        self._folded_width = folded_width
        # Folded bit position where the outgoing (oldest) bit currently sits.
        self._evict_pos = history_length % folded_width
        self._value = 0

    @property
    def history_length(self) -> int:
        """Number of outcomes covered."""
        return self._history_length

    @property
    def folded_width(self) -> int:
        """Width of the folded value in bits."""
        return self._folded_width

    @property
    def value(self) -> int:
        """The folded history, equal to ``xor_fold(raw_history, width)``."""
        return self._value

    def update(self, new_bit: bool, evicted_bit: int) -> None:
        """Shift in ``new_bit`` and remove ``evicted_bit``.

        ``evicted_bit`` must be the outcome that was recorded
        ``history_length`` branches ago (i.e. ``window[history_length - 1]``
        *before* the window itself is pushed).
        """
        w = self._folded_width
        value = self._value
        # Rotate left by 1 within the folded width, inserting the new bit.
        value = (value << 1) | int(bool(new_bit))
        value ^= value >> w  # fold the carried-out MSB back into bit 0
        value &= mask(w)
        # The evicted history bit, after this rotation, sits at _evict_pos.
        value ^= (evicted_bit & 1) << self._evict_pos
        self._value = value

    def reset(self) -> None:
        """Clear the folded register (consistent with an all-zero window)."""
        self._value = 0

    def __int__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return (
            f"FoldedHistory(history_length={self._history_length}, "
            f"folded_width={self._folded_width}, value={self._value:#x})"
        )
