"""The utilities library (paper Section V).

Software implementations of the components that appear inside most branch
predictors — saturating counters, history registers, folded histories,
hashing and table structures — so predictor code can be written by gluing
components together (the paper's GShare fits in ~20 lines this way).

The utilities are intentionally independent from the simulator: like
MBPlib's ``mbp_utils``, they can be used to build predictors for the
baseline simulators in :mod:`repro.baselines` too.
"""

from .bits import (
    bit,
    ceil_log2,
    floor_log2,
    get_bits,
    is_power_of_two,
    mask,
    popcount,
    reverse_bits,
    rotate_left,
    rotate_right,
    set_bits,
    sign_extend,
)
from .counters import (
    CounterArray,
    SignedSaturatingCounter,
    UnsignedSaturatingCounter,
    i2,
    u2,
)
from .folded import FoldedHistory, HistoryWindow
from .hashing import (
    gshare_index,
    mix64,
    path_hash_step,
    skew_h,
    skew_h_inverse,
    skew_hash,
    xor_fold,
)
from .history import GlobalHistory, LocalHistoryTable, PathHistory
from .lfsr import Lfsr
from .tables import DirectMappedTable, TaggedEntryView, TaggedTable

__all__ = [
    # bits
    "bit", "ceil_log2", "floor_log2", "get_bits", "is_power_of_two", "mask",
    "popcount", "reverse_bits", "rotate_left", "rotate_right", "set_bits",
    "sign_extend",
    # counters
    "CounterArray", "SignedSaturatingCounter", "UnsignedSaturatingCounter",
    "i2", "u2",
    # folded history
    "FoldedHistory", "HistoryWindow",
    # hashing
    "gshare_index", "mix64", "path_hash_step", "skew_h", "skew_h_inverse",
    "skew_hash", "xor_fold",
    # history
    "GlobalHistory", "LocalHistoryTable", "PathHistory",
    # randomness
    "Lfsr",
    # tables
    "DirectMappedTable", "TaggedEntryView", "TaggedTable",
]
