"""Branch history registers.

The *scenario* of a predictor — MBPlib's term for the information recorded
about recent program behaviour (Section IV-A) — is almost always some form
of history register.  This module provides the three classic kinds:

* :class:`GlobalHistory` — a shift register of recent branch outcomes.
* :class:`PathHistory` — a rolling hash of recent branch addresses.
* :class:`LocalHistoryTable` — per-address outcome histories, the
  first-level table of two-level predictors.
"""

from __future__ import annotations

import numpy as np

from .bits import mask
from .hashing import path_hash_step

__all__ = ["GlobalHistory", "PathHistory", "LocalHistoryTable"]


class GlobalHistory:
    """A global branch-outcome shift register of ``length`` bits.

    Bit 0 is the outcome of the most recent branch; pushing shifts older
    outcomes towards higher bit positions, exactly like the ``std::bitset``
    usage in the paper's GShare listing (``ghist <<= 1; ghist[0] = taken``).

    >>> h = GlobalHistory(4)
    >>> h.push(True); h.push(False); h.push(True)
    >>> h.value
    5
    """

    __slots__ = ("_length", "_value")

    def __init__(self, length: int, value: int = 0):
        if length < 1:
            raise ValueError(f"history length must be >= 1, got {length}")
        if value & ~mask(length):
            raise ValueError(f"value {value:#x} does not fit in {length} bits")
        self._length = length
        self._value = value

    @property
    def length(self) -> int:
        """Number of outcomes remembered."""
        return self._length

    @property
    def value(self) -> int:
        """The packed history: bit ``i`` is the outcome ``i`` branches ago."""
        return self._value

    def push(self, taken: bool) -> None:
        """Record the outcome of the newest branch."""
        self._value = ((self._value << 1) | int(bool(taken))) & mask(self._length)

    def newest(self) -> bool:
        """Outcome of the most recent branch recorded."""
        return bool(self._value & 1)

    def __getitem__(self, age: int) -> bool:
        """Outcome of the branch ``age`` branches ago (0 = newest)."""
        if not 0 <= age < self._length:
            raise IndexError(f"age {age} out of range [0, {self._length})")
        return bool((self._value >> age) & 1)

    def taken_count(self) -> int:
        """Number of taken outcomes currently in the register."""
        return self._value.bit_count()

    def reset(self) -> None:
        """Clear the register (all not-taken)."""
        self._value = 0

    def __int__(self) -> int:
        return self._value

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:
        return f"GlobalHistory(length={self._length}, value={self._value:#x})"


class PathHistory:
    """A rolling hash of the addresses of recent branches.

    Perceptron-family predictors (Tarjan & Skadron's hashed perceptron)
    index some tables with *path* rather than *outcome* history; this class
    maintains that hash incrementally in ``width`` bits.
    """

    __slots__ = ("_width", "_value")

    def __init__(self, width: int, value: int = 0):
        if width < 1:
            raise ValueError(f"path history width must be >= 1, got {width}")
        if value & ~mask(width):
            raise ValueError(f"value {value:#x} does not fit in {width} bits")
        self._width = width
        self._value = value

    @property
    def width(self) -> int:
        """Number of bits of the rolling hash."""
        return self._width

    @property
    def value(self) -> int:
        """Current hash of the recent branch path."""
        return self._value

    def push(self, ip: int) -> None:
        """Fold the address of the newest branch into the hash."""
        self._value = path_hash_step(self._value, ip, self._width)

    def reset(self) -> None:
        """Clear the path hash."""
        self._value = 0

    def __int__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"PathHistory(width={self._width}, value={self._value:#x})"


class LocalHistoryTable:
    """A table of per-address outcome histories.

    This is the first level of Yeh & Patt two-level predictors: entry
    ``i`` holds the last ``history_length`` outcomes of the branches that
    map to index ``i``.  Index selection (how many address bits, whether
    sets share an entry) is left to the caller, which is what lets one
    class serve PAg/PAs/SAg/SAs alike.

    >>> t = LocalHistoryTable(num_entries=16, history_length=4)
    >>> t.push(3, True); t.push(3, True)
    >>> t.read(3)
    3
    """

    __slots__ = ("_history_length", "_histories")

    def __init__(self, num_entries: int, history_length: int):
        if num_entries < 1:
            raise ValueError(f"num_entries must be >= 1, got {num_entries}")
        if history_length < 1:
            raise ValueError(f"history_length must be >= 1, got {history_length}")
        if history_length > 63:
            raise ValueError(
                f"history_length must be <= 63 to fit numpy storage, got {history_length}"
            )
        self._history_length = history_length
        self._histories = np.zeros(num_entries, dtype=np.uint64)

    @property
    def history_length(self) -> int:
        """Number of outcomes remembered per entry."""
        return self._history_length

    def __len__(self) -> int:
        return len(self._histories)

    def read(self, index: int) -> int:
        """The packed outcome history stored at ``index``."""
        return int(self._histories[index])

    def push(self, index: int, taken: bool) -> None:
        """Record a new outcome for the branches mapping to ``index``."""
        value = int(self._histories[index])
        value = ((value << 1) | int(bool(taken))) & mask(self._history_length)
        self._histories[index] = value

    def reset(self) -> None:
        """Clear all histories."""
        self._histories.fill(0)

    def __repr__(self) -> str:
        return (
            f"LocalHistoryTable(num_entries={len(self)}, "
            f"history_length={self._history_length})"
        )
