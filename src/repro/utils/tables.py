"""Predictor table structures.

Table-based predictors share a handful of storage idioms: direct-mapped
counter tables indexed by hashed bits, and *tagged* tables whose entries
are claimed and recycled (TAGE/BATAGE).  This module provides both as
numpy-backed structures so that large tables stay cheap.

For the probe layer (:mod:`repro.probe`), :func:`distribution_stats`
summarizes any clamped counter array — occupancy, saturation, mean and
value entropy — and both table classes expose a ``structural_stats``
snapshot built on it.  These are end-of-run diagnostics: nothing in the
hot predict/train path calls them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .bits import mask

__all__ = ["DirectMappedTable", "TaggedEntryView", "TaggedTable",
           "distribution_stats"]


def distribution_stats(values: Any, lo: int, hi: int,
                       reset: int = 0) -> dict[str, Any]:
    """Cheap structural summary of a clamped counter array.

    Returns a JSON-ready dict:

    ``entries``
        Number of cells.
    ``live_fraction``
        Fraction of cells that moved off the ``reset`` value.
    ``saturated_fraction``
        Fraction of cells pinned at either clamp bound.
    ``mean``
        Arithmetic mean of the stored values.
    ``entropy_bits``
        Shannon entropy of the value distribution — 0 when every cell
        holds the same value, up to ``log2(hi - lo + 1)`` when the
        table is fully exercised.  A proxy for how much of the
        structure's state space a workload actually used (and, for
        hashed tables, how much aliasing pressure it is under).

    >>> stats = distribution_stats([0, 0, 1, -2], lo=-2, hi=1)
    >>> stats["entries"], stats["live_fraction"], stats["saturated_fraction"]
    (4, 0.5, 0.5)
    """
    arr = np.asarray(values, dtype=np.int64)
    n = int(arr.size)
    if n == 0:
        return {"entries": 0, "live_fraction": 0.0,
                "saturated_fraction": 0.0, "mean": 0.0, "entropy_bits": 0.0}
    counts = np.bincount(np.clip(arr, lo, hi) - lo, minlength=hi - lo + 1)
    probabilities = counts[counts > 0] / n
    entropy = float(-(probabilities * np.log2(probabilities)).sum())
    return {
        "entries": n,
        "live_fraction": float((arr != reset).mean()),
        "saturated_fraction": float(((arr == lo) | (arr == hi)).mean()),
        "mean": float(arr.mean()),
        "entropy_bits": entropy,
    }


class DirectMappedTable:
    """A power-of-two table of small signed integers with hashed indexing.

    Unlike :class:`repro.utils.counters.CounterArray`, this class stores
    arbitrary clamped integer fields (weights, counters, trip counts) and
    exposes the index mask, which predictors combine with their own hash
    functions.
    """

    __slots__ = ("_log_size", "_lo", "_hi", "_values")

    def __init__(self, log_size: int, lo: int, hi: int, fill: int = 0):
        if log_size < 0:
            raise ValueError(f"log_size must be >= 0, got {log_size}")
        if lo > hi:
            raise ValueError(f"empty value range [{lo}, {hi}]")
        if not lo <= fill <= hi:
            raise ValueError(f"fill {fill} out of range [{lo}, {hi}]")
        self._log_size = log_size
        self._lo = lo
        self._hi = hi
        self._values = np.full(1 << log_size, fill, dtype=np.int32)

    @property
    def log_size(self) -> int:
        """log2 of the number of entries."""
        return self._log_size

    @property
    def index_mask(self) -> int:
        """Mask selecting a valid index from a hash."""
        return mask(self._log_size)

    @property
    def lo(self) -> int:
        """Smallest storable value."""
        return self._lo

    @property
    def hi(self) -> int:
        """Largest storable value."""
        return self._hi

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index: int) -> int:
        return int(self._values[index & self.index_mask])

    def __setitem__(self, index: int, value: int) -> None:
        self._values[index & self.index_mask] = min(self._hi, max(self._lo, value))

    def add(self, index: int, delta: int) -> int:
        """Clamped in-place addition; returns the new value."""
        i = index & self.index_mask
        v = min(self._hi, max(self._lo, int(self._values[i]) + delta))
        self._values[i] = v
        return v

    def update(self, index: int, taken: bool) -> int:
        """Saturating ±1 update (the counter idiom); returns the new value."""
        return self.add(index, 1 if taken else -1)

    def reset(self, fill: int = 0) -> None:
        """Reset every entry to ``fill``."""
        if not self._lo <= fill <= self._hi:
            raise ValueError(f"fill {fill} out of range [{self._lo}, {self._hi}]")
        self._values.fill(fill)

    def structural_stats(self) -> dict[str, Any]:
        """Occupancy/saturation/entropy snapshot (:mod:`repro.probe`)."""
        return distribution_stats(self._values, self._lo, self._hi)

    def __repr__(self) -> str:
        return (
            f"DirectMappedTable(log_size={self._log_size}, "
            f"range=[{self._lo}, {self._hi}])"
        )


@dataclass
class TaggedEntryView:
    """A snapshot of one tagged-table entry (value semantics, for reading)."""

    tag: int
    counter: int
    useful: int
    aux: int


class TaggedTable:
    """A direct-mapped table of tagged entries, the TAGE building block.

    Every entry carries a partial ``tag``, a signed prediction ``counter``,
    a ``useful`` counter driving replacement, and one free auxiliary field
    (``aux``) that BATAGE uses for its second dual counter.  All fields are
    numpy columns, so a 2^12-entry table costs four small arrays rather
    than thousands of Python objects.
    """

    __slots__ = ("_log_size", "_tag_width", "_ctr_min", "_ctr_max",
                 "_useful_max", "tags", "counters", "useful", "aux")

    def __init__(self, log_size: int, tag_width: int,
                 counter_width: int = 3, useful_width: int = 2):
        if log_size < 0:
            raise ValueError(f"log_size must be >= 0, got {log_size}")
        if tag_width < 1:
            raise ValueError(f"tag_width must be >= 1, got {tag_width}")
        if counter_width < 1:
            raise ValueError(f"counter_width must be >= 1, got {counter_width}")
        if useful_width < 1:
            raise ValueError(f"useful_width must be >= 1, got {useful_width}")
        size = 1 << log_size
        self._log_size = log_size
        self._tag_width = tag_width
        self._ctr_min = -(1 << (counter_width - 1))
        self._ctr_max = (1 << (counter_width - 1)) - 1
        self._useful_max = (1 << useful_width) - 1
        self.tags = np.zeros(size, dtype=np.int64)
        self.counters = np.zeros(size, dtype=np.int32)
        self.useful = np.zeros(size, dtype=np.int32)
        self.aux = np.zeros(size, dtype=np.int32)

    @property
    def log_size(self) -> int:
        """log2 of the number of entries."""
        return self._log_size

    @property
    def index_mask(self) -> int:
        """Mask selecting a valid index from a hash."""
        return mask(self._log_size)

    @property
    def tag_width(self) -> int:
        """Width of the partial tags in bits."""
        return self._tag_width

    @property
    def tag_mask(self) -> int:
        """Mask selecting a valid tag from a hash."""
        return mask(self._tag_width)

    @property
    def counter_min(self) -> int:
        """Smallest prediction-counter value."""
        return self._ctr_min

    @property
    def counter_max(self) -> int:
        """Largest prediction-counter value."""
        return self._ctr_max

    @property
    def useful_max(self) -> int:
        """Largest useful-counter value."""
        return self._useful_max

    def __len__(self) -> int:
        return len(self.tags)

    def matches(self, index: int, tag: int) -> bool:
        """Whether the entry at ``index`` currently holds ``tag``."""
        return int(self.tags[index & self.index_mask]) == (tag & self.tag_mask)

    def read(self, index: int) -> TaggedEntryView:
        """Copy out the entry at ``index``."""
        i = index & self.index_mask
        return TaggedEntryView(
            tag=int(self.tags[i]),
            counter=int(self.counters[i]),
            useful=int(self.useful[i]),
            aux=int(self.aux[i]),
        )

    def update_counter(self, index: int, taken: bool) -> int:
        """Saturating ±1 update of the prediction counter."""
        i = index & self.index_mask
        v = int(self.counters[i]) + (1 if taken else -1)
        v = min(self._ctr_max, max(self._ctr_min, v))
        self.counters[i] = v
        return v

    def update_useful(self, index: int, delta: int) -> int:
        """Clamped update of the useful counter."""
        i = index & self.index_mask
        v = min(self._useful_max, max(0, int(self.useful[i]) + delta))
        self.useful[i] = v
        return v

    def allocate(self, index: int, tag: int, taken: bool, aux: int = 0) -> None:
        """Claim the entry at ``index`` for ``tag`` with a weak counter."""
        i = index & self.index_mask
        self.tags[i] = tag & self.tag_mask
        self.counters[i] = 0 if taken else -1
        self.useful[i] = 0
        self.aux[i] = aux

    def decay_useful(self, bit_mask: int) -> None:
        """Periodic useful-counter aging: clear the bits in ``bit_mask``.

        TAGE gracefully resets the ``u`` counters by alternately clearing
        their high and low bits; callers pass the mask for the current
        phase.
        """
        np.bitwise_and(self.useful, ~bit_mask, out=self.useful)

    def reset(self) -> None:
        """Clear every entry."""
        self.tags.fill(0)
        self.counters.fill(0)
        self.useful.fill(0)
        self.aux.fill(0)

    def structural_stats(self) -> dict[str, Any]:
        """Occupancy/saturation/entropy snapshot (:mod:`repro.probe`).

        Counter statistics come from :func:`distribution_stats`;
        ``live_fraction`` is redefined as the fraction of entries that
        have been allocated (any non-zero field), and
        ``distinct_tag_fraction`` estimates aliasing pressure — a low
        value means many allocations share partial tags.
        """
        stats = distribution_stats(self.counters, self._ctr_min,
                                   self._ctr_max)
        allocated = (self.tags != 0) | (self.counters != 0) | \
                    (self.useful != 0) | (self.aux != 0)
        live = int(allocated.sum())
        stats["live_fraction"] = live / len(self.tags)
        distinct = int(np.unique(self.tags[allocated]).size) if live else 0
        stats["distinct_tag_fraction"] = distinct / live if live else 0.0
        stats["useful_mean"] = float(self.useful.mean())
        return stats

    def __repr__(self) -> str:
        return (
            f"TaggedTable(log_size={self._log_size}, tag_width={self._tag_width})"
        )
