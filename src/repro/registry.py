"""The predictor registry shared by every front door.

One table maps short public names (``"gshare"``, ``"tage"``, ...) to
zero-argument predictor factories.  The CLI (``mbp simulate --predictor
gshare``), the serve daemon (``{"op": "simulate", "predictor":
"gshare"}``) and the championship driver all resolve names here, so a
new predictor registers **once** and is immediately reachable from every
interface — previously the CLI and serve each kept their own copy and
could drift.

Factories must be picklable (module-level classes or
``functools.partial`` over them): they travel to worker processes
through the execution engine and through work plans.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from .core.predictor import Predictor
from .predictors import LocalPredictor, TABLE2_PREDICTORS, Yags

__all__ = [
    "PREDICTOR_CHOICES",
    "ENGINE_CHOICES",
    "UnknownPredictorError",
    "resolve_predictor",
    "predictor_factory",
    "make_predictor",
]

#: Public name -> zero-argument predictor factory.  Paper Table II
#: defaults, plus the extra catalog members grown since.
PREDICTOR_CHOICES: dict[str, Callable[[], Predictor]] = {
    "bimodal": TABLE2_PREDICTORS["Bimodal"],
    "two-level": TABLE2_PREDICTORS["Two-Level"],
    "gshare": TABLE2_PREDICTORS["GShare"],
    "tournament": TABLE2_PREDICTORS["Tournament"],
    "gskew": TABLE2_PREDICTORS["2bc-gskew"],
    "local": LocalPredictor,
    "yags": Yags,
    "perceptron": TABLE2_PREDICTORS["Hashed Perc."],
    "tage": TABLE2_PREDICTORS["TAGE"],
    "batage": TABLE2_PREDICTORS["BATAGE"],
}

#: Simulation-engine choices accepted by ``--engine`` / ``sim_engine``.
ENGINE_CHOICES = ("scalar", "vectorized", "auto")


class UnknownPredictorError(KeyError):
    """``name`` is not in :data:`PREDICTOR_CHOICES`.

    The message already lists the valid choices; front ends only need to
    translate the exception type (``SystemExit`` for the CLI, a protocol
    error frame for the daemon).
    """

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name
        self.message = (
            f"unknown predictor {name!r}; choose from "
            f"{', '.join(sorted(PREDICTOR_CHOICES))}"
        )

    def __str__(self) -> str:
        return self.message


def resolve_predictor(name: str) -> Callable[[], Predictor]:
    """The registered factory for ``name``.

    Raises :class:`UnknownPredictorError` (a ``KeyError``) for names the
    registry does not know.
    """
    try:
        return PREDICTOR_CHOICES[name]
    except KeyError:
        raise UnknownPredictorError(name) from None


def predictor_factory(name: str,
                      parameters: dict[str, Any] | None = None,
                      ) -> Callable[[], Predictor]:
    """A picklable zero-argument factory for ``name``, with optional
    constructor overrides applied via ``functools.partial``."""
    base = resolve_predictor(name)
    if parameters:
        return functools.partial(base, **parameters)
    return base


def make_predictor(name: str) -> Predictor:
    """Instantiate a predictor by its registered name."""
    return resolve_predictor(name)()
