"""Cross-subsystem integration tests: the paper's qualitative claims.

These tests pin the *shape* of the evaluation results:

* Section VII-C — all three simulators produce identical mispredictions
  for the same predictor and branch stream.
* Table II quality ordering — better predictors get lower MPKI on
  program-like workloads.
* Listing 1 — the full pipeline produces the documented JSON schema.
"""

import json

import pytest

from repro.baselines.champsim import (
    instruction_trace_from_branches,
    run_champsim,
)
from repro.baselines.cbp5 import Cbp5Framework, FromMbpPredictor, write_bt9
from repro.core.simulator import SimulationConfig, simulate
from repro.core.vectorized import (
    simulate_bimodal_vectorized,
    simulate_gshare_vectorized,
)
from repro.predictors import (
    TABLE2_PREDICTORS,
    AlwaysTaken,
    Bimodal,
    GShare,
    Tage,
    mcfarling_tournament,
)
from repro.traces import generate_workload


@pytest.fixture(scope="module")
def workload():
    return generate_workload("spec17_like", seed=42, num_branches=25000)


class TestResultEquivalence:
    """Paper Section VII-C, across every engine in the repository."""

    @pytest.mark.parametrize("name", ["Bimodal", "GShare", "TAGE"])
    def test_cbp5_framework_identical(self, tmp_path, workload, name):
        factory = TABLE2_PREDICTORS[name]
        bt9 = tmp_path / "t.bt9.gz"
        write_bt9(bt9, workload)
        framework = Cbp5Framework(bt9).run(FromMbpPredictor(factory()))
        library = simulate(factory(), workload)
        assert framework.mispredictions == library.mispredictions

    @pytest.mark.parametrize("name", ["Bimodal", "GShare"])
    def test_champsim_identical(self, workload, name):
        factory = TABLE2_PREDICTORS[name]
        instruction_trace = instruction_trace_from_branches(workload)
        cycle = run_champsim(factory(), instruction_trace)
        library = simulate(factory(), workload)
        assert (cycle.stats.direction_mispredictions
                == library.mispredictions)
        assert (cycle.stats.conditional_branches
                == library.num_conditional_branches)

    def test_vectorized_identical(self, workload):
        assert (simulate_bimodal_vectorized(workload).mispredictions
                == simulate(Bimodal(), workload).mispredictions)
        assert (simulate_gshare_vectorized(workload).mispredictions
                == simulate(GShare(), workload).mispredictions)

    def test_repeated_runs_identical(self, workload):
        # "Trace-based simulators always give the same results."
        runs = [simulate(TABLE2_PREDICTORS["BATAGE"](), workload)
                for _ in range(2)]
        assert runs[0].mispredictions == runs[1].mispredictions


class TestQualityOrdering:
    """Predictor generations must rank correctly on program workloads."""

    @pytest.fixture(scope="class")
    def mpki(self):
        # Championship methodology: the metric is the *mean* MPKI over a
        # suite of traces, not a single trace (individual workloads can
        # legitimately favour bimodal over gshare).
        import statistics

        traces = [
            generate_workload(category, seed=seed, num_branches=25000)
            for category in ("spec17_like", "short_mobile", "short_server")
            for seed in (42, 99)
        ]
        config = SimulationConfig(collect_most_failed=False)
        return {
            name: statistics.fmean(
                simulate(factory(), trace, config).mpki for trace in traces)
            for name, factory in [
                ("static", AlwaysTaken),
                ("bimodal", Bimodal),
                ("gshare", GShare),
                ("tournament", mcfarling_tournament),
                ("tage", Tage),
            ]
        }

    def test_bimodal_beats_static(self, mpki):
        assert mpki["bimodal"] < mpki["static"]

    def test_gshare_beats_bimodal(self, mpki):
        assert mpki["gshare"] < mpki["bimodal"]

    def test_tournament_beats_bimodal(self, mpki):
        assert mpki["tournament"] < mpki["bimodal"]

    def test_tage_beats_gshare(self, mpki):
        assert mpki["tage"] < mpki["gshare"]

    def test_all_predictors_do_something(self, mpki):
        assert all(value < 1000.0 for value in mpki.values())


class TestTable2CollectionRuns:
    """Every Table II predictor must survive a full workload run."""

    @pytest.mark.parametrize("name", sorted(TABLE2_PREDICTORS))
    def test_runs_and_reports(self, workload, name):
        result = simulate(TABLE2_PREDICTORS[name](), workload,
                          SimulationConfig(collect_most_failed=False))
        assert result.num_conditional_branches > 0
        assert 0.0 <= result.accuracy <= 1.0
        # Program-like workloads should be predictable to some degree.
        assert result.accuracy > 0.6
        json.dumps(result.to_json())


class TestListing1EndToEnd:
    def test_full_schema_from_real_run(self, tmp_path, workload):
        from repro.sbbt.writer import write_trace

        path = tmp_path / "SHORT_SERVER-1.sbbt.xz"
        write_trace(path, workload)
        result = simulate(
            GShare(history_length=25, log_table_size=18), path,
            SimulationConfig(warmup_instructions=0))
        output = result.to_json()
        metadata = output["metadata"]
        assert metadata["trace"].endswith("SHORT_SERVER-1.sbbt.xz")
        assert metadata["predictor"]["history_length"] == 25
        assert metadata["predictor"]["log_table_size"] == 18
        assert metadata["exhausted_trace"] is True
        assert output["metrics"]["num_most_failed_branches"] == len(
            output["most_failed"])
        # most_failed entries carry the documented fields.
        entry = output["most_failed"][0]
        assert set(entry) >= {"ip", "occurrences", "mpki", "accuracy"}
        # Entries are sorted by contribution.
        failures = [e["mispredictions"] for e in output["most_failed"]]
        assert failures == sorted(failures, reverse=True)
