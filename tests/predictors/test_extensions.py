"""Behavioural tests for the extension predictors: YAGS, O-GEHL and the
statistical corrector / TAGE-SC(-L) assembly."""

import pytest

from repro.core.simulator import SimulationConfig, simulate
from repro.predictors import (
    Bimodal,
    GShare,
    OGehl,
    StatisticalCorrector,
    Tage,
    Yags,
    tage_sc,
    tage_sc_l,
)
from tests.conftest import make_branch, make_trace


class TestYags:
    def test_bias_provides_for_untagged_branches(self):
        predictor = Yags(log_choice_size=8, log_cache_size=6)
        branch = make_branch(ip=0x40_0040, taken=True)
        for _ in range(8):
            predictor.predict(branch.ip)
            predictor.train(branch)
            predictor.track(branch)
        assert predictor.predict(branch.ip) is True

    def test_exception_cache_learns_history_exceptions(self):
        # An alternating branch: its bias is useless, so the exception
        # caches must carry the prediction.
        predictor = Yags(log_choice_size=8, log_cache_size=8,
                         history_length=6)
        misses = 0
        for i in range(400):
            taken = i % 2 == 0
            branch = make_branch(ip=0x40_0080, taken=taken)
            if i > 100 and predictor.predict(branch.ip) != taken:
                misses += 1
            else:
                predictor.predict(branch.ip)
            predictor.train(branch)
            predictor.track(branch)
        assert misses < 15

    def test_competitive_with_gshare_at_equal_budget(self, medium_trace):
        config = SimulationConfig(collect_most_failed=False)
        yags = Yags(log_choice_size=12, log_cache_size=9, tag_width=6,
                    history_length=10)
        gshare = GShare(history_length=12, log_table_size=13)
        # Roughly 16 kbit each (YAGS pays tags; gshare pays table size).
        assert abs(yags.storage_bits() - gshare.storage_bits()) \
            < gshare.storage_bits() * 0.2
        yags_result = simulate(yags, medium_trace, config)
        gshare_result = simulate(gshare, medium_trace, config)
        assert yags_result.mpki < gshare_result.mpki * 1.3

    def test_beats_bimodal(self, medium_trace):
        config = SimulationConfig(collect_most_failed=False)
        yags = simulate(Yags(), medium_trace, config)
        bimodal = simulate(Bimodal(), medium_trace, config)
        assert yags.mispredictions < bimodal.mispredictions

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Yags(log_choice_size=0)
        with pytest.raises(ValueError):
            Yags(tag_width=0)
        with pytest.raises(ValueError):
            Yags(history_length=0)

    def test_metadata_and_storage(self):
        predictor = Yags(log_choice_size=10, log_cache_size=8, tag_width=6)
        metadata = predictor.metadata_stats()
        assert metadata["name"] == "repro YAGS"
        assert predictor.storage_bits() == (1 << 10) * 2 \
            + 2 * (1 << 8) * 8 + predictor.history_length


class TestOGehl:
    def test_learns_periodic_pattern(self):
        trace = make_trace([0x4000] * 600,
                           [(i % 7) < 4 for i in range(600)])
        result = simulate(OGehl(log_table_size=9), trace)
        assert result.accuracy > 0.9

    def test_adaptive_threshold_moves(self, medium_trace):
        predictor = OGehl(log_table_size=9)
        initial_theta = predictor.theta
        simulate(predictor, medium_trace,
                 SimulationConfig(collect_most_failed=False))
        assert predictor.theta != initial_theta or predictor._tc != 0

    def test_dynamic_lengths_toggle_recorded(self, medium_trace):
        predictor = OGehl(log_table_size=8, num_tables=4)
        simulate(predictor, medium_trace,
                 SimulationConfig(collect_most_failed=False))
        stats = predictor.execution_stats()
        assert stats["active_length_config"] in (0, 1)
        assert stats["config_switches"] >= 0

    def test_beats_bimodal(self, medium_trace):
        config = SimulationConfig(collect_most_failed=False)
        gehl = simulate(OGehl(), medium_trace, config)
        bimodal = simulate(Bimodal(), medium_trace, config)
        assert gehl.mispredictions < bimodal.mispredictions

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OGehl(num_tables=1)
        with pytest.raises(ValueError):
            OGehl(counter_width=1)
        with pytest.raises(ValueError):
            OGehl(max_history=50, alt_max_history=40)

    def test_metadata(self):
        metadata = OGehl(num_tables=6).metadata_stats()
        assert metadata["name"] == "repro O-GEHL"
        assert len(metadata["history_lengths"]) == 6


class TestStatisticalCorrector:
    def _small_tage(self):
        return Tage(num_tables=4, log_base_size=10, log_tagged_size=7,
                    max_history=40)

    def test_never_much_worse_than_main(self, medium_trace):
        config = SimulationConfig(collect_most_failed=False)
        plain = simulate(self._small_tage(), medium_trace, config)
        corrected = simulate(StatisticalCorrector(self._small_tage()),
                             medium_trace, config)
        # The corrector only overrides with confidence; it must not
        # meaningfully damage the main predictor.
        assert corrected.mispredictions <= plain.mispredictions * 1.05

    def test_overrides_are_counted(self, medium_trace):
        predictor = StatisticalCorrector(self._small_tage())
        simulate(predictor, medium_trace,
                 SimulationConfig(collect_most_failed=False))
        stats = predictor.execution_stats()
        assert "sc_overrides" in stats
        assert stats["sc_overrides"] >= stats["sc_good_overrides"] >= 0

    def test_corrects_systematically_wrong_main(self):
        # A pathological main: always predicts taken.  On a never-taken
        # branch the corrector must learn to invert it.
        from repro.predictors import AlwaysTaken

        predictor = StatisticalCorrector(AlwaysTaken(), threshold=4)
        branch = make_branch(ip=0x40_0100, taken=False)
        misses = 0
        for i in range(200):
            prediction = predictor.predict(branch.ip)
            if i > 100:
                misses += prediction is not False
            predictor.train(branch)
            predictor.track(branch)
        assert misses < 5

    def test_nested_metadata(self):
        predictor = tage_sc_l(num_tables=4, log_tagged_size=7)
        metadata = predictor.metadata_stats()
        assert metadata["name"] == "repro StatisticalCorrector"
        assert metadata["main"]["name"] == "repro WithLoopPredictor"
        assert metadata["main"]["main"]["name"] == "repro TAGE"

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StatisticalCorrector(Bimodal(), num_tables=0)
        with pytest.raises(ValueError):
            StatisticalCorrector(Bimodal(), counter_width=1)
        with pytest.raises(ValueError):
            StatisticalCorrector(Bimodal(), threshold=-1)

    def test_tage_sc_factory(self):
        predictor = tage_sc(num_tables=4, log_tagged_size=7)
        assert predictor.main.metadata_stats()["name"] == "repro TAGE"

    def test_tage_sc_l_runs_clean(self, small_trace):
        result = simulate(tage_sc_l(num_tables=4, log_tagged_size=8),
                          small_trace)
        assert result.accuracy > 0.6
