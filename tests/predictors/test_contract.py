"""The predictor interface contract, enforced over every example.

Every predictor in the examples library must: implement the three-method
interface, keep ``predict`` observably pure, be deterministic across
fresh instances, produce self-describing metadata, and survive the
unconditional-branch protocol (track without train).
"""

import json

import pytest

from repro.core.predictor import Predictor
from repro.core.simulator import simulate
from repro.predictors import (
    AlwaysNotTaken,
    AlwaysTaken,
    Batage,
    Bimodal,
    Btfnt,
    ConditionalOnlyFilter,
    GAg,
    GShare,
    HashedPerceptron,
    LocalPredictor,
    LoopPredictor,
    NeverTakenFilter,
    OGehl,
    PAs,
    StatisticalCorrector,
    Tage,
    TwoBcGskew,
    WithLoopPredictor,
    Yags,
    mcfarling_tournament,
)
from tests.conftest import OPCODE_JUMP, make_branch, make_trace

SMALL_PARAMS = dict()

FACTORIES = {
    "always_taken": AlwaysTaken,
    "always_not_taken": AlwaysNotTaken,
    "btfnt": Btfnt,
    "bimodal": lambda: Bimodal(log_table_size=10),
    "gshare": lambda: GShare(history_length=8, log_table_size=10),
    "gag": lambda: GAg(history_length=8),
    "pas": lambda: PAs(history_length=6, log_histories=6),
    "tournament": lambda: mcfarling_tournament(log_table_size=10),
    "gskew": lambda: TwoBcGskew(log_bank_size=10),
    "perceptron": lambda: HashedPerceptron(log_table_size=10),
    "tage": lambda: Tage(num_tables=4, log_tagged_size=7,
                         log_base_size=10, max_history=40),
    "batage": lambda: Batage(num_tables=4, log_tagged_size=7,
                             log_base_size=10, max_history=40),
    "loop": LoopPredictor,
    "with_loop": lambda: WithLoopPredictor(Bimodal(log_table_size=10)),
    "cond_filter": lambda: ConditionalOnlyFilter(GShare(8, 10)),
    "never_taken_filter": lambda: NeverTakenFilter(Bimodal(log_table_size=10)),
    "yags": lambda: Yags(log_choice_size=10, log_cache_size=8),
    "local": lambda: LocalPredictor(log_histories=8, history_length=8),
    "ogehl": lambda: OGehl(num_tables=4, log_table_size=8),
    "tage_sc": lambda: StatisticalCorrector(
        Tage(num_tables=4, log_tagged_size=7, log_base_size=10,
             max_history=40),
        log_table_size=8),
}


@pytest.fixture(params=sorted(FACTORIES), ids=sorted(FACTORIES))
def factory(request):
    return FACTORIES[request.param]


class TestContract:
    def test_is_predictor(self, factory):
        assert isinstance(factory(), Predictor)

    def test_predict_returns_bool(self, factory):
        prediction = factory().predict(0x40_0000)
        assert isinstance(prediction, bool)

    def test_predict_is_repeatable(self, factory):
        # Calling predict twice without train/track must not change the
        # answer (the interface's purity requirement).
        predictor = factory()
        first = predictor.predict(0x40_0000)
        assert predictor.predict(0x40_0000) == first

    def test_predict_pure_across_addresses(self, factory):
        # Predicting other addresses in between must not change the
        # prediction for a given address.
        predictor = factory()
        first = predictor.predict(0x40_0000)
        predictor.predict(0x41_0000)
        predictor.predict(0x42_0040)
        assert predictor.predict(0x40_0000) == first

    def test_deterministic_across_instances(self, factory, small_trace):
        result_a = simulate(factory(), small_trace)
        result_b = simulate(factory(), small_trace)
        assert result_a.mispredictions == result_b.mispredictions

    def test_survives_unconditional_track(self, factory):
        predictor = factory()
        branch = make_branch(opcode=OPCODE_JUMP, taken=True)
        predictor.track(branch)  # no train for unconditional branches
        assert isinstance(predictor.predict(0x40_0000), bool)

    def test_full_protocol_cycle(self, factory):
        predictor = factory()
        for taken in (True, False, True, True):
            branch = make_branch(taken=taken)
            predictor.predict(branch.ip)
            predictor.train(branch)
            predictor.track(branch)

    def test_metadata_has_name(self, factory):
        metadata = factory().metadata_stats()
        assert isinstance(metadata.get("name"), str)
        assert metadata["name"]

    def test_metadata_json_serializable(self, factory):
        json.dumps(factory().metadata_stats())

    def test_execution_stats_json_serializable(self, factory, small_trace):
        predictor = factory()
        simulate(predictor, small_trace)
        json.dumps(predictor.execution_stats())

    def test_name_helper(self, factory):
        assert factory().name()

    def test_update_convenience(self, factory):
        predictor = factory()
        predictor.update(make_branch(taken=True))
        predictor.update(make_branch(opcode=OPCODE_JUMP, taken=True))

    def test_on_warmup_end_callable(self, factory):
        predictor = factory()
        predictor.predict(0x40_0000)
        predictor.on_warmup_end()


class TestLearning:
    """Any learning predictor must master a constant branch."""

    LEARNERS = [name for name in FACTORIES
                if name not in ("always_taken", "always_not_taken", "btfnt",
                                "loop", "never_taken_filter")]

    @pytest.mark.parametrize("name", LEARNERS)
    def test_learns_always_taken_branch(self, name):
        predictor = FACTORIES[name]()
        branch = make_branch(ip=0x40_0100, taken=True)
        for _ in range(64):
            predictor.predict(branch.ip)
            predictor.train(branch)
            predictor.track(branch)
        assert predictor.predict(branch.ip) is True

    @pytest.mark.parametrize("name", LEARNERS)
    def test_learns_never_taken_branch(self, name):
        predictor = FACTORIES[name]()
        branch = make_branch(ip=0x40_0200, taken=False)
        for _ in range(64):
            predictor.predict(branch.ip)
            predictor.train(branch)
            predictor.track(branch)
        assert predictor.predict(branch.ip) is False
