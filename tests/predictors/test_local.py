"""Behavioural tests for the local predictor and the Alpha 21264 hybrid."""

import pytest

from repro.core.simulator import SimulationConfig, simulate
from repro.predictors import Bimodal, GShare, LocalPredictor, alpha21264
from tests.conftest import make_branch, make_trace


class TestLocalPredictor:
    def test_learns_per_branch_pattern_with_interleaving(self):
        # Two interleaved branches with different periods: local history
        # separates them perfectly; interleaving does not disturb it.
        predictor = LocalPredictor(log_histories=6, history_length=8)
        misses = 0
        for i in range(600):
            for ip, taken in ((0x4000, i % 2 == 0), (0x5004, i % 3 == 0)):
                prediction = predictor.predict(ip)
                if i > 150:
                    misses += prediction != taken
                branch = make_branch(ip=ip, taken=taken)
                predictor.train(branch)
                predictor.track(branch)
        assert misses < 20

    def test_immune_to_global_noise(self):
        # A noisy branch between visits must not change a patterned
        # branch's prediction (the local predictor's defining property).
        import random

        random.seed(0)
        predictor = LocalPredictor(log_histories=6, history_length=6)
        misses = 0
        for i in range(800):
            noise = make_branch(ip=0x9000, taken=random.random() < 0.5)
            predictor.predict(noise.ip)
            predictor.train(noise)
            predictor.track(noise)
            taken = (i % 4) != 3
            branch = make_branch(ip=0x4000, taken=taken)
            if i > 200:
                misses += predictor.predict(branch.ip) != taken
            else:
                predictor.predict(branch.ip)
            predictor.train(branch)
            predictor.track(branch)
        assert misses < 25

    def test_address_aliasing_shares_history(self):
        predictor = LocalPredictor(log_histories=4, history_length=4)
        a, b = 0x10, 0x10 + (1 << 4)
        assert predictor._history_index(a) == predictor._history_index(b)

    def test_storage_bits_21264(self):
        predictor = LocalPredictor()
        assert predictor.storage_bits() == 1024 * 10 + 1024 * 3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LocalPredictor(log_histories=-1)
        with pytest.raises(ValueError):
            LocalPredictor(history_length=0)
        with pytest.raises(ValueError):
            LocalPredictor(history_length=25)
        with pytest.raises(ValueError):
            LocalPredictor(counter_width=0)

    def test_metadata(self):
        metadata = LocalPredictor().metadata_stats()
        assert metadata["name"] == "repro LocalPredictor"
        assert metadata["history_length"] == 10


class TestAlpha21264:
    def test_structure(self):
        hybrid = alpha21264()
        metadata = hybrid.metadata_stats()
        assert metadata["predictor_0"]["name"] == "repro LocalPredictor"
        assert metadata["predictor_1"]["scheme"] == "GAg"
        assert metadata["metapredictor"]["scheme"] == "GAg"

    def test_beats_both_halves_on_mixed_workload(self, medium_trace):
        config = SimulationConfig(collect_most_failed=False)
        hybrid = simulate(alpha21264(), medium_trace, config)
        local = simulate(LocalPredictor(), medium_trace, config)
        assert hybrid.mispredictions < local.mispredictions * 1.05

    def test_beats_bimodal(self, medium_trace):
        config = SimulationConfig(collect_most_failed=False)
        hybrid = simulate(alpha21264(), medium_trace, config)
        bimodal = simulate(Bimodal(), medium_trace, config)
        assert hybrid.mispredictions < bimodal.mispredictions

    def test_deterministic(self, small_trace):
        a = simulate(alpha21264(), small_trace)
        b = simulate(alpha21264(), small_trace)
        assert a.mispredictions == b.mispredictions
