"""Behavioural tests for the static, bimodal, gshare and two-level
predictors."""

import pytest

from repro.core.simulator import simulate
from repro.predictors import (
    AlwaysNotTaken,
    AlwaysTaken,
    Bimodal,
    Btfnt,
    GAg,
    GShare,
    Scope,
    TwoLevel,
)
from repro.predictors.twolevel import GAp, GAs, PAg, PAp, PAs, SAg, SAp, SAs
from tests.conftest import make_branch, make_trace


class TestStatics:
    def test_always_taken_accuracy_is_taken_rate(self):
        trace = make_trace([0x4000] * 10, [True] * 7 + [False] * 3)
        result = simulate(AlwaysTaken(), trace)
        assert result.accuracy == pytest.approx(0.7)

    def test_statics_are_complementary(self):
        trace = make_trace([0x4000] * 10, [True] * 7 + [False] * 3)
        taken = simulate(AlwaysTaken(), trace)
        not_taken = simulate(AlwaysNotTaken(), trace)
        assert taken.mispredictions + not_taken.mispredictions == 10

    def test_btfnt_learns_direction(self):
        predictor = Btfnt()
        backward = make_branch(ip=0x5000, target=0x4000, taken=True)
        forward = make_branch(ip=0x6000, target=0x7000, taken=False)
        assert predictor.predict(0x5000) is False  # unknown yet
        predictor.track(backward)
        predictor.track(forward)
        assert predictor.predict(0x5000) is True   # backward -> taken
        assert predictor.predict(0x6000) is False  # forward  -> not taken


class TestBimodal:
    def test_counter_hysteresis(self):
        predictor = Bimodal(log_table_size=4)
        branch = make_branch(ip=0x3)
        # Train strongly taken, then one not-taken must not flip it.
        for _ in range(4):
            predictor.train(branch.with_outcome(True))
        predictor.train(branch.with_outcome(False))
        assert predictor.predict(0x3) is True

    def test_aliasing_between_far_addresses(self):
        predictor = Bimodal(log_table_size=4)
        a, b = 0x10, 0x10 + (1 << 4)  # same index
        for _ in range(3):
            predictor.train(make_branch(ip=a, taken=True))
        assert predictor.predict(b) is True  # destructive aliasing

    def test_instruction_shift_changes_indexing(self):
        no_shift = Bimodal(log_table_size=4, instruction_shift=0)
        shifted = Bimodal(log_table_size=4, instruction_shift=2)
        assert no_shift._index(0x14) != no_shift._index(0x10)
        assert shifted._index(0x43) == shifted._index(0x40)

    def test_storage_bits(self):
        assert Bimodal(log_table_size=10, counter_width=2).storage_bits() \
            == 2048

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Bimodal(log_table_size=-1)
        with pytest.raises(ValueError):
            Bimodal(counter_width=0)
        with pytest.raises(ValueError):
            Bimodal(instruction_shift=-1)

    def test_metadata(self):
        metadata = Bimodal(log_table_size=12).metadata_stats()
        assert metadata["log_table_size"] == 12


class TestGShare:
    def test_history_tracks_all_branch_outcomes(self):
        predictor = GShare(history_length=4, log_table_size=8)
        predictor.track(make_branch(taken=True))
        predictor.track(make_branch(taken=False))
        predictor.track(make_branch(taken=True))
        assert predictor.history == 0b101

    def test_learns_alternating_pattern_bimodal_cannot(self):
        # A strictly alternating branch defeats bimodal but is trivial
        # for GShare once the pattern is in the history register.
        ips = [0x4000] * 400
        taken = [i % 2 == 0 for i in range(400)]
        trace = make_trace(ips, taken)
        gshare = simulate(GShare(history_length=4, log_table_size=10), trace)
        bimodal = simulate(Bimodal(log_table_size=10), trace)
        assert gshare.mispredictions < bimodal.mispredictions / 4

    def test_storage_bits(self):
        predictor = GShare(history_length=15, log_table_size=17)
        assert predictor.storage_bits() == (1 << 17) * 2 + 15

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GShare(history_length=0)
        with pytest.raises(ValueError):
            GShare(log_table_size=0)
        with pytest.raises(ValueError):
            GShare(counter_width=0)

    def test_metadata_matches_listing1_fields(self):
        metadata = GShare(history_length=25, log_table_size=18).metadata_stats()
        assert metadata["history_length"] == 25
        assert metadata["log_table_size"] == 18


class TestTwoLevel:
    def test_scheme_names(self):
        assert GAg().scheme_name() == "GAg"
        assert GAp().scheme_name() == "GAp"
        assert GAs().scheme_name() == "GAs"
        assert PAg().scheme_name() == "PAg"
        assert PAp().scheme_name() == "PAp"
        assert PAs().scheme_name() == "PAs"
        assert SAg().scheme_name() == "SAg"
        assert SAp().scheme_name() == "SAp"
        assert SAs().scheme_name() == "SAs"

    def test_gag_learns_global_pattern(self):
        trace = make_trace([0x4000] * 300,
                           [(i % 3) != 2 for i in range(300)])
        result = simulate(GAg(history_length=6), trace)
        assert result.accuracy > 0.9

    def test_pag_learns_per_address_patterns(self):
        # Two interleaved branches with different periods: per-address
        # history separates them, global history needs more bits.
        ips, taken = [], []
        for i in range(300):
            ips.append(0x4000)
            taken.append(i % 2 == 0)
            ips.append(0x5000)
            taken.append(i % 3 == 0)
        trace = make_trace(ips, taken)
        pag = simulate(PAg(history_length=8, log_histories=4), trace)
        assert pag.accuracy > 0.9

    def test_per_set_sharing(self):
        predictor = TwoLevel(Scope.PER_SET, Scope.GLOBAL,
                             history_length=4, log_histories=2, set_shift=4)
        # Addresses in the same aligned 16-byte region share one history.
        assert predictor._history_index(0x40) == predictor._history_index(0x4C)
        assert (predictor._history_index(0x40)
                != predictor._history_index(0x50))

    def test_global_pattern_table_is_single(self):
        assert GAg().num_pattern_tables == 1
        assert GAs(log_pattern_tables=3).num_pattern_tables == 8

    def test_storage_accounting(self):
        predictor = GAg(history_length=10)
        assert predictor.storage_bits() == (1 << 10) * 2 + 10
        per_address = PAg(history_length=8, log_histories=4)
        assert per_address.storage_bits() == (1 << 8) * 2 + 16 * 8

    def test_history_length_cap(self):
        with pytest.raises(ValueError, match="refusing"):
            TwoLevel(history_length=30)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TwoLevel(history_length=0)
        with pytest.raises(ValueError):
            TwoLevel(counter_width=0)
        with pytest.raises(ValueError):
            TwoLevel(log_histories=-1)

    def test_metadata_scheme(self):
        metadata = PAs(history_length=7).metadata_stats()
        assert metadata["scheme"] == "PAs"
        assert metadata["history_length"] == 7
