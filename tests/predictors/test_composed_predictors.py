"""Behavioural tests for tournament, gskew, filters and loop predictors —
the composability half of the examples library."""

import pytest

from repro.core.branch import Branch
from repro.core.predictor import Predictor
from repro.core.simulator import simulate
from repro.predictors import (
    AlwaysNotTaken,
    AlwaysTaken,
    Bimodal,
    ConditionalOnlyFilter,
    GShare,
    LoopPredictor,
    NeverTakenFilter,
    Tournament,
    TwoBcGskew,
    WithLoopPredictor,
    mcfarling_tournament,
)
from tests.conftest import OPCODE_COND_JUMP, OPCODE_JUMP, make_branch, make_trace


class SpyPredictor(Predictor):
    """Fixed prediction; records the branches given to train/track."""

    def __init__(self, prediction: bool):
        self.prediction = prediction
        self.trained: list[Branch] = []
        self.tracked: list[Branch] = []

    def predict(self, ip):
        return self.prediction

    def train(self, branch):
        self.trained.append(branch)

    def track(self, branch):
        self.tracked.append(branch)


class TestTournament:
    def test_meta_selects_component(self):
        # meta predicts False -> bp0 provides; True -> bp1 provides.
        bp0 = SpyPredictor(True)
        bp1 = SpyPredictor(False)
        chooser_0 = Tournament(SpyPredictor(False), bp0, bp1)
        chooser_1 = Tournament(SpyPredictor(True), bp0, bp1)
        assert chooser_0.predict(0x4000) is True
        assert chooser_1.predict(0x4000) is False

    def test_meta_trained_only_on_disagreement(self):
        meta = SpyPredictor(False)
        agree = Tournament(meta, SpyPredictor(True), SpyPredictor(True))
        agree.train(make_branch(taken=True))
        assert meta.trained == []

        meta2 = SpyPredictor(False)
        disagree = Tournament(meta2, SpyPredictor(True), SpyPredictor(False))
        disagree.train(make_branch(taken=True))
        assert len(meta2.trained) == 1

    def test_meta_branch_outcome_encodes_winner(self):
        # Listing 4 line 36: outcome = (prediction[1] == taken).
        meta = SpyPredictor(False)
        tournament = Tournament(meta, SpyPredictor(True), SpyPredictor(False))
        tournament.train(make_branch(taken=True))   # bp1 wrong
        assert meta.trained[0].taken is False
        tournament.track(make_branch(taken=True))
        tournament.train(make_branch(taken=False))  # bp1 right
        assert meta.trained[1].taken is True

    def test_all_components_tracked(self):
        meta, bp0, bp1 = (SpyPredictor(False) for _ in range(3))
        tournament = Tournament(meta, bp0, bp1)
        branch = make_branch(taken=True)
        tournament.track(branch)
        assert meta.tracked == [branch]
        assert bp0.tracked == [branch]
        assert bp1.tracked == [branch]

    def test_base_predictors_always_trained(self):
        meta, bp0, bp1 = (SpyPredictor(True) for _ in range(3))
        tournament = Tournament(meta, bp0, bp1)
        tournament.train(make_branch(taken=False))
        assert len(bp0.trained) == 1
        assert len(bp1.trained) == 1

    def test_prediction_cache_within_branch(self):
        # Listing 4 caches sub-predictions between predict and train.
        calls = []

        class CountingPredictor(SpyPredictor):
            def predict(self, ip):
                calls.append(ip)
                return super().predict(ip)

        tournament = Tournament(CountingPredictor(False),
                                SpyPredictor(True), SpyPredictor(True))
        tournament.predict(0x4000)
        tournament.predict(0x4000)        # cached: no new meta predict
        assert calls == [0x4000]
        tournament.track(make_branch())   # cache invalidated
        tournament.predict(0x4000)
        assert calls == [0x4000, 0x4000]

    def test_nested_metadata(self):
        metadata = mcfarling_tournament().metadata_stats()
        assert metadata["predictor_0"]["name"] == "repro Bimodal"
        assert metadata["predictor_1"]["name"] == "repro GShare"
        assert "metapredictor" in metadata

    def test_beats_both_components_on_mixed_workload(self, medium_trace):
        tournament = simulate(mcfarling_tournament(log_table_size=12),
                              medium_trace)
        bimodal = simulate(Bimodal(log_table_size=12), medium_trace)
        assert tournament.mispredictions < bimodal.mispredictions


class TestTwoBcGskew:
    def test_majority_vote(self):
        predictor = TwoBcGskew(log_bank_size=8)
        branch = make_branch(ip=0x40_0010, taken=True)
        for _ in range(10):
            predictor.predict(branch.ip)
            predictor.train(branch)
            predictor.track(branch)
        assert predictor.predict(branch.ip) is True

    def test_partial_update_preserves_agreeing_banks(self):
        # After heavy taken training, one not-taken outcome (correct
        # prediction was impossible) must not wipe all banks: the
        # prediction recovers immediately.
        predictor = TwoBcGskew(log_bank_size=8)
        branch = make_branch(ip=0x40_0010, taken=True)
        for _ in range(12):
            predictor.predict(branch.ip)
            predictor.train(branch)
            predictor.track(branch)
        flip = branch.with_outcome(False)
        predictor.predict(flip.ip)
        predictor.train(flip)
        predictor.track(flip)
        assert predictor.predict(branch.ip) is True

    def test_beats_bimodal_on_history_patterns(self, medium_trace):
        gskew = simulate(TwoBcGskew(log_bank_size=12), medium_trace)
        bimodal = simulate(Bimodal(log_table_size=12), medium_trace)
        assert gskew.mispredictions < bimodal.mispredictions

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TwoBcGskew(log_bank_size=1)
        with pytest.raises(ValueError):
            TwoBcGskew(history_length_g0=0)

    def test_storage_bits(self):
        assert TwoBcGskew(log_bank_size=10).storage_bits() == 4 * 1024 * 2


class TestConditionalOnlyFilter:
    def test_drops_unconditional_tracks(self):
        inner = SpyPredictor(True)
        filtered = ConditionalOnlyFilter(inner)
        filtered.track(make_branch(opcode=OPCODE_JUMP, taken=True))
        assert inner.tracked == []
        conditional = make_branch(opcode=OPCODE_COND_JUMP, taken=True)
        filtered.track(conditional)
        assert inner.tracked == [conditional]

    def test_train_and_predict_pass_through(self):
        inner = SpyPredictor(False)
        filtered = ConditionalOnlyFilter(inner)
        assert filtered.predict(0x4000) is False
        filtered.train(make_branch())
        assert len(inner.trained) == 1

    def test_matches_simulator_option(self, server_trace):
        from repro.core.simulator import SimulationConfig

        direct = simulate(GShare(history_length=8, log_table_size=10),
                          server_trace,
                          SimulationConfig(track_only_conditional=True))
        wrapped = simulate(
            ConditionalOnlyFilter(GShare(history_length=8, log_table_size=10)),
            server_trace)
        assert direct.mispredictions == wrapped.mispredictions


class TestNeverTakenFilter:
    def test_never_taken_branch_never_reaches_inner(self):
        inner = SpyPredictor(True)
        filtered = NeverTakenFilter(inner)
        branch = make_branch(ip=0x9000, taken=False)
        for _ in range(5):
            assert filtered.predict(0x9000) is False
            filtered.train(branch)
            filtered.track(branch)
        assert inner.trained == []
        assert inner.tracked == []

    def test_branch_graduates_on_first_taken(self):
        inner = SpyPredictor(True)
        filtered = NeverTakenFilter(inner)
        filtered.train(make_branch(ip=0x9000, taken=False))
        filtered.train(make_branch(ip=0x9000, taken=True))  # graduates
        assert len(inner.trained) == 1
        filtered.train(make_branch(ip=0x9000, taken=False))
        assert len(inner.trained) == 2  # now always forwarded

    def test_does_not_hurt_accuracy_much(self, medium_trace):
        plain = simulate(Bimodal(log_table_size=12), medium_trace)
        filtered = simulate(NeverTakenFilter(Bimodal(log_table_size=12)),
                            medium_trace)
        # The filter only mispredicts each never-taken branch's first
        # taken occurrence; totals stay in the same ballpark.
        assert filtered.mispredictions <= plain.mispredictions * 1.2

    def test_execution_stats(self):
        filtered = NeverTakenFilter(Bimodal(log_table_size=4))
        filtered.train(make_branch(ip=0x9000, taken=False))
        stats = filtered.execution_stats()
        assert stats["filtered_trainings"] == 1
        assert stats["graduated_branches"] == 0


class TestLoopPredictor:
    def _run_loop(self, predictor, trips, iterations, ip=0x40_0010):
        for _ in range(iterations):
            for i in range(trips):
                taken = i + 1 < trips
                branch = make_branch(ip=ip, taken=taken)
                predictor.predict(ip)
                predictor.train(branch)
                predictor.track(branch)

    def test_learns_fixed_trip_count(self):
        predictor = LoopPredictor()
        self._run_loop(predictor, trips=7, iterations=4)
        # Next execution: predicts taken 6 times then not-taken.
        outcomes = []
        for i in range(7):
            outcomes.append(predictor.predict(0x40_0010))
            branch = make_branch(ip=0x40_0010, taken=i + 1 < 7)
            predictor.train(branch)
            predictor.track(branch)
        assert outcomes == [True] * 6 + [False]
        assert predictor.is_valid()

    def test_unstable_trip_count_stays_invalid(self):
        predictor = LoopPredictor()
        for trips in (3, 5, 4, 6, 3, 7):
            self._run_loop(predictor, trips=trips, iterations=1)
        predictor.predict(0x40_0010)
        assert not predictor.is_valid()

    def test_with_loop_wrapper_beats_plain_on_loopy_trace(self):
        # One loop with a 9-iteration fixed trip count, many repeats.
        ips, taken = [], []
        for _ in range(120):
            for i in range(9):
                ips.append(0x40_0010)
                taken.append(i + 1 < 9)
        trace = make_trace(ips, taken)
        plain = simulate(Bimodal(log_table_size=10), trace)
        wrapped = simulate(WithLoopPredictor(Bimodal(log_table_size=10)),
                           trace)
        assert wrapped.mispredictions < plain.mispredictions / 3

    def test_override_statistics(self):
        main = Bimodal(log_table_size=10)
        wrapped = WithLoopPredictor(main)
        self._run_loop(wrapped, trips=5, iterations=30)
        assert wrapped.execution_stats()["loop_overrides"] > 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LoopPredictor(log_table_size=-1)
        with pytest.raises(ValueError):
            LoopPredictor(confidence_threshold=0)
