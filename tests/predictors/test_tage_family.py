"""Behavioural tests for perceptron, TAGE and BATAGE."""

import pytest

from repro.core.simulator import simulate
from repro.predictors import (
    Batage,
    Bimodal,
    GShare,
    HashedPerceptron,
    Tage,
    dual_counter_confidence,
    geometric_history_lengths,
)
from repro.predictors.batage import HIGH, LOW, MEDIUM
from tests.conftest import make_branch, make_trace


class TestGeometricSeries:
    def test_endpoints(self):
        lengths = geometric_history_lengths(7, 5, 130)
        assert lengths[0] == 5
        assert lengths[-1] == 130

    def test_strictly_increasing(self):
        lengths = geometric_history_lengths(10, 3, 200)
        assert all(b > a for a, b in zip(lengths, lengths[1:]))

    def test_single_table(self):
        assert geometric_history_lengths(1, 5, 130) == (5,)

    def test_dense_series_resolves_collisions(self):
        # min=2, max=5 over 8 tables forces rounding collisions; the
        # series must stay strictly increasing anyway.
        lengths = geometric_history_lengths(8, 2, 5)
        assert all(b > a for a, b in zip(lengths, lengths[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_history_lengths(0, 5, 130)
        with pytest.raises(ValueError):
            geometric_history_lengths(3, 10, 5)
        with pytest.raises(ValueError):
            geometric_history_lengths(3, 0, 5)


class TestHashedPerceptron:
    def test_learns_long_period_pattern(self):
        # Period-5 pattern: 3 taken, 2 not-taken.
        ips = [0x4000] * 500
        taken = [(i % 5) < 3 for i in range(500)]
        trace = make_trace(ips, taken)
        result = simulate(HashedPerceptron(log_table_size=10), trace)
        assert result.accuracy > 0.9

    def test_threshold_training_counted(self, small_trace):
        predictor = HashedPerceptron(log_table_size=10)
        simulate(predictor, small_trace)
        stats = predictor.execution_stats()
        assert stats["threshold_trainings"] > 0
        assert stats["mispredict_trainings"] > 0

    def test_adaptive_theta_moves(self, medium_trace):
        predictor = HashedPerceptron(log_table_size=10, theta=60)
        simulate(predictor, medium_trace)
        # Far-too-high theta must be pulled down by the controller.
        assert predictor.theta < 60

    def test_fixed_theta_stays(self, small_trace):
        predictor = HashedPerceptron(log_table_size=10, theta=13,
                                     adaptive_theta=False)
        simulate(predictor, small_trace)
        assert predictor.theta == 13

    def test_weights_saturate(self):
        predictor = HashedPerceptron(log_table_size=6, weight_width=4,
                                     adaptive_theta=False, theta=100)
        branch = make_branch(ip=0x4444, taken=True)
        for _ in range(100):
            predictor.predict(branch.ip)
            predictor.train(branch)
            predictor.track(branch)
        assert all(
            max(table) <= 7 and min(table) >= -8
            for table in predictor._tables
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HashedPerceptron(log_table_size=0)
        with pytest.raises(ValueError):
            HashedPerceptron(weight_width=1)
        with pytest.raises(ValueError):
            HashedPerceptron(history_lengths=())
        with pytest.raises(ValueError):
            HashedPerceptron(history_lengths=(0, -1))

    def test_metadata(self):
        metadata = HashedPerceptron().metadata_stats()
        assert "history_lengths" in metadata
        assert "theta" in metadata


class TestTage:
    def _small(self, **kwargs):
        defaults = dict(num_tables=4, log_base_size=10, log_tagged_size=7,
                        min_history=4, max_history=40)
        defaults.update(kwargs)
        return Tage(**defaults)

    def test_beats_gshare_on_program_workload(self, medium_trace):
        tage = simulate(Tage(), medium_trace)
        gshare = simulate(GShare(), medium_trace)
        assert tage.mispredictions < gshare.mispredictions

    def test_provider_distribution_recorded(self, small_trace):
        predictor = self._small()
        simulate(predictor, small_trace)
        hits = predictor.execution_stats()["provider_hits"]
        assert hits["base"] > 0
        assert sum(hits.values()) == small_trace.num_conditional_branches

    def test_allocations_happen(self, small_trace):
        predictor = self._small()
        simulate(predictor, small_trace)
        assert predictor.execution_stats()["allocations"] > 0

    def test_long_pattern_uses_tagged_tables(self):
        # Period-9 pattern needs ~9 history bits: the tagged tables must
        # end up providing most predictions for this branch.
        predictor = self._small()
        ips = [0x4000] * 800
        taken = [(i % 9) < 5 for i in range(800)]
        trace = make_trace(ips, taken)
        result = simulate(predictor, trace)
        hits = predictor.execution_stats()["provider_hits"]
        tagged = sum(v for k, v in hits.items() if k != "base")
        assert tagged > hits["base"]
        assert result.accuracy > 0.85

    def test_u_reset_period_honored(self):
        predictor = self._small(u_reset_period=100)
        branch = make_branch(ip=0x4000, taken=True)
        table = predictor._tables[0]
        table.update_useful(5, 3)
        for i in range(100):
            b = branch.with_outcome(i % 2 == 0)
            predictor.predict(b.ip)
            predictor.train(b)
            predictor.track(b)
        # One graceful reset happened: the high bit must be cleared.
        assert int(table.useful[5]) <= 1

    def test_tag_widths_validation(self):
        with pytest.raises(ValueError, match="one tag width"):
            Tage(num_tables=3, tag_widths=(8, 9))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Tage(num_tables=0)
        with pytest.raises(ValueError):
            Tage(u_reset_period=0)

    def test_metadata_lists_structural_params(self):
        metadata = self._small().metadata_stats()
        assert len(metadata["history_lengths"]) == 4
        assert len(metadata["tag_widths"]) == 4

    def test_storage_bits_positive(self):
        assert self._small().storage_bits() > 0


class TestDualCounterConfidence:
    def test_high_confidence(self):
        assert dual_counter_confidence(7, 0) == HIGH
        assert dual_counter_confidence(0, 7) == HIGH
        assert dual_counter_confidence(5, 1) == HIGH

    def test_medium_confidence(self):
        assert dual_counter_confidence(1, 0) == MEDIUM
        assert dual_counter_confidence(3, 2) == MEDIUM

    def test_low_confidence_ties(self):
        assert dual_counter_confidence(0, 0) == LOW
        assert dual_counter_confidence(3, 3) == LOW

    def test_boundary_formula(self):
        # HIGH iff 2*min + 1 < max, i.e. (1+min)/(2+n0+n1) < 1/3.
        for n1 in range(8):
            for n0 in range(8):
                low, high = min(n1, n0), max(n1, n0)
                expected = (HIGH if 2 * low + 1 < high
                            else LOW if low == high else MEDIUM)
                assert dual_counter_confidence(n1, n0) == expected


class TestBatage:
    def _small(self, **kwargs):
        defaults = dict(num_tables=4, log_base_size=10, log_tagged_size=7,
                        min_history=4, max_history=40)
        defaults.update(kwargs)
        return Batage(**defaults)

    def test_beats_bimodal_on_program_workload(self, medium_trace):
        batage = simulate(self._small(log_tagged_size=9), medium_trace)
        bimodal = simulate(Bimodal(), medium_trace)
        assert batage.mispredictions < bimodal.mispredictions

    def test_deterministic_lfsr_randomness(self, small_trace):
        a = simulate(self._small(), small_trace)
        b = simulate(self._small(), small_trace)
        assert a.mispredictions == b.mispredictions

    def test_different_seed_may_differ_but_stays_deterministic(self,
                                                               small_trace):
        a = simulate(self._small(lfsr_seed=1), small_trace)
        b = simulate(self._small(lfsr_seed=1), small_trace)
        assert a.mispredictions == b.mispredictions

    def test_allocation_and_decay_statistics(self, medium_trace):
        predictor = self._small()
        simulate(predictor, medium_trace)
        stats = predictor.execution_stats()
        assert stats["allocations"] > 0
        assert stats["controlled_decays"] >= 0
        assert 0 <= stats["cat"] < predictor.cat_max

    def test_dual_counter_update_decays_opposite_at_saturation(self):
        from repro.predictors.batage import _DualCounterTable

        table = _DualCounterTable(log_size=2, tag_width=4, counter_max=3)
        for _ in range(5):
            table.update(0, True)
        assert table.n_taken[0] == 3
        table.n_not_taken[0] = 2
        table.update(0, True)  # saturated: decays the other side
        assert table.n_taken[0] == 3
        assert table.n_not_taken[0] == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Batage(num_tables=0)
        with pytest.raises(ValueError):
            Batage(counter_max=0)
        with pytest.raises(ValueError):
            Batage(cat_max=0)
        with pytest.raises(ValueError):
            Batage(num_tables=2, tag_widths=(8,))

    def test_metadata(self):
        metadata = self._small().metadata_stats()
        assert metadata["name"] == "repro BATAGE"
        assert "cat_max" in metadata
