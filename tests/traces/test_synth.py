"""Tests for the synthetic workload generator and suite definitions."""

import numpy as np
import pytest

from repro.sbbt.packet import MAX_GAP
from repro.traces.synth import SyntheticProgram, WorkloadProfile, generate_trace
from repro.traces.workloads import (
    CBP5_EVALUATION_SUITE,
    CBP5_TRAINING_SUITE,
    DPC3_SUITE,
    PROFILES,
    SuiteSpec,
    generate_suite,
    generate_workload,
    write_suite,
)


class TestGenerator:
    def test_deterministic(self):
        a = generate_workload("short_mobile", seed=5, num_branches=3000)
        b = generate_workload("short_mobile", seed=5, num_branches=3000)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_workload("short_mobile", seed=1, num_branches=3000)
        b = generate_workload("short_mobile", seed=2, num_branches=3000)
        assert a != b

    def test_exact_branch_count(self):
        trace = generate_workload("short_server", seed=3, num_branches=4321)
        assert len(trace) == 4321

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            generate_workload("no_such_category")

    @pytest.mark.parametrize("category", sorted(PROFILES))
    def test_branch_density_in_papers_range(self, category):
        # Hennessy & Patterson's 15-25 %, cited by the paper; allow a
        # little slack for the server profiles' longer blocks.
        trace = generate_workload(category, seed=7, num_branches=20000)
        density = len(trace) / trace.num_instructions
        assert 0.08 <= density <= 0.30

    @pytest.mark.parametrize("category", sorted(PROFILES))
    def test_gaps_fit_sbbt_field(self, category):
        trace = generate_workload(category, seed=7, num_branches=20000)
        assert int(trace.gaps.max()) <= MAX_GAP

    def test_traces_are_sbbt_valid(self):
        from repro.sbbt.writer import encode_payload
        from repro.sbbt.reader import decode_payload

        trace = generate_workload("long_server", seed=4, num_branches=5000)
        assert decode_payload(encode_payload(trace)) == trace

    def test_branch_mix_includes_calls_and_returns(self):
        trace = generate_workload("short_server", seed=1, num_branches=30000)
        opcodes = trace.opcodes
        calls = int(((opcodes >> 2) == 0b10).sum())
        returns = int(((opcodes >> 2) == 0b01).sum())
        assert calls > 0
        assert returns > 0
        assert abs(calls - returns) <= max(8, calls // 2)

    def test_conditional_majority(self):
        trace = generate_workload("spec17_like", seed=1, num_branches=20000)
        assert trace.num_conditional_branches / len(trace) > 0.9

    def test_taken_rate_program_like(self):
        trace = generate_workload("short_mobile", seed=2, num_branches=20000)
        assert 0.4 <= float(trace.taken.mean()) <= 0.9

    def test_static_site_count_scales_with_footprint(self):
        mobile = generate_workload("short_mobile", seed=3, num_branches=30000)
        server = generate_workload("short_server", seed=3, num_branches=30000)
        assert (len(np.unique(server.ips)) > len(np.unique(mobile.ips)))

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(num_functions=0)
        with pytest.raises(ValueError):
            WorkloadProfile(biased_fraction=0.8, pattern_fraction=0.5)
        with pytest.raises(ValueError):
            WorkloadProfile(mean_block_length=5000)

    def test_negative_branch_count_rejected(self):
        program = SyntheticProgram(PROFILES["short_mobile"], 1)
        with pytest.raises(ValueError):
            list(program.events(-1))

    def test_zero_branches(self):
        trace = generate_trace(PROFILES["short_mobile"], 1, 0)
        assert len(trace) == 0

    def test_phase_change_redraws_behaviour(self):
        profile = WorkloadProfile(num_functions=8, phase_period=2000)
        trace = generate_trace(profile, 5, 12000)
        # Phases make the taken-rate drift between halves more often
        # than not; just assert the machinery produced a valid trace.
        assert len(trace) == 12000


class TestSuites:
    def test_trace_plans_deterministic(self):
        plans_a = CBP5_TRAINING_SUITE.trace_plans()
        plans_b = CBP5_TRAINING_SUITE.trace_plans()
        assert plans_a == plans_b

    def test_training_suite_shape(self):
        plans = CBP5_TRAINING_SUITE.trace_plans()
        assert len(plans) == 20  # 4 categories x 5 traces
        names = [name for name, *_ in plans]
        assert "SHORT_MOBILE-1" in names
        assert "LONG_SERVER-5" in names

    def test_length_spread(self):
        plans = CBP5_TRAINING_SUITE.trace_plans()
        sizes = [branches for *_, branches in plans]
        assert max(sizes) / min(sizes) >= 4

    def test_evaluation_suite_larger(self):
        assert (len(CBP5_EVALUATION_SUITE.trace_plans())
                > len(CBP5_TRAINING_SUITE.trace_plans()))

    def test_dpc3_suite_is_spec_like(self):
        assert all(category == "spec17_like"
                   for _, category, *_ in DPC3_SUITE.trace_plans())

    def test_generate_suite(self):
        spec = SuiteSpec(name="mini", categories=("short_mobile",),
                         traces_per_category=2, branches_per_trace=1500,
                         seed=9)
        suite = generate_suite(spec)
        assert set(suite) == {"SHORT_MOBILE-1", "SHORT_MOBILE-2"}
        assert all(len(trace) >= 1000 for trace in suite.values())

    def test_write_suite(self, tmp_path):
        spec = SuiteSpec(name="mini", categories=("short_mobile",),
                         traces_per_category=2, branches_per_trace=1200,
                         seed=9)
        messages = []
        paths = write_suite(spec, tmp_path, suffix=".sbbt.gz",
                            progress=messages.append)
        assert len(paths) == 2
        assert all(path.exists() for path in paths)
        assert len(messages) == 2

        from repro.sbbt.reader import read_trace

        loaded = read_trace(paths[0])
        assert len(loaded) >= 1000
