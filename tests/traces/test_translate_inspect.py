"""Tests for the trace translators and the inspection tool."""

import pytest

from repro.baselines.champsim import (
    instruction_trace_from_branches,
    write_instruction_trace,
)
from repro.baselines.cbp5 import write_bt9
from repro.sbbt.reader import read_trace
from repro.sbbt.trace import TraceData
from repro.sbbt.writer import write_trace
from repro.traces.inspect import analyze_trace
from repro.traces.translate import (
    bt9_to_sbbt,
    champsim_to_sbbt,
    sbbt_to_bt9,
)
from tests.conftest import OPCODE_CALL, OPCODE_COND_JUMP, make_trace


class TestTranslators:
    def test_bt9_to_sbbt_round_trip(self, tmp_path, server_trace):
        bt9 = tmp_path / "t.bt9.gz"
        sbbt = tmp_path / "t.sbbt.xz"
        write_bt9(bt9, server_trace)
        report = bt9_to_sbbt(bt9, sbbt)
        assert read_trace(sbbt) == server_trace
        assert report.num_branches == len(server_trace)
        assert report.source_bytes == bt9.stat().st_size
        assert report.destination_bytes == sbbt.stat().st_size

    def test_sbbt_to_bt9_round_trip(self, tmp_path, small_trace):
        sbbt = tmp_path / "t.sbbt"
        bt9 = tmp_path / "t.bt9"
        write_trace(sbbt, small_trace)
        sbbt_to_bt9(sbbt, bt9)
        report = bt9_to_sbbt(bt9, tmp_path / "back.sbbt")
        assert read_trace(tmp_path / "back.sbbt") == small_trace
        assert report.size_ratio > 0

    def test_champsim_to_sbbt(self, tmp_path, server_trace):
        champsim = tmp_path / "t.champsim.xz"
        sbbt = tmp_path / "t.sbbt.xz"
        write_instruction_trace(
            champsim, instruction_trace_from_branches(server_trace))
        report = champsim_to_sbbt(champsim, sbbt)
        translated = read_trace(sbbt)
        assert len(translated) == len(server_trace)
        assert translated.num_instructions == server_trace.num_instructions
        # The per-instruction source should be larger than the branch-only
        # destination (Table I's DPC3 direction).
        assert report.size_ratio > 1.0


class TestInspect:
    def test_mixed_trace_statistics(self):
        trace = make_trace(
            [0x4000, 0x4010, 0x4000, 0x4020],
            [True, True, False, True],
            opcodes=[int(OPCODE_COND_JUMP), int(OPCODE_CALL),
                     int(OPCODE_COND_JUMP), int(OPCODE_COND_JUMP)],
            gaps=[2, 0, 5, 1],
        )
        stats = analyze_trace(trace)
        assert stats.num_branches == 4
        assert stats.num_conditional == 3
        assert stats.num_calls == 1
        assert stats.num_static_branches == 3
        assert stats.taken_fraction == pytest.approx(0.75)
        assert stats.max_gap == 5
        assert stats.gap_fits_12_bits is True
        assert stats.branch_density == pytest.approx(4 / 12)

    def test_empty_trace(self):
        stats = analyze_trace(TraceData.empty())
        assert stats.num_branches == 0
        assert stats.gap_fits_12_bits is True

    def test_json_and_summary(self, small_trace):
        stats = analyze_trace(small_trace)
        payload = stats.to_json()
        assert payload["num_branches"] == len(small_trace)
        text = stats.summary()
        assert "instructions" in text
        assert "12-bit safe: True" in text
