"""Tests for the Python-callable tracer (the PIN-module substitute)."""

import pytest

from repro.core.simulator import simulate
from repro.predictors import Bimodal, GShare
from repro.sbbt.reader import decode_payload
from repro.sbbt.writer import encode_payload
from repro.traces.inspect import analyze_trace
from repro.traces.tracer import PythonTracer, trace_python_function


def loop_program(n):
    total = 0
    for i in range(n):
        if i % 2 == 0:
            total += i
        else:
            total -= 1
    return total


def helper(x):
    if x > 2:
        return x * 2
    return x


def calling_program(n):
    total = 0
    for i in range(n):
        total += helper(i)
    return total


class TestTracer:
    def test_returns_function_result(self):
        result, _ = trace_python_function(loop_program, 40)
        assert result == loop_program(40)

    def test_produces_valid_sbbt_trace(self):
        _, trace = trace_python_function(loop_program, 60)
        assert decode_payload(encode_payload(trace)) == trace

    def test_loop_backedge_dominates(self):
        _, trace = trace_python_function(loop_program, 100)
        statistics = analyze_trace(trace)
        assert statistics.num_branches > 100
        assert statistics.taken_fraction > 0.5
        assert statistics.gap_fits_12_bits

    def test_calls_and_returns_recorded(self):
        _, trace = trace_python_function(calling_program, 30)
        statistics = analyze_trace(trace)
        assert statistics.num_calls >= 30
        assert statistics.num_returns >= 30
        assert abs(statistics.num_calls - statistics.num_returns) <= 1

    def test_traced_control_flow_is_predictable(self):
        # The alternating if/else of loop_program is exactly the pattern
        # history predictors exist for.
        _, trace = trace_python_function(loop_program, 400)
        gshare = simulate(GShare(history_length=8, log_table_size=10),
                          trace)
        bimodal = simulate(Bimodal(log_table_size=10), trace)
        assert gshare.mispredictions < bimodal.mispredictions / 2

    def test_deterministic_for_deterministic_program(self):
        _, trace_a = trace_python_function(loop_program, 80)
        _, trace_b = trace_python_function(loop_program, 80)
        assert trace_a == trace_b

    def test_tracer_restores_previous_trace_function(self):
        import sys

        sentinel = sys.gettrace()
        trace_python_function(loop_program, 5)
        assert sys.gettrace() is sentinel

    def test_exceptions_propagate_and_tracing_stops(self):
        import sys

        def boom():
            raise RuntimeError("expected")

        tracer = PythonTracer()
        with pytest.raises(RuntimeError, match="expected"):
            tracer.run(boom)
        assert sys.gettrace() is None or sys.gettrace() is not tracer._trace

    def test_incremental_event_count(self):
        tracer = PythonTracer()
        tracer.run(loop_program, 10)
        first = tracer.num_events
        tracer.run(loop_program, 10)
        assert tracer.num_events > first

    def test_multiple_files_get_distinct_address_ranges(self):
        # helper and the test functions live in this file; trace through
        # a stdlib function too to force a second file base.
        import json

        def mixed():
            loop_program(5)
            json.dumps({"a": 1})

        _, trace = trace_python_function(mixed)
        spread = int(trace.ips.max()) - int(trace.ips.min())
        assert spread > 0x10_0000  # distinct per-file bases
