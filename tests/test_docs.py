"""The documentation must execute: run ``tools/check_docs.py`` in-process.

This makes the CI docs job's guarantees part of tier-1 — every
``>>>`` example in ``docs/*.md`` passes as a doctest, every other
Python block compiles, and ``docs/cli.md`` mentions every registered
``mbp`` subcommand.
"""

import importlib.util
import sys
from pathlib import Path

CHECKER = Path(__file__).parent.parent / "tools" / "check_docs.py"


def load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_execute_and_cli_reference_is_complete(capsys):
    checker = load_checker()
    status = checker.main()
    output = capsys.readouterr().out
    assert status == 0, f"tools/check_docs.py failed:\n{output}"
    assert "OK:" in output


def test_checker_is_not_vacuous():
    """The checker must actually find blocks to run."""
    checker = load_checker()
    total = sum(
        1
        for path in sorted(checker.DOCS.glob("*.md"))
        for _ in checker.iter_python_blocks(path.read_text())
    )
    assert total >= 5, "docs lost their executable python blocks?"


def test_checker_rejects_a_wrong_example(tmp_path):
    checker = load_checker()
    problems = checker.check_block(
        checker.DOCS / "fake.md", 1, ">>> 1 + 1\n3\n")
    assert problems and "doctest failure" in problems[0]
