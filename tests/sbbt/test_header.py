"""Tests for the SBBT header (paper Fig. 1)."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import TraceFormatError
from repro.sbbt.header import (
    FORMAT_VERSION,
    HEADER_SIZE,
    SIGNATURE,
    SbbtHeader,
)


class TestLayout:
    def test_header_is_24_bytes(self):
        # The body text of Section IV-C fixes 192 bits (the figure
        # caption's 196 is a typo; see DESIGN.md).
        assert HEADER_SIZE == 24
        assert len(SbbtHeader(10, 2).encode()) == 24

    def test_signature_is_sbbt_newline(self):
        assert SIGNATURE == b"SBBT\n"
        assert SbbtHeader(0, 0).encode()[:5] == b"SBBT\n"

    def test_version_bytes_follow_signature(self):
        payload = SbbtHeader(0, 0, version=(1, 2, 3)).encode()
        assert payload[5:8] == bytes([1, 2, 3])

    def test_counts_little_endian(self):
        payload = SbbtHeader(0x1122334455667788, 0x0102030405060708,
                             version=(1, 0, 0)).encode()
        assert payload[8:16] == bytes.fromhex("8877665544332211")
        assert payload[16:24] == bytes.fromhex("0807060504030201")

    def test_default_version_is_paper_version(self):
        assert FORMAT_VERSION == (1, 0, 0)


class TestRoundTrip:
    @given(st.integers(min_value=0, max_value=2**63 - 1),
           st.integers(min_value=0, max_value=2**63 - 1))
    def test_encode_decode(self, instructions, branches):
        if branches > instructions:
            instructions, branches = branches, instructions
        header = SbbtHeader(instructions, branches)
        assert SbbtHeader.decode(header.encode()) == header

    def test_read_from_stream(self):
        header = SbbtHeader(100, 20)
        stream = io.BytesIO(header.encode() + b"extra")
        assert SbbtHeader.read_from(stream) == header
        assert stream.read() == b"extra"

    def test_version_string(self):
        assert SbbtHeader(1, 1, version=(1, 0, 0)).version_string() == "1.0.0"


class TestValidation:
    def test_truncated_header(self):
        with pytest.raises(TraceFormatError, match="truncated"):
            SbbtHeader.decode(b"SBBT\n")

    def test_bad_signature(self):
        payload = bytearray(SbbtHeader(1, 1).encode())
        payload[0] = ord("X")
        with pytest.raises(TraceFormatError, match="signature"):
            SbbtHeader.decode(bytes(payload))

    def test_unsupported_major_version(self):
        payload = bytearray(SbbtHeader(1, 1).encode())
        payload[5] = 2
        with pytest.raises(TraceFormatError, match="major version"):
            SbbtHeader.decode(bytes(payload))

    def test_more_branches_than_instructions(self):
        with pytest.raises(ValueError, match="more branches"):
            SbbtHeader(num_instructions=5, num_branches=6)

    def test_negative_counts(self):
        with pytest.raises(ValueError):
            SbbtHeader(-1, 0)
        with pytest.raises(ValueError):
            SbbtHeader(0, -1)

    def test_bad_version_tuple(self):
        with pytest.raises(ValueError):
            SbbtHeader(1, 1, version=(1, 0))
        with pytest.raises(ValueError):
            SbbtHeader(1, 1, version=(256, 0, 0))

    def test_decode_count_inconsistency_raises_format_error(self):
        import struct

        payload = struct.pack("<5s3BQQ", b"SBBT\n", 1, 0, 0, 5, 6)
        with pytest.raises(TraceFormatError):
            SbbtHeader.decode(payload)
