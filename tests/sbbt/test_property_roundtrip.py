"""Property-based SBBT round-trip: write(stream) then read gives back
identical packets, for arbitrary valid branch streams, every branch type,
and every compression mode.

Uses `hypothesis` when the environment provides it; otherwise the same
properties run against streams drawn from a seeded ``random.Random``, so
the test file never silently skips.
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

import pytest

from repro.core.branch import Branch, BranchType, Opcode
from repro.sbbt.digest import trace_digest
from repro.sbbt.packet import MAX_GAP, SbbtPacket, is_encodable_address
from repro.sbbt.reader import decode_payload, read_trace
from repro.sbbt.trace import TraceData
from repro.sbbt.writer import encode_payload, write_trace

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on the environment
    HAVE_HYPOTHESIS = False

SUFFIXES = [".sbbt", ".sbbt.gz", ".sbbt.xz"]

#: All 12 valid 4-bit opcodes (base type 0b11 is reserved).
VALID_OPCODES = [
    Opcode.encode(conditional=cond, indirect=ind, branch_type=btype)
    for btype in BranchType
    for cond in (False, True)
    for ind in (False, True)
]

_ADDR_BITS = 52


def canonical_address(raw52: int) -> int:
    """Map a 52-bit value onto the canonical 64-bit address it encodes.

    Bit 51 sign-extends through bits 63..52, covering both the user half
    (upper bits zero) and the kernel half (upper bits one).
    """
    raw52 &= (1 << _ADDR_BITS) - 1
    if raw52 >> (_ADDR_BITS - 1):
        return raw52 | (((1 << 12) - 1) << _ADDR_BITS)
    return raw52


def build_packet(opcode: Opcode, taken: bool, ip_raw: int,
                 target_raw: int, gap: int) -> SbbtPacket:
    """A packet from primitive draws, adjusted to satisfy the two SBBT
    validity rules (so every draw maps to *some* valid packet)."""
    if not opcode.is_conditional:
        taken = True  # rule 1: unconditional branches are always taken
    target = canonical_address(target_raw)
    if opcode.is_conditional and opcode.is_indirect and not taken:
        target = 0  # rule 2: no resolved target on a not-taken cond-indirect
    return SbbtPacket(
        branch=Branch(ip=canonical_address(ip_raw), target=target,
                      opcode=opcode, taken=taken),
        gap=gap,
    )


def roundtrip_and_check(packets: list[SbbtPacket], suffix: str) -> None:
    """The property: packets -> TraceData -> file -> identical packets."""
    trace = TraceData.from_packets(packets)

    # In-memory canonical encoding round-trips without touching disk...
    decoded = decode_payload(encode_payload(trace))
    assert decoded == trace

    # ...and through an actual (optionally compressed) file.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"t{suffix}"
        write_trace(path, trace)
        loaded = read_trace(path)
        assert loaded == trace
        assert loaded.num_instructions == trace.num_instructions
        assert [loaded.packet(i) for i in range(len(loaded))] == packets
        # Compression is transparent to the content digest.
        assert trace_digest(path) == trace_digest(trace)


if HAVE_HYPOTHESIS:

    packet_strategy = st.builds(
        build_packet,
        opcode=st.sampled_from(VALID_OPCODES),
        taken=st.booleans(),
        ip_raw=st.integers(0, (1 << _ADDR_BITS) - 1),
        target_raw=st.integers(0, (1 << _ADDR_BITS) - 1),
        gap=st.integers(0, MAX_GAP),
    )

    @settings(max_examples=50, deadline=None)
    @given(packets=st.lists(packet_strategy, max_size=60),
           suffix=st.sampled_from(SUFFIXES))
    def test_roundtrip_arbitrary_streams(packets, suffix):
        roundtrip_and_check(packets, suffix)

else:  # stdlib-random fallback: same property, seeded draws

    def _random_packets(rng: random.Random, size: int) -> list[SbbtPacket]:
        return [
            build_packet(
                opcode=rng.choice(VALID_OPCODES),
                taken=rng.random() < 0.5,
                ip_raw=rng.getrandbits(_ADDR_BITS),
                target_raw=rng.getrandbits(_ADDR_BITS),
                gap=rng.randint(0, MAX_GAP),
            )
            for _ in range(size)
        ]

    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("suffix", SUFFIXES)
    def test_roundtrip_arbitrary_streams(seed, suffix):
        rng = random.Random(seed)
        roundtrip_and_check(_random_packets(rng, rng.randint(0, 60)), suffix)


@pytest.mark.parametrize("suffix", SUFFIXES)
def test_roundtrip_every_branch_type(suffix):
    """One deterministic stream holding every valid opcode, both outcomes
    where the rules allow, and the address/gap extremes."""
    packets = []
    gap_cases = [0, 1, MAX_GAP]
    addr_cases = [
        0x0,                      # null
        0x1000,                   # small user address
        (1 << 51) - 1,            # top of the user half
        (1 << 64) - (1 << 51),    # bottom of the kernel half
        (1 << 64) - 0x10,         # near the top of memory
    ]
    for i, opcode in enumerate(VALID_OPCODES):
        for taken in ((False, True) if opcode.is_conditional else (True,)):
            ip = addr_cases[i % len(addr_cases)] or 0x40
            packets.append(build_packet(
                opcode=opcode, taken=taken, ip_raw=ip & ((1 << 52) - 1),
                target_raw=addr_cases[(i + 1) % len(addr_cases)],
                gap=gap_cases[i % len(gap_cases)],
            ))
    types_seen = {p.branch.opcode.branch_type for p in packets}
    assert types_seen == set(BranchType)
    assert all(is_encodable_address(p.branch.ip) for p in packets)
    roundtrip_and_check(packets, suffix)


@pytest.mark.parametrize("suffix", SUFFIXES)
def test_roundtrip_empty_trace(suffix):
    roundtrip_and_check([], suffix)


def test_all_valid_opcodes_encode_and_decode():
    """Every non-reserved opcode survives a packet-level round trip."""
    for opcode in VALID_OPCODES:
        packet = build_packet(opcode, True, 0x400, 0x800, 7)
        assert SbbtPacket.decode(packet.encode()) == packet


def test_reserved_base_type_is_rejected():
    for value in (0b1100, 0b1101, 0b1110, 0b1111):
        with pytest.raises(ValueError):
            Opcode(value)
