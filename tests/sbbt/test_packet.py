"""Tests for the SBBT branch packet (paper Fig. 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.branch import Branch, BranchType, Opcode
from repro.core.errors import TraceFormatError, TraceValidationError
from repro.sbbt.packet import (
    MAX_GAP,
    PACKET_SIZE,
    SbbtPacket,
    decode_address,
    encode_address,
    is_encodable_address,
)
from tests.conftest import (
    OPCODE_COND_JUMP,
    OPCODE_IND_JUMP,
    OPCODE_JUMP,
    make_branch,
)

# Canonical 52-bit addresses: low or high half of the address space.
canonical_addresses = st.one_of(
    st.integers(min_value=0, max_value=(1 << 51) - 1),
    st.integers(min_value=((1 << 64) - (1 << 51)), max_value=(1 << 64) - 1),
)


class TestAddressCodec:
    def test_user_address_round_trip(self):
        address = 0x0000_5555_5540_1234
        assert decode_address(encode_address(address)) == address

    def test_kernel_address_round_trip(self):
        # Upper-half canonical address (all high bits set), the case the
        # arithmetic shift exists for.
        address = 0xFFFF_FFFF_FF60_0000
        assert decode_address(encode_address(address)) == address

    def test_null_round_trip(self):
        assert decode_address(encode_address(0)) == 0

    def test_non_canonical_rejected(self):
        with pytest.raises(TraceValidationError):
            encode_address(1 << 52)

    def test_is_encodable(self):
        assert is_encodable_address(0)
        assert is_encodable_address((1 << 51) - 1)
        assert is_encodable_address(0xFFFF_8000_0000_0000)
        assert not is_encodable_address(1 << 51)       # sign bit without extension
        assert not is_encodable_address(1 << 63)
        assert not is_encodable_address(-1)
        assert not is_encodable_address(1 << 64)

    @given(canonical_addresses)
    def test_round_trip_property(self, address):
        assert decode_address(encode_address(address)) == address

    def test_address_occupies_top_52_bits(self):
        block = encode_address(0x1234_5678_9ABC)
        assert block & 0xFFF == 0  # low 12 bits free for metadata


class TestPacketLayout:
    def test_packet_is_16_bytes(self):
        packet = SbbtPacket(branch=make_branch(), gap=3)
        assert PACKET_SIZE == 16
        assert len(packet.encode()) == 16

    def test_opcode_in_low_nibble_of_block1(self):
        packet = SbbtPacket(branch=make_branch(opcode=OPCODE_COND_JUMP,
                                               taken=True), gap=0)
        payload = packet.encode()
        assert payload[0] & 0xF == int(OPCODE_COND_JUMP)

    def test_outcome_bit_11_of_block1(self):
        taken = SbbtPacket(make_branch(taken=True), gap=0).encode()
        not_taken = SbbtPacket(make_branch(taken=False), gap=0).encode()
        assert taken[1] >> 3 & 1 == 1
        assert not_taken[1] >> 3 & 1 == 0

    def test_gap_in_low_12_bits_of_block2(self):
        packet = SbbtPacket(branch=make_branch(), gap=0xABC)
        payload = packet.encode()
        block2 = int.from_bytes(payload[8:16], "little")
        assert block2 & 0xFFF == 0xABC

    def test_max_gap_is_4095(self):
        assert MAX_GAP == 4095
        SbbtPacket(branch=make_branch(), gap=4095)  # fits
        with pytest.raises(TraceValidationError):
            SbbtPacket(branch=make_branch(), gap=4096)

    def test_negative_gap_rejected(self):
        with pytest.raises(TraceValidationError):
            SbbtPacket(branch=make_branch(), gap=-1)


class TestPacketRoundTrip:
    @given(canonical_addresses, canonical_addresses, st.booleans(),
           st.integers(min_value=0, max_value=MAX_GAP))
    def test_conditional_jump_round_trip(self, ip, target, taken, gap):
        branch = Branch(ip, target, OPCODE_COND_JUMP, taken)
        packet = SbbtPacket(branch=branch, gap=gap)
        decoded = SbbtPacket.decode(packet.encode())
        assert decoded == packet

    def test_every_valid_opcode_round_trips(self):
        for value in range(16):
            if (value >> 2) == 0b11:
                continue
            opcode = Opcode(value)
            taken = True  # satisfies rule 1 for unconditional opcodes
            branch = Branch(0x40_0000, 0x40_4000, opcode, taken)
            packet = SbbtPacket(branch=branch, gap=7)
            assert SbbtPacket.decode(packet.encode()).branch.opcode == opcode


class TestPacketValidation:
    def test_rule1_unconditional_must_be_taken(self):
        branch = make_branch(opcode=OPCODE_JUMP, taken=False)
        with pytest.raises(TraceValidationError, match="rule 1"):
            SbbtPacket(branch=branch, gap=0).encode()

    def test_rule2_not_taken_cond_indirect_needs_null_target(self):
        opcode = Opcode.encode(conditional=True, indirect=True,
                               branch_type=BranchType.JUMP)
        bad = make_branch(opcode=opcode, taken=False, target=0x40_0100)
        with pytest.raises(TraceValidationError, match="rule 2"):
            SbbtPacket(branch=bad, gap=0).encode()
        good = make_branch(opcode=opcode, taken=False, target=0)
        SbbtPacket(branch=good, gap=0).encode()  # passes

    def test_decode_rejects_reserved_bits(self):
        payload = bytearray(SbbtPacket(make_branch(), gap=0).encode())
        payload[0] |= 0x10  # set a reserved bit (bit 4)
        with pytest.raises(TraceFormatError, match="reserved"):
            SbbtPacket.decode(bytes(payload))

    def test_decode_rejects_reserved_opcode_type(self):
        payload = bytearray(SbbtPacket(make_branch(), gap=0).encode())
        payload[0] = (payload[0] & 0xF0) | 0b1100  # base type 0b11
        with pytest.raises(TraceFormatError):
            SbbtPacket.decode(bytes(payload))

    def test_decode_truncated(self):
        with pytest.raises(TraceFormatError, match="truncated"):
            SbbtPacket.decode(b"\x00" * 8)

    def test_decode_validate_false_skips_semantic_rules(self):
        # Rule 1 violation: unconditional not-taken.
        branch = Branch(0x40_0000, 0x40_0100, OPCODE_JUMP, True)
        payload = bytearray(SbbtPacket(branch, gap=0).encode())
        payload[1] &= ~0x08  # clear the outcome bit
        with pytest.raises(TraceValidationError):
            SbbtPacket.decode(bytes(payload))
        decoded = SbbtPacket.decode(bytes(payload), validate=False)
        assert decoded.branch.taken is False
