"""Robustness and failure-injection tests for the trace stack.

A trace reader that segfaults-by-exception on hostile input is a
security and usability bug; everything here asserts the only outcomes
for malformed input are the library's typed errors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.champsim import read_instruction_trace
from repro.baselines.cbp5 import bt9_to_trace_data, iter_bt9
from repro.core.errors import TraceError, TraceFormatError
from repro.sbbt.header import HEADER_SIZE
from repro.sbbt.reader import SbbtReader, decode_payload, read_trace
from repro.sbbt.writer import encode_payload, write_trace
from tests.conftest import make_trace


def _valid_payload(n=8):
    trace = make_trace([0x4000 + 16 * i for i in range(n)],
                       [i % 2 == 0 for i in range(n)],
                       gaps=[i % 7 for i in range(n)])
    return encode_payload(trace)


class TestDecoderFuzz:
    @settings(max_examples=200)
    @given(st.binary(max_size=512))
    def test_arbitrary_bytes_never_crash(self, payload):
        """Random bytes either decode (astronomically unlikely) or raise
        the library's typed trace errors — nothing else."""
        try:
            decode_payload(payload)
        except TraceError:
            pass

    @settings(max_examples=200)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=255))
    def test_single_byte_corruption_detected_or_consistent(self, position,
                                                           value):
        """Flipping one byte of a valid payload must never produce an
        undetected *structural* inconsistency: either the decoder raises,
        or it yields a trace whose column invariants hold."""
        payload = bytearray(_valid_payload())
        position %= len(payload)
        payload[position] = value
        try:
            trace = decode_payload(bytes(payload))
        except TraceError:
            return
        conditional = (trace.opcodes & 1).astype(bool)
        # Rule 1 and rule 2 must hold in anything the validator passed.
        assert bool(np.all(trace.taken[~conditional]))
        indirect = (trace.opcodes & 2).astype(bool)
        bad = conditional & indirect & ~trace.taken & (trace.targets != 0)
        assert not bad.any()

    @settings(max_examples=100)
    @given(st.integers(min_value=0, max_value=200))
    def test_truncation_detected(self, cut):
        payload = _valid_payload()
        cut = min(cut, len(payload) - 1)
        truncated = payload[:len(payload) - 1 - cut]
        if len(truncated) >= HEADER_SIZE:
            with pytest.raises(TraceFormatError):
                decode_payload(truncated)
        else:
            with pytest.raises(TraceFormatError):
                decode_payload(truncated)


class TestFileFailureInjection:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.sbbt"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_corrupted_gzip_container(self, tmp_path):
        trace = make_trace([0x4000], [True])
        path = tmp_path / "t.sbbt.gz"
        write_trace(path, trace)
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        path.write_bytes(bytes(payload))
        with pytest.raises(Exception):  # zlib error or TraceFormatError
            read_trace(path)

    def test_header_lies_about_branch_count(self, tmp_path):
        payload = bytearray(_valid_payload(n=4))
        # Inflate the branch count field (bytes 16..24).
        payload[16:24] = (100).to_bytes(8, "little")
        # Keep the instruction count consistent so only the body check
        # can fire.
        payload[8:16] = (1000).to_bytes(8, "little")
        path = tmp_path / "liar.sbbt"
        path.write_bytes(bytes(payload))
        with pytest.raises(TraceFormatError, match="truncated"):
            read_trace(path)
        with pytest.raises(TraceFormatError):
            with SbbtReader(path) as reader:
                list(reader)

    def test_directory_instead_of_file(self, tmp_path):
        with pytest.raises(OSError):
            read_trace(tmp_path)

    def test_bt9_garbage_lines(self, tmp_path):
        path = tmp_path / "bad.bt9"
        path.write_text(
            "BT9_SPA_TRACE_FORMAT\n"
            "total_instruction_count: 10\n"
            "branch_instruction_count: 1\n"
            "BT9_NODES\nNODE zero 0x0 0x0 cond+jump 4\n"
            "BT9_EDGES\nBT9_EDGE_SEQUENCE\n0\n"
        )
        with pytest.raises((TraceFormatError, ValueError, KeyError)):
            list(iter_bt9(path))

    def test_bt9_sequence_references_unknown_edge(self, tmp_path):
        path = tmp_path / "dangling.bt9"
        path.write_text(
            "BT9_SPA_TRACE_FORMAT\n"
            "total_instruction_count: 10\n"
            "branch_instruction_count: 1\n"
            "BT9_NODES\n"
            "BT9_EDGES\n"
            "BT9_EDGE_SEQUENCE\n"
            "7\n"
        )
        with pytest.raises(KeyError):
            list(iter_bt9(path))

    def test_bt9_count_mismatch(self, tmp_path):
        from repro.baselines.cbp5 import write_bt9

        trace = make_trace([0x4000, 0x4010], [True, False])
        path = tmp_path / "t.bt9"
        write_bt9(path, trace)
        text = path.read_text().replace(
            "branch_instruction_count: 2",
            "branch_instruction_count: 3")
        path.write_text(text)
        with pytest.raises(TraceFormatError, match="promises"):
            bt9_to_trace_data(path)

    def test_champsim_trace_empty(self, tmp_path):
        path = tmp_path / "t.champsim"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError):
            read_instruction_trace(path)
