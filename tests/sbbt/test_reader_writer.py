"""Round-trip and validation tests for the SBBT reader/writer pair."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.branch import Branch, Opcode
from repro.core.errors import TraceFormatError, TraceValidationError
from repro.sbbt.header import HEADER_SIZE, SbbtHeader
from repro.sbbt.packet import PACKET_SIZE, SbbtPacket
from repro.sbbt.reader import SbbtReader, decode_payload, read_trace
from repro.sbbt.trace import TraceData
from repro.sbbt.writer import SbbtWriter, encode_payload, write_trace
from tests.conftest import OPCODE_COND_JUMP, OPCODE_JUMP, make_branch, make_trace


@st.composite
def trace_data(draw, max_branches=200):
    """Random valid TraceData (conditional direct jumps + plain jumps)."""
    n = draw(st.integers(min_value=0, max_value=max_branches))
    ips = draw(st.lists(
        st.integers(min_value=0x1000, max_value=(1 << 48) - 1),
        min_size=n, max_size=n))
    conditional = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    taken_bits = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    gaps = draw(st.lists(st.integers(min_value=0, max_value=4095),
                         min_size=n, max_size=n))
    opcodes = np.array(
        [int(OPCODE_COND_JUMP) if c else int(OPCODE_JUMP)
         for c in conditional], dtype=np.uint8)
    taken = np.array(
        [t if c else True for c, t in zip(conditional, taken_bits)],
        dtype=bool)
    ips_array = np.array(ips, dtype=np.uint64)
    return TraceData(
        ips=ips_array,
        targets=ips_array + np.uint64(4),
        opcodes=opcodes, taken=taken,
        gaps=np.array(gaps, dtype=np.uint16),
        num_instructions=n + int(np.sum(gaps, dtype=np.int64)),
    )


class TestBulkRoundTrip:
    @settings(max_examples=30)
    @given(trace_data())
    def test_encode_decode_payload(self, trace):
        assert decode_payload(encode_payload(trace)) == trace

    def test_payload_size(self):
        trace = make_trace([0x4000, 0x4010], [True, False])
        payload = encode_payload(trace)
        assert len(payload) == HEADER_SIZE + 2 * PACKET_SIZE

    @pytest.mark.parametrize("suffix", ["", ".gz", ".xz", ".bz2"])
    def test_file_round_trip_all_codecs(self, tmp_path, suffix):
        trace = make_trace([0x4000, 0x4010, 0x4000],
                           [True, False, True],
                           gaps=[2, 0, 9])
        path = tmp_path / f"trace.sbbt{suffix}"
        size = write_trace(path, trace)
        assert size == path.stat().st_size
        assert read_trace(path) == trace

    def test_empty_trace_round_trip(self, tmp_path):
        trace = TraceData.empty()
        path = tmp_path / "empty.sbbt"
        write_trace(path, trace)
        loaded = read_trace(path)
        assert len(loaded) == 0
        assert loaded.num_instructions == 0


class TestBulkValidation:
    def test_rule1_rejected_on_encode(self):
        trace = make_trace([0x4000], [False],
                           opcodes=[int(OPCODE_JUMP)])
        with pytest.raises(TraceValidationError, match="rule 1"):
            encode_payload(trace)

    def test_rule2_rejected_on_encode(self):
        opcode = Opcode(0b0011)  # conditional indirect jump
        trace = make_trace([0x4000], [False], opcodes=[int(opcode)],
                           targets=[0x5000])
        with pytest.raises(TraceValidationError, match="rule 2"):
            encode_payload(trace)

    def test_non_canonical_ip_rejected_on_encode(self):
        trace = make_trace([1 << 52], [True])
        with pytest.raises(TraceValidationError, match="canonical"):
            encode_payload(trace)

    def test_truncated_body_rejected(self):
        trace = make_trace([0x4000, 0x4010], [True, True])
        payload = encode_payload(trace)
        with pytest.raises(TraceFormatError, match="truncated"):
            decode_payload(payload[:-1])

    def test_trailing_bytes_rejected(self):
        trace = make_trace([0x4000], [True])
        payload = encode_payload(trace)
        with pytest.raises(TraceFormatError, match="trailing"):
            decode_payload(payload + b"\x00" * 16)

    def test_decode_detects_rule1(self):
        trace = make_trace([0x4000], [True], opcodes=[int(OPCODE_JUMP)])
        payload = bytearray(encode_payload(trace))
        payload[HEADER_SIZE + 1] &= ~0x08  # clear the outcome bit
        with pytest.raises(TraceFormatError, match="rule 1"):
            decode_payload(bytes(payload))
        decoded = decode_payload(bytes(payload), validate=False)
        assert not decoded.taken[0]

    def test_read_trace_includes_path_in_error(self, tmp_path):
        path = tmp_path / "bad.sbbt"
        path.write_bytes(b"NOT A TRACE AT ALL....")
        with pytest.raises(TraceFormatError, match="bad.sbbt"):
            read_trace(path)


class TestStreamingWriter:
    def test_streaming_writer_matches_bulk(self, tmp_path):
        trace = make_trace([0x4000, 0x4010, 0x4020],
                           [True, False, True], gaps=[1, 2, 3])
        path = tmp_path / "stream.sbbt"
        with SbbtWriter(path) as writer:
            for branch, gap in trace.iter_branches():
                writer.write_branch(branch, gap)
        assert read_trace(path) == trace

    def test_trailing_instructions_counted(self, tmp_path):
        path = tmp_path / "t.sbbt"
        with SbbtWriter(path) as writer:
            writer.write_branch(make_branch(), gap=5)
            writer.add_instructions(10)
        header = SbbtHeader.decode(path.read_bytes())
        assert header.num_instructions == 16  # 5 gap + 1 branch + 10 tail
        assert header.num_branches == 1

    def test_writer_validates_gap(self, tmp_path):
        writer = SbbtWriter(tmp_path / "t.sbbt")
        with pytest.raises(TraceValidationError):
            writer.write_branch(make_branch(), gap=4096)

    def test_writer_validates_branch(self, tmp_path):
        writer = SbbtWriter(tmp_path / "t.sbbt")
        with pytest.raises(TraceValidationError):
            writer.write_branch(make_branch(opcode=OPCODE_JUMP, taken=False))

    def test_writer_validates_addresses(self, tmp_path):
        writer = SbbtWriter(tmp_path / "t.sbbt")
        with pytest.raises(TraceValidationError, match="canonical"):
            writer.write_branch(make_branch(ip=1 << 53))

    def test_write_after_close_rejected(self, tmp_path):
        writer = SbbtWriter(tmp_path / "t.sbbt")
        writer.close()
        with pytest.raises(ValueError):
            writer.write_branch(make_branch())

    def test_write_packet(self, tmp_path):
        path = tmp_path / "t.sbbt"
        with SbbtWriter(path) as writer:
            writer.write_packet(SbbtPacket(branch=make_branch(), gap=4))
        assert len(read_trace(path)) == 1


class TestStreamingReader:
    def test_streaming_matches_bulk(self, tmp_path, small_trace):
        path = tmp_path / "t.sbbt.gz"
        write_trace(path, small_trace)
        with SbbtReader(path) as reader:
            packets = list(reader)
        assert reader.packets_read == len(small_trace)
        bulk = read_trace(path)
        for i in (0, 1, len(packets) // 2, len(packets) - 1):
            assert packets[i] == bulk.packet(i)

    def test_header_available_before_iteration(self, tmp_path):
        trace = make_trace([0x4000], [True], gaps=[3])
        path = tmp_path / "t.sbbt"
        write_trace(path, trace)
        with SbbtReader(path) as reader:
            assert reader.header.num_branches == 1
            assert reader.header.num_instructions == 4

    def test_truncated_stream_detected(self, tmp_path):
        trace = make_trace([0x4000, 0x4010], [True, True])
        path = tmp_path / "t.sbbt"
        payload = encode_payload(trace)
        path.write_bytes(payload[:-PACKET_SIZE])  # drop the last packet
        with SbbtReader(path) as reader:
            with pytest.raises(TraceFormatError, match="truncated"):
                list(reader)

    def test_bad_buffer_size_rejected(self, tmp_path):
        trace = make_trace([0x4000], [True])
        path = tmp_path / "t.sbbt"
        write_trace(path, trace)
        with pytest.raises(ValueError):
            SbbtReader(path, buffer_packets=0)

    def test_small_buffer_still_correct(self, tmp_path):
        trace = make_trace([0x4000 + 16 * i for i in range(50)],
                           [i % 3 != 0 for i in range(50)])
        path = tmp_path / "t.sbbt"
        write_trace(path, trace)
        with SbbtReader(path, buffer_packets=1) as reader:
            assert len(list(reader)) == 50


class TestTraceData:
    def test_instruction_numbers(self):
        trace = make_trace([0x4000, 0x4010], [True, True], gaps=[3, 0])
        assert trace.instruction_numbers().tolist() == [4, 5]

    def test_conditional_mask_and_count(self):
        trace = make_trace([0x4000, 0x4010], [True, True],
                           opcodes=[int(OPCODE_COND_JUMP), int(OPCODE_JUMP)])
        assert trace.conditional_mask().tolist() == [True, False]
        assert trace.num_conditional_branches == 1

    def test_slice(self):
        trace = make_trace([0x4000, 0x4010, 0x4020],
                           [True, False, True], gaps=[1, 2, 3])
        sliced = trace.slice(1, 3)
        assert len(sliced) == 2
        assert sliced.num_instructions == 7
        assert sliced.ips.tolist() == [0x4010, 0x4020]

    def test_branch_and_packet_accessors(self):
        trace = make_trace([0x4000], [False], gaps=[2])
        branch = trace.branch(0)
        assert isinstance(branch, Branch)
        assert branch.ip == 0x4000 and branch.taken is False
        packet = trace.packet(0)
        assert packet.gap == 2

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError, match="mismatched"):
            TraceData(np.zeros(2, np.uint64), np.zeros(1, np.uint64),
                      np.zeros(2, np.uint8), np.zeros(2, bool),
                      np.zeros(2, np.uint16), 2)

    def test_undersized_instruction_count_rejected(self):
        with pytest.raises(ValueError, match="below"):
            make_trace([0x4000], [True], gaps=[5], num_instructions=3)

    def test_from_packets(self):
        packets = [SbbtPacket(branch=make_branch(ip=0x4000 + 16 * i), gap=i)
                   for i in range(5)]
        trace = TraceData.from_packets(packets)
        assert len(trace) == 5
        assert trace.num_instructions == 5 + sum(range(5))
        assert trace.packet(3) == packets[3]
