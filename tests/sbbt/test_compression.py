"""Tests for the transparent compression layer."""

import pytest

from repro.core.errors import TraceFormatError
from repro.sbbt.compression import (
    BEST_CODEC_SUFFIX,
    available_codecs,
    codec_for_path,
    open_compressed,
    read_all,
    write_all,
)


class TestCodecSelection:
    def test_suffix_mapping(self):
        assert codec_for_path("t.sbbt.gz") == "gzip"
        assert codec_for_path("t.sbbt.xz") == "xz"
        assert codec_for_path("t.sbbt.bz2") == "bzip2"
        assert codec_for_path("t.sbbt.zst") == "zstd"
        assert codec_for_path("t.sbbt") is None

    def test_case_insensitive(self):
        assert codec_for_path("T.SBBT.GZ") == "gzip"

    def test_best_codec_available(self):
        # The zstd stand-in must actually exist in this environment.
        assert BEST_CODEC_SUFFIX == ".xz"
        assert "xz" in available_codecs()

    def test_stdlib_codecs_always_available(self):
        codecs = available_codecs()
        for name in ("gzip", "bzip2", "xz"):
            assert name in codecs


class TestRoundTrips:
    PAYLOAD = b"SBBT\n" + bytes(range(256)) * 40

    @pytest.mark.parametrize("suffix", ["", ".gz", ".xz", ".bz2"])
    def test_write_read_round_trip(self, tmp_path, suffix):
        path = tmp_path / f"blob{suffix}"
        size = write_all(path, self.PAYLOAD)
        assert size == path.stat().st_size
        assert read_all(path) == self.PAYLOAD

    @pytest.mark.parametrize("suffix", [".gz", ".xz", ".bz2"])
    def test_compression_reduces_redundant_payload(self, tmp_path, suffix):
        payload = b"A" * 100_000
        path = tmp_path / f"blob{suffix}"
        size = write_all(path, payload)
        assert size < len(payload) // 10

    def test_streaming_interface(self, tmp_path):
        path = tmp_path / "blob.gz"
        with open_compressed(path, "wb") as stream:
            stream.write(b"hello ")
            stream.write(b"world")
        with open_compressed(path, "rb") as stream:
            assert stream.read() == b"hello world"


class TestErrors:
    def test_invalid_mode(self, tmp_path):
        with pytest.raises(ValueError):
            open_compressed(tmp_path / "x.gz", "r")

    def test_zstd_without_module(self, tmp_path):
        pytest.importorskip_reason = None
        try:
            import zstandard  # noqa: F401
            pytest.skip("zstandard installed; error path not reachable")
        except ImportError:
            pass
        path = tmp_path / "t.sbbt.zst"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError, match="zstd"):
            open_compressed(path, "rb")
