"""End-to-end tests for the ``mbp`` command-line interface."""

import json

import pytest

from repro.cli import PREDICTOR_CHOICES, build_parser, main, make_predictor
from repro.sbbt.writer import write_trace


@pytest.fixture()
def trace_file(tmp_path, small_trace):
    path = tmp_path / "t.sbbt.gz"
    write_trace(path, small_trace)
    return path


class TestPredictorRegistry:
    def test_all_choices_instantiate(self):
        for name in PREDICTOR_CHOICES:
            predictor = make_predictor(name)
            assert predictor.predict(0x40_0000) in (True, False)

    def test_unknown_predictor(self):
        with pytest.raises(SystemExit):
            make_predictor("oracle")

    def test_registry_covers_table2(self):
        # The Table II set plus the vectorized-catalog additions.
        assert set(PREDICTOR_CHOICES) == {
            "bimodal", "two-level", "gshare", "tournament", "gskew",
            "local", "yags", "perceptron", "tage", "batage",
        }


class TestSimulateCommand:
    def test_json_output(self, trace_file, capsys):
        assert main(["simulate", str(trace_file),
                     "--predictor", "bimodal"]) == 0
        output = json.loads(capsys.readouterr().out)
        assert output["metrics"]["mispredictions"] > 0
        assert output["metadata"]["predictor"]["name"] == "repro Bimodal"

    def test_compact_output(self, trace_file, capsys):
        main(["simulate", str(trace_file), "--compact"])
        line = capsys.readouterr().out
        assert "mpki=" in line

    def test_warmup_flag(self, trace_file, capsys):
        main(["simulate", str(trace_file), "--warmup", "1000"])
        output = json.loads(capsys.readouterr().out)
        assert output["metadata"]["warmup_instr"] == 1000

    def test_max_instructions_flag(self, trace_file, capsys):
        main(["simulate", str(trace_file), "--max-instructions", "500"])
        output = json.loads(capsys.readouterr().out)
        assert output["metadata"]["exhausted_trace"] is False

    def test_engine_vectorized(self, trace_file, capsys):
        assert main(["simulate", str(trace_file), "--predictor", "gshare",
                     "--engine", "vectorized"]) == 0
        output = json.loads(capsys.readouterr().out)
        assert output["metrics"]["mispredictions"] > 0

    def test_engine_vectorized_unsupported_predictor_clean_error(
            self, trace_file):
        # No traceback: the engine mismatch must surface as a one-line
        # SystemExit message naming the predictor and the way out.
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", str(trace_file), "--predictor", "tage",
                  "--engine", "vectorized"])
        message = str(excinfo.value)
        assert "vector kernel" in message
        assert "--engine scalar" in message

    def test_engine_vectorized_unsupported_with_cache_clean_error(
            self, trace_file, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", str(trace_file), "--predictor", "perceptron",
                  "--engine", "vectorized",
                  "--cache-dir", str(tmp_path / "cache")])
        assert "vector kernel" in str(excinfo.value)

    def test_engine_auto_falls_back(self, trace_file, capsys):
        assert main(["simulate", str(trace_file), "--predictor", "tage",
                     "--engine", "auto"]) == 0
        output = json.loads(capsys.readouterr().out)
        assert output["metrics"]["mispredictions"] > 0


class TestCompareCommand:
    def test_compare(self, trace_file, capsys):
        assert main(["compare", str(trace_file), "bimodal", "gshare"]) == 0
        output = json.loads(capsys.readouterr().out)
        assert "mpki_delta" in output["metrics"]


class TestInfoCommand:
    def test_human_output(self, trace_file, capsys):
        assert main(["info", str(trace_file)]) == 0
        assert "branches" in capsys.readouterr().out

    def test_json_output(self, trace_file, capsys):
        main(["info", str(trace_file), "--json"])
        output = json.loads(capsys.readouterr().out)
        assert output["gap_fits_12_bits"] is True


class TestGenerateCommand:
    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "gen.sbbt.gz"
        assert main(["generate", str(out), "--category", "short_mobile",
                     "--branches", "2000", "--seed", "3"]) == 0
        assert out.exists()
        assert "2000 branches" in capsys.readouterr().out

    def test_generated_trace_simulates(self, tmp_path, capsys):
        out = tmp_path / "gen.sbbt"
        main(["generate", str(out), "--branches", "1500"])
        capsys.readouterr()
        main(["simulate", str(out), "--compact"])
        assert "mpki=" in capsys.readouterr().out


class TestTranslateCommand:
    def test_sbbt_to_bt9_and_back(self, tmp_path, trace_file, capsys):
        bt9 = tmp_path / "t.bt9.gz"
        assert main(["translate", str(trace_file), str(bt9),
                     "--direction", "sbbt-to-bt9"]) == 0
        assert bt9.exists()
        back = tmp_path / "back.sbbt"
        assert main(["translate", str(bt9), str(back),
                     "--direction", "bt9-to-sbbt"]) == 0
        assert "branches" in capsys.readouterr().out


class TestSuiteCommand:
    def test_json_output(self, tmp_path, small_trace, server_trace, capsys):
        a, b = tmp_path / "a.sbbt", tmp_path / "b.sbbt"
        write_trace(a, small_trace)
        write_trace(b, server_trace)
        assert main(["suite", str(a), str(b),
                     "--predictor", "bimodal"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert [t["trace"] for t in document["traces"]] == [str(a), str(b)]
        assert document["failures"] == []
        assert document["aggregate"]["mean_mpki"] > 0

    def test_compact_output(self, trace_file, capsys):
        assert main(["suite", str(trace_file), "--compact"]) == 0
        output = capsys.readouterr().out
        assert "mpki=" in output
        assert "mean MPKI" in output

    def test_engine_workers_match_serial(self, tmp_path, small_trace,
                                         server_trace, capsys):
        a, b = tmp_path / "a.sbbt", tmp_path / "b.sbbt"
        write_trace(a, small_trace)
        write_trace(b, server_trace)
        main(["suite", str(a), str(b)])
        serial = json.loads(capsys.readouterr().out)
        assert main(["suite", str(a), str(b), "--workers", "2",
                     "--engine-stats"]) == 0
        captured = capsys.readouterr()
        threaded = json.loads(captured.out)
        for doc in (serial, threaded):
            for entry in doc["traces"]:
                entry.pop("simulation_time")
            doc["aggregate"].pop("timing")
        assert threaded == serial
        stats = json.loads(captured.err.split("engine stats: ", 1)[1])
        assert stats["traces_published"] == 2
        assert stats["tasks_dispatched"] == 2

    def test_cache_hits_reported(self, tmp_path, trace_file, capsys):
        cache = tmp_path / "cache"
        main(["suite", str(trace_file), "--cache-dir", str(cache)])
        capsys.readouterr()
        main(["suite", str(trace_file), "--cache-dir", str(cache)])
        document = json.loads(capsys.readouterr().out)
        assert document["aggregate"]["cache_hits"] == 1
        assert document["traces"][0]["from_cache"] is True

    def test_missing_trace_collected(self, tmp_path, trace_file, capsys):
        missing = tmp_path / "missing.sbbt"
        assert main(["suite", str(trace_file), str(missing)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert len(document["traces"]) == 1
        assert document["failures"][0]["trace"] == str(missing)

    def test_sim_engine_vectorized_matches_scalar(self, tmp_path,
                                                  small_trace, capsys):
        path = tmp_path / "a.sbbt"
        write_trace(path, small_trace)
        main(["suite", str(path), "--predictor", "gshare"])
        scalar = json.loads(capsys.readouterr().out)
        assert main(["suite", str(path), "--predictor", "gshare",
                     "--engine", "vectorized"]) == 0
        vectorized = json.loads(capsys.readouterr().out)
        for doc in (scalar, vectorized):
            for entry in doc["traces"]:
                entry.pop("simulation_time")
            doc["aggregate"].pop("timing")
        assert vectorized == scalar

    def test_sim_engine_unsupported_collected_as_failure(
            self, trace_file, capsys):
        assert main(["suite", str(trace_file), "--predictor", "tage",
                     "--engine", "vectorized"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["traces"] == []
        assert "vector kernel" in document["failures"][0]["error"]

    def test_engine_stats_requires_workers(self, trace_file):
        with pytest.raises(SystemExit):
            main(["suite", str(trace_file), "--engine-stats"])

    def test_start_method_requires_workers(self, trace_file):
        with pytest.raises(SystemExit):
            main(["suite", str(trace_file), "--start-method", "fork"])

    def test_all_traces_failed_is_not_success(self, tmp_path, capsys):
        # An all-failure suite used to be indistinguishable from an
        # empty-but-successful one; now it exits non-zero and reports
        # explicit counts.
        missing = [str(tmp_path / "a.sbbt"), str(tmp_path / "b.sbbt")]
        assert main(["suite", *missing]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["traces"] == []
        assert document["aggregate"]["num_traces"] == 2
        assert document["aggregate"]["num_failures"] == 2
        assert len(document["failures"]) == 2

    def test_all_traces_failed_compact_footer(self, tmp_path, capsys):
        missing = str(tmp_path / "gone.sbbt")
        assert main(["suite", missing, "--compact"]) == 1
        output = capsys.readouterr().out
        assert "0/1 traces ok" in output
        assert "1 failed" in output
        assert "mean MPKI n/a" in output

    def test_compact_footer_counts_successes(self, trace_file, capsys):
        assert main(["suite", str(trace_file), "--compact"]) == 0
        output = capsys.readouterr().out
        assert "1/1 traces ok" in output
        assert "0 failed" in output

    def test_json_aggregate_counts(self, tmp_path, trace_file, capsys):
        missing = tmp_path / "missing.sbbt"
        assert main(["suite", str(trace_file), str(missing)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["aggregate"]["num_traces"] == 2
        assert document["aggregate"]["num_failures"] == 1

    def test_chunk_flag_values(self, tmp_path, small_trace,
                               server_trace, capsys):
        a, b = tmp_path / "a.sbbt", tmp_path / "b.sbbt"
        write_trace(a, small_trace)
        write_trace(b, server_trace)
        main(["suite", str(a), str(b), "--workers", "2"])
        baseline = json.loads(capsys.readouterr().out)
        assert main(["suite", str(a), str(b), "--workers", "2",
                     "--chunk", "2"]) == 0
        chunked = json.loads(capsys.readouterr().out)
        for doc in (baseline, chunked):
            for entry in doc["traces"]:
                entry.pop("simulation_time")
            doc["aggregate"].pop("timing")
        assert chunked == baseline

    def test_chunk_auto_is_default_spelling(self, trace_file, capsys):
        assert main(["suite", str(trace_file), "--chunk", "auto"]) == 0
        capsys.readouterr()

    @pytest.mark.parametrize("bad", ["0", "-2", "sometimes"])
    def test_chunk_flag_rejects_bad_values(self, trace_file, bad):
        with pytest.raises(SystemExit) as excinfo:
            main(["suite", str(trace_file), "--chunk", bad])
        assert "--chunk" in str(excinfo.value)


class TestSweepCommand:
    def test_table_output(self, trace_file, capsys):
        assert main(["sweep", str(trace_file),
                     "--parameter", "history_length",
                     "--values", "2,8",
                     "--fixed", "log_table_size=10"]) == 0
        output = capsys.readouterr().out
        assert "history_length=2" in output
        assert "best:" in output

    def test_json_range_values(self, trace_file, capsys):
        assert main(["sweep", str(trace_file),
                     "--parameter", "history_length",
                     "--values", "2:9:3", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        swept = [p["parameters"]["history_length"]
                 for p in document["points"]]
        assert swept == [2, 5, 8]
        assert document["best"]["parameters"]["history_length"] in swept

    def test_workers_match_serial(self, trace_file, capsys):
        argv = ["sweep", str(trace_file), "--parameter", "history_length",
                "--values", "2,4,8", "--json"]
        main(argv)
        serial = json.loads(capsys.readouterr().out)
        assert main(argv + ["--workers", "2", "--engine-stats"]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out) == serial
        stats = json.loads(captured.err.split("engine stats: ", 1)[1])
        # One trace shipped once, then reused for the other grid points.
        assert stats["traces_published"] == 1
        assert stats["tasks_dispatched"] == 3
        assert stats["trace_reuses"] >= 1

    def test_footer_reports_points_and_batch_groups(self, trace_file,
                                                    capsys):
        assert main(["sweep", str(trace_file),
                     "--parameter", "history_length",
                     "--values", "2,4,8"]) == 0
        output = capsys.readouterr().out
        assert "sweep: 3/3 points ok" in output
        assert "1 batch groups" in output
        assert "0 trace failures" in output

    def test_batch_off_matches_auto(self, trace_file, capsys):
        argv = ["sweep", str(trace_file), "--parameter", "history_length",
                "--values", "2,4,8", "--json"]
        assert main(argv) == 0
        auto = json.loads(capsys.readouterr().out)
        assert main(argv + ["--batch", "off"]) == 0
        assert json.loads(capsys.readouterr().out) == auto

    def test_scalar_engine_matches_auto(self, trace_file, capsys):
        argv = ["sweep", str(trace_file), "--parameter", "history_length",
                "--values", "2,4", "--json"]
        assert main(argv) == 0
        auto = json.loads(capsys.readouterr().out)
        assert main(argv + ["--engine", "scalar"]) == 0
        assert json.loads(capsys.readouterr().out) == auto

    def test_all_points_failed_exits_nonzero(self, tmp_path, capsys):
        missing = tmp_path / "missing.sbbt"
        assert main(["sweep", str(missing),
                     "--parameter", "history_length",
                     "--values", "2,4"]) == 1
        output = capsys.readouterr().out
        assert "0/2 points ok" in output
        assert "best:" not in output

    def test_json_reports_failures_and_null_best(self, tmp_path, capsys):
        missing = tmp_path / "missing.sbbt"
        assert main(["sweep", str(missing),
                     "--parameter", "history_length",
                     "--values", "2,4", "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["best"] is None
        for point in document["points"]:
            assert point["mean_mpki"] is None
            assert point["num_failures"] == 1
        assert document["aggregate"]["points_failed"] == 2

    def test_bad_values_spec(self, trace_file):
        with pytest.raises(SystemExit):
            main(["sweep", str(trace_file), "--parameter", "history_length",
                  "--values", "2:8:1:1"])

    def test_bad_fixed_spec(self, trace_file):
        with pytest.raises(SystemExit):
            main(["sweep", str(trace_file), "--parameter", "history_length",
                  "--values", "2,4", "--fixed", "log_table_size"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestChampionshipCommand:
    def test_leaderboard_printed(self, trace_file, capsys):
        assert main(["championship", str(trace_file),
                     "--predictors", "bimodal", "gshare"]) == 0
        output = capsys.readouterr().out
        assert "Championship leaderboard" in output
        assert "bimodal" in output and "gshare" in output

    def test_multiple_traces(self, tmp_path, small_trace, server_trace,
                             capsys):
        a = tmp_path / "a.sbbt"
        b = tmp_path / "b.sbbt"
        write_trace(a, small_trace)
        write_trace(b, server_trace)
        main(["championship", str(a), str(b),
              "--predictors", "bimodal"])
        output = capsys.readouterr().out
        assert "a.sbbt" in output and "b.sbbt" in output
