"""End-to-end tests for the ``mbp`` command-line interface."""

import json

import pytest

from repro.cli import PREDICTOR_CHOICES, build_parser, main, make_predictor
from repro.sbbt.writer import write_trace


@pytest.fixture()
def trace_file(tmp_path, small_trace):
    path = tmp_path / "t.sbbt.gz"
    write_trace(path, small_trace)
    return path


class TestPredictorRegistry:
    def test_all_choices_instantiate(self):
        for name in PREDICTOR_CHOICES:
            predictor = make_predictor(name)
            assert predictor.predict(0x40_0000) in (True, False)

    def test_unknown_predictor(self):
        with pytest.raises(SystemExit):
            make_predictor("oracle")

    def test_registry_covers_table2(self):
        assert set(PREDICTOR_CHOICES) == {
            "bimodal", "two-level", "gshare", "tournament", "gskew",
            "perceptron", "tage", "batage",
        }


class TestSimulateCommand:
    def test_json_output(self, trace_file, capsys):
        assert main(["simulate", str(trace_file),
                     "--predictor", "bimodal"]) == 0
        output = json.loads(capsys.readouterr().out)
        assert output["metrics"]["mispredictions"] > 0
        assert output["metadata"]["predictor"]["name"] == "repro Bimodal"

    def test_compact_output(self, trace_file, capsys):
        main(["simulate", str(trace_file), "--compact"])
        line = capsys.readouterr().out
        assert "mpki=" in line

    def test_warmup_flag(self, trace_file, capsys):
        main(["simulate", str(trace_file), "--warmup", "1000"])
        output = json.loads(capsys.readouterr().out)
        assert output["metadata"]["warmup_instr"] == 1000

    def test_max_instructions_flag(self, trace_file, capsys):
        main(["simulate", str(trace_file), "--max-instructions", "500"])
        output = json.loads(capsys.readouterr().out)
        assert output["metadata"]["exhausted_trace"] is False


class TestCompareCommand:
    def test_compare(self, trace_file, capsys):
        assert main(["compare", str(trace_file), "bimodal", "gshare"]) == 0
        output = json.loads(capsys.readouterr().out)
        assert "mpki_delta" in output["metrics"]


class TestInfoCommand:
    def test_human_output(self, trace_file, capsys):
        assert main(["info", str(trace_file)]) == 0
        assert "branches" in capsys.readouterr().out

    def test_json_output(self, trace_file, capsys):
        main(["info", str(trace_file), "--json"])
        output = json.loads(capsys.readouterr().out)
        assert output["gap_fits_12_bits"] is True


class TestGenerateCommand:
    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "gen.sbbt.gz"
        assert main(["generate", str(out), "--category", "short_mobile",
                     "--branches", "2000", "--seed", "3"]) == 0
        assert out.exists()
        assert "2000 branches" in capsys.readouterr().out

    def test_generated_trace_simulates(self, tmp_path, capsys):
        out = tmp_path / "gen.sbbt"
        main(["generate", str(out), "--branches", "1500"])
        capsys.readouterr()
        main(["simulate", str(out), "--compact"])
        assert "mpki=" in capsys.readouterr().out


class TestTranslateCommand:
    def test_sbbt_to_bt9_and_back(self, tmp_path, trace_file, capsys):
        bt9 = tmp_path / "t.bt9.gz"
        assert main(["translate", str(trace_file), str(bt9),
                     "--direction", "sbbt-to-bt9"]) == 0
        assert bt9.exists()
        back = tmp_path / "back.sbbt"
        assert main(["translate", str(bt9), str(back),
                     "--direction", "bt9-to-sbbt"]) == 0
        assert "branches" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestChampionshipCommand:
    def test_leaderboard_printed(self, trace_file, capsys):
        assert main(["championship", str(trace_file),
                     "--predictors", "bimodal", "gshare"]) == 0
        output = capsys.readouterr().out
        assert "Championship leaderboard" in output
        assert "bimodal" in output and "gshare" in output

    def test_multiple_traces(self, tmp_path, small_trace, server_trace,
                             capsys):
        a = tmp_path / "a.sbbt"
        b = tmp_path / "b.sbbt"
        write_trace(a, small_trace)
        write_trace(b, server_trace)
        main(["championship", str(a), str(b),
              "--predictors", "bimodal"])
        output = capsys.readouterr().out
        assert "a.sbbt" in output and "b.sbbt" in output
