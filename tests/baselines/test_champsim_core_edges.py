"""Edge-case tests for the cycle-driven core's pipeline mechanics."""

import pytest

from repro.baselines.champsim import (
    CoreConfig,
    O3Core,
    instruction_trace_from_branches,
)
from repro.predictors import AlwaysTaken, Bimodal
from tests.conftest import make_trace


def _instruction_trace(num_branches=300, gap=6, taken_period=3):
    branch_trace = make_trace(
        [0x40_0000 + 64 * (i % 7) for i in range(num_branches)],
        [(i % taken_period) != 0 for i in range(num_branches)],
        gaps=[gap] * num_branches,
    )
    return instruction_trace_from_branches(branch_trace)


class TestPipelineMechanics:
    def test_tiny_rob_reduces_ipc(self):
        trace = _instruction_trace()
        wide = O3Core(Bimodal(), CoreConfig(rob_size=352)).run(trace)
        narrow = O3Core(Bimodal(), CoreConfig(rob_size=4)).run(trace)
        assert narrow.ipc < wide.ipc

    def test_narrow_fetch_reduces_ipc(self):
        trace = _instruction_trace()
        wide = O3Core(Bimodal(), CoreConfig(fetch_width=5)).run(trace)
        narrow = O3Core(Bimodal(), CoreConfig(fetch_width=1,
                                              decode_width=1,
                                              commit_width=1)).run(trace)
        assert narrow.ipc < wide.ipc

    def test_higher_penalty_hurts_more_with_bad_predictor(self):
        trace = _instruction_trace(taken_period=2)
        cheap = O3Core(AlwaysTaken(),
                       CoreConfig(mispredict_extra_penalty=0,
                                  pipeline_depth=5)).run(trace)
        expensive = O3Core(AlwaysTaken(),
                           CoreConfig(mispredict_extra_penalty=20,
                                      pipeline_depth=20)).run(trace)
        assert expensive.cycles > cheap.cycles

    def test_all_instructions_commit(self):
        trace = _instruction_trace(num_branches=100)
        stats = O3Core(Bimodal()).run(trace)
        assert stats.instructions == len(trace.records)

    def test_empty_trace(self):
        trace = _instruction_trace(num_branches=1)
        trace.records = trace.records[:0]
        stats = O3Core(Bimodal()).run(trace)
        assert stats.instructions == 0
        assert stats.ipc == 0.0

    def test_cycles_monotone_in_instructions(self):
        trace = _instruction_trace(num_branches=200)
        short = O3Core(Bimodal()).run(trace, max_instructions=300)
        long = O3Core(Bimodal()).run(trace, max_instructions=900)
        assert long.cycles > short.cycles

    def test_cache_stats_populated(self):
        trace = _instruction_trace()
        stats = O3Core(Bimodal()).run(trace)
        assert set(stats.cache_miss_rates) == {"L1I", "L1D", "L2", "LLC"}
        assert all(0.0 <= rate <= 1.0
                   for rate in stats.cache_miss_rates.values())

    def test_branch_counts_match_trace(self):
        trace = _instruction_trace(num_branches=150)
        stats = O3Core(Bimodal()).run(trace)
        assert stats.branches == 150
        assert stats.conditional_branches == 150
