"""Tests for the CBP5-framework-style baseline."""

import pytest

from repro.baselines.cbp5 import (
    Cbp5Framework,
    FromMbpPredictor,
    OpType,
    bt9_to_trace_data,
    cbp5_main,
    iter_bt9,
    read_bt9_header,
    write_bt9,
)
from repro.core.branch import Opcode
from repro.core.errors import TraceFormatError
from repro.core.simulator import simulate
from repro.predictors import Bimodal, GShare
from tests.conftest import (
    OPCODE_CALL,
    OPCODE_COND_JUMP,
    OPCODE_JUMP,
    OPCODE_RET,
    make_trace,
)


class TestBt9Format:
    def _mixed_trace(self):
        return make_trace(
            [0x4000, 0x4010, 0x4020, 0x4000, 0x4030],
            [True, False, True, False, True],
            opcodes=[int(OPCODE_COND_JUMP), int(OPCODE_COND_JUMP),
                     int(OPCODE_CALL), int(OPCODE_COND_JUMP),
                     int(OPCODE_RET)],
            gaps=[0, 3, 1, 0, 7],
        )

    def test_round_trip(self, tmp_path):
        trace = self._mixed_trace()
        path = tmp_path / "t.bt9"
        write_bt9(path, trace)
        assert bt9_to_trace_data(path) == trace

    def test_round_trip_compressed(self, tmp_path):
        trace = self._mixed_trace()
        path = tmp_path / "t.bt9.gz"
        write_bt9(path, trace)
        assert bt9_to_trace_data(path) == trace

    def test_header_counts(self, tmp_path):
        trace = self._mixed_trace()
        path = tmp_path / "t.bt9"
        write_bt9(path, trace)
        header = read_bt9_header(path)
        assert header.num_branches == 5
        assert header.num_instructions == trace.num_instructions

    def test_graph_deduplicates_nodes(self, tmp_path):
        trace = self._mixed_trace()  # 0x4000 appears twice
        path = tmp_path / "t.bt9"
        write_bt9(path, trace)
        text = path.read_text()
        assert text.count("\nNODE") == 4  # 4 distinct addresses

    def test_iter_preserves_order_and_gaps(self, tmp_path):
        trace = self._mixed_trace()
        path = tmp_path / "t.bt9"
        write_bt9(path, trace)
        streamed = list(iter_bt9(path))
        assert [g for _, g in streamed] == [0, 3, 1, 0, 7]
        assert [b.ip for b, _ in streamed] == [0x4000, 0x4010, 0x4020,
                                               0x4000, 0x4030]

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.bt9"
        path.write_text("NOT_BT9\n")
        with pytest.raises(TraceFormatError, match="magic"):
            list(iter_bt9(path))

    def test_missing_counts_rejected(self, tmp_path):
        path = tmp_path / "bad.bt9"
        path.write_text("BT9_SPA_TRACE_FORMAT\nBT9_NODES\n")
        with pytest.raises(TraceFormatError, match="counts"):
            read_bt9_header(path)

    def test_sequence_length_checked(self, tmp_path):
        trace = self._mixed_trace()
        path = tmp_path / "t.bt9"
        write_bt9(path, trace)
        # Drop the last sequence line.
        lines = path.read_text().rstrip("\n").split("\n")
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TraceFormatError, match="header promises"):
            bt9_to_trace_data(path)


class TestOpTypeMapping:
    def test_round_trip_through_optype(self):
        for value in range(16):
            if (value >> 2) == 0b11:
                continue
            opcode = Opcode(value)
            op_type = OpType.from_opcode(opcode)
            back = FromMbpPredictor._OP_OPCODES[op_type]
            assert back.is_conditional == opcode.is_conditional or \
                opcode.is_return or opcode.is_call
            assert back.branch_type == opcode.branch_type

    def test_specific_mappings(self):
        assert OpType.from_opcode(OPCODE_COND_JUMP) == \
            OpType.OP_JMP_DIRECT_COND
        assert OpType.from_opcode(OPCODE_CALL) == OpType.OP_CALL_DIRECT
        assert OpType.from_opcode(OPCODE_RET) == OpType.OP_RET
        assert OpType.from_opcode(OPCODE_JUMP) == \
            OpType.OP_JMP_DIRECT_UNCOND


class TestFrameworkEquivalence:
    """Paper Section VII-C: both simulators give identical results."""

    @pytest.mark.parametrize("factory", [Bimodal, GShare],
                             ids=["bimodal", "gshare"])
    def test_identical_mispredictions(self, tmp_path, server_trace, factory):
        path = tmp_path / "t.bt9.gz"
        write_bt9(path, server_trace)
        framework_result = Cbp5Framework(path).run(
            FromMbpPredictor(factory()))
        library_result = simulate(factory(), server_trace)
        assert (framework_result.mispredictions
                == library_result.mispredictions)
        assert (framework_result.num_conditional_branches
                == library_result.num_conditional_branches)
        assert framework_result.mpki == pytest.approx(library_result.mpki)

    def test_report_format(self, tmp_path, small_trace):
        path = tmp_path / "t.bt9"
        write_bt9(path, small_trace)
        result = Cbp5Framework(path).run(FromMbpPredictor(Bimodal()))
        report = result.report()
        assert "NUM_INSTRUCTIONS" in report
        assert "MISPRED_PER_1K_INST" in report

    def test_cbp5_main_owns_the_loop(self, tmp_path, small_trace):
        path = tmp_path / "t.bt9"
        write_bt9(path, small_trace)
        printed = []
        results = cbp5_main(lambda: FromMbpPredictor(Bimodal()),
                            [path, path], emit=printed.append)
        assert len(results) == 2
        assert len(printed) == 2
        assert results[0].mispredictions == results[1].mispredictions
